#![warn(missing_docs)]

//! # PIMSIM-NN
//!
//! A reproduction of *“PIMSIM-NN: An ISA-based Simulation Framework for
//! Processing-in-Memory Accelerators”* (DATE 2024): a dedicated ISA for
//! neural networks on crossbar-based PIM accelerators, a PIMCOMP-style
//! compiler, and a cycle-accurate, event-driven, configurable simulator,
//! plus an MNSIM2.0-like behaviour-level baseline for comparison.
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`event`] — deterministic discrete-event kernel (SystemC substitute)
//! * [`isa`] — instruction set, assembler, program container
//! * [`arch`] — architecture configuration and energy model
//! * [`nn`] — network description, shape inference, model zoo, golden model
//! * [`compiler`] — mapping, scheduling, fusion, code generation
//! * [`analyze`] — static dataflow + rendezvous verifier for compiled programs
//! * [`sim`] — the cycle-accurate simulator
//! * [`baseline`] — MNSIM2.0-like behaviour-level simulator
//! * [`sweep`] — parallel design-space campaign engine
//! * [`serve`] — open-loop inference-serving simulation with tail-latency
//!   reporting
//!
//! # Quickstart
//!
//! ```rust
//! use pimsim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Architecture configuration (the paper's evaluation setup, scaled down).
//! let arch = ArchConfig::small_test();
//! // 2. A network description.
//! let net = pimsim::nn::zoo::tiny_mlp();
//! // 3. Compile with a mapping policy.
//! let compiled = Compiler::new(&arch)
//!     .mapping(MappingPolicy::PerformanceFirst)
//!     .compile(&net)?;
//! // 4. Simulate.
//! let report = Simulator::new(&arch).run(&compiled.program)?;
//! assert!(report.latency.as_ns_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use pimsim_analyze as analyze;
pub use pimsim_arch as arch;
pub use pimsim_baseline as baseline;
pub use pimsim_compiler as compiler;
pub use pimsim_core as sim;
pub use pimsim_event as event;
pub use pimsim_isa as isa;
pub use pimsim_nn as nn;
pub use pimsim_serve as serve;
pub use pimsim_sweep as sweep;

/// The most commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use pimsim_analyze::{analyze, bounds, Analysis, BoundsReport};
    pub use pimsim_arch::{ArchConfig, RoutingPolicy};
    pub use pimsim_baseline::BaselineSimulator;
    pub use pimsim_compiler::{Compiler, MappingPolicy};
    pub use pimsim_core::{SimReport, Simulator};
    pub use pimsim_event::SimTime;
    pub use pimsim_isa::Program;
    pub use pimsim_nn::Network;
    pub use pimsim_serve::{serve, BatchPolicy, ServeConfig, ServeReport};
    pub use pimsim_sweep::{
        default_threads, run_grid, run_scenarios, Scenario, SimulatorKind, SweepGrid, SweepRow,
    };
}

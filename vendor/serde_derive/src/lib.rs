//! Offline stand-in for `serde_derive`.
//!
//! The real serde_derive depends on syn/quote, which cannot be fetched in
//! this offline build environment. This crate re-implements the two derive
//! macros by walking the `proc_macro::TokenStream` directly and emitting the
//! impl source as a string. It supports the shapes and `#[serde(...)]`
//! attributes the workspace uses:
//!
//! * structs (named, tuple, unit) and enums (unit / newtype / tuple / struct
//!   variants, externally tagged like real serde)
//! * `#[serde(transparent)]`, `#[serde(deny_unknown_fields)]`,
//!   `#[serde(default)]` / `#[serde(default = "path")]` on fields,
//!   `#[serde(try_from = "T")]` / `#[serde(into = "T")]` on containers
//!
//! Anything else (generics, unsupported attributes) aborts compilation with
//! a clear message rather than silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    deny_unknown: bool,
    try_from: Option<String>,
    into: Option<String>,
}

/// How a missing named field is filled in during deserialization.
enum FieldDefault {
    /// No default: the field is required.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call the named function.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, name: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == name)
}

/// Parses the attributes at the current position, folding any
/// `#[serde(...)]` entries into `attrs` and reporting which field-level
/// `default` (if any) was seen.
fn parse_attrs(tokens: &mut Tokens, attrs: &mut ContainerAttrs) -> FieldDefault {
    let mut field_default = FieldDefault::None;
    while tokens.peek().is_some_and(|tt| is_punct(tt, '#')) {
        tokens.next();
        let group = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde derive: expected [...] after `#`, found {other:?}"),
        };
        let mut inner = group.stream().into_iter().peekable();
        let Some(first) = inner.next() else { continue };
        if !is_ident(&first, "serde") {
            continue; // doc comment, cfg, other derives' helper attrs, ...
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde derive: expected (...) after `serde`, found {other:?}"),
        };
        let mut it = args.stream().into_iter().peekable();
        while let Some(tt) = it.next() {
            let TokenTree::Ident(key) = &tt else {
                panic!("serde derive: unexpected token in #[serde(...)]: {tt}");
            };
            match key.to_string().as_str() {
                "transparent" => attrs.transparent = true,
                "deny_unknown_fields" => attrs.deny_unknown = true,
                "default" => {
                    // Bare `default` uses the Default trait; `default =
                    // "path"` (real serde's spelling) calls the function.
                    if it.peek().is_some_and(|tt| is_punct(tt, '=')) {
                        it.next();
                        let path = match it.next() {
                            Some(TokenTree::Literal(l)) => {
                                l.to_string().trim_matches('"').to_string()
                            }
                            other => panic!(
                                "serde derive: expected string after `default =`, found {other:?}"
                            ),
                        };
                        field_default = FieldDefault::Path(path);
                    } else {
                        field_default = FieldDefault::Trait;
                    }
                }
                k @ ("try_from" | "into") => {
                    match it.next() {
                        Some(ref eq) if is_punct(eq, '=') => {}
                        other => panic!("serde derive: expected `=` after `{k}`, found {other:?}"),
                    }
                    let ty = match it.next() {
                        Some(TokenTree::Literal(l)) => l.to_string().trim_matches('"').to_string(),
                        other => {
                            panic!("serde derive: expected string after `{k} =`, found {other:?}")
                        }
                    };
                    if k == "try_from" {
                        attrs.try_from = Some(ty);
                    } else {
                        attrs.into = Some(ty);
                    }
                }
                other => {
                    panic!("serde derive (offline stub): unsupported attribute #[serde({other})]")
                }
            }
            if it.peek().is_some_and(|tt| is_punct(tt, ',')) {
                it.next();
            }
        }
    }
    field_default
}

fn skip_visibility(tokens: &mut Tokens) {
    if tokens.peek().is_some_and(|tt| is_ident(tt, "pub")) {
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                tokens.next(); // pub(crate) / pub(super) / ...
            }
        }
    }
}

/// Skips a type (or discriminant expression) up to a top-level `,`,
/// tracking `<`/`>` nesting. Parens/brackets/braces arrive as atomic groups,
/// so only angle brackets need depth accounting.
fn skip_to_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '-' => {
                // `->` in fn-pointer types: consume both so `>` is not
                // miscounted as closing an angle bracket.
                tokens.next();
                if tokens.peek().is_some_and(|n| is_punct(n, '>')) {
                    tokens.next();
                }
                continue;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Parses `name: Type, ...` named fields (inside a brace group).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let mut unused = ContainerAttrs::default();
        let default = parse_attrs(&mut tokens, &mut unused);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(ref c) if is_punct(c, ':') => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_to_comma(&mut tokens);
        tokens.next(); // the comma itself (or end)
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct/variant (inside a paren group).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        let mut unused = ContainerAttrs::default();
        parse_attrs(&mut tokens, &mut unused);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break; // trailing comma
        }
        skip_to_comma(&mut tokens);
        tokens.next();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        let mut unused = ContainerAttrs::default();
        parse_attrs(&mut tokens, &mut unused);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        if tokens.peek().is_some_and(|tt| is_punct(tt, '=')) {
            tokens.next();
            skip_to_comma(&mut tokens); // explicit discriminant
        }
        if tokens.peek().is_some_and(|tt| is_punct(tt, ',')) {
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Tokens = input.into_iter().peekable();
    let mut attrs = ContainerAttrs::default();
    parse_attrs(&mut tokens, &mut attrs);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    if tokens.peek().is_some_and(|tt| is_punct(tt, '<')) {
        panic!("serde derive (offline stub): generic types are not supported (type `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(ref semi) if is_punct(semi, ';') => Kind::UnitStruct,
            other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item { name, attrs, kind }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const SER: &str = "::serde::__private::Serialize::to_value";
const DE: &str = "::serde::__private::Deserialize::from_value";
const VALUE: &str = "::serde::__private::Value";
const MAP: &str = "::serde::__private::Map";
const ERR: &str = "::serde::__private::DeError";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __conv: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             {SER}(&__conv)"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) if item.attrs.transparent => {
                assert_eq!(
                    fields.len(),
                    1,
                    "#[serde(transparent)] needs exactly one field"
                );
                format!("{SER}(&self.{})", fields[0].name)
            }
            Kind::TupleStruct(1) if item.attrs.transparent => format!("{SER}(&self.0)"),
            Kind::TupleStruct(1) => format!("{SER}(&self.0)"),
            Kind::NamedStruct(fields) => {
                let mut out = format!("let mut __map = {MAP}::new();\n");
                for f in fields {
                    out.push_str(&format!(
                        "__map.insert(\"{0}\", {SER}(&self.{0}));\n",
                        f.name
                    ));
                }
                out.push_str(&format!("{VALUE}::Object(__map)"));
                out
            }
            Kind::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n).map(|i| format!("{SER}(&self.{i})")).collect();
                format!("{VALUE}::Array(vec![{}])", elems.join(", "))
            }
            Kind::UnitStruct => format!("{VALUE}::Null"),
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => arms.push_str(&format!(
                            "{name}::{vname} => {VALUE}::String(\"{vname}\".to_string()),\n"
                        )),
                        VariantShape::Tuple(1) => arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {{\n\
                             let mut __map = {MAP}::new();\n\
                             __map.insert(\"{vname}\", {SER}(__f0));\n\
                             {VALUE}::Object(__map)\n}}\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> =
                                binders.iter().map(|b| format!("{SER}({b})")).collect();
                            arms.push_str(&format!(
                                "{name}::{vname}({binds}) => {{\n\
                                 let mut __map = {MAP}::new();\n\
                                 __map.insert(\"{vname}\", {VALUE}::Array(vec![{elems}]));\n\
                                 {VALUE}::Object(__map)\n}}\n",
                                binds = binders.join(", "),
                                elems = elems.join(", "),
                            ));
                        }
                        VariantShape::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let mut inner = String::new();
                            for f in fields {
                                inner.push_str(&format!(
                                    "__inner.insert(\"{0}\", {SER}({0}));\n",
                                    f.name
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut __inner = {MAP}::new();\n\
                                 {inner}\
                                 let mut __map = {MAP}::new();\n\
                                 __map.insert(\"{vname}\", {VALUE}::Object(__inner));\n\
                                 {VALUE}::Object(__map)\n}}\n",
                                binds = binders.join(", "),
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {VALUE} {{\n{body}\n}}\n}}\n"
    )
}

/// The expression deserializing one named field from `__map`.
fn named_field_expr(f: &Field, ty_name: &str) -> String {
    let fallback = match &f.default {
        FieldDefault::None => {
            return format!(
                "{DE}(::serde::__private::require(__map, \"{0}\", \"{ty_name}\")?)?",
                f.name
            )
        }
        FieldDefault::Trait => "::core::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    };
    format!(
        "match __map.get(\"{0}\") {{\n\
         Some(__f) => {DE}(__f)?,\n\
         None => {fallback},\n}}",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.attrs.try_from {
        format!(
            "let __raw: {from_ty} = {DE}(__v)?;\n\
             ::core::convert::TryFrom::try_from(__raw).map_err({ERR}::custom)"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) if item.attrs.transparent => {
                assert_eq!(
                    fields.len(),
                    1,
                    "#[serde(transparent)] needs exactly one field"
                );
                format!("Ok({name} {{ {}: {DE}(__v)? }})", fields[0].name)
            }
            Kind::TupleStruct(1) => format!("Ok({name}({DE}(__v)?))"),
            Kind::NamedStruct(fields) => {
                let known: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                let deny = if item.attrs.deny_unknown {
                    format!(
                        "::serde::__private::deny_unknown(__map, &[{}], \"{name}\")?;\n",
                        known.join(", ")
                    )
                } else {
                    String::new()
                };
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!("{}: {},\n", f.name, named_field_expr(f, name)));
                }
                format!(
                    "match __v {{\n\
                     {VALUE}::Object(__map) => {{\n{deny}Ok({name} {{\n{inits}}})\n}}\n\
                     __other => Err({ERR}::mismatch(\"object\", __other)),\n}}"
                )
            }
            Kind::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n).map(|i| format!("{DE}(&__items[{i}])?")).collect();
                format!(
                    "match __v {{\n\
                     {VALUE}::Array(__items) if __items.len() == {n} => \
                     Ok({name}({elems})),\n\
                     __other => Err({ERR}::mismatch(\"array of {n}\", __other)),\n}}",
                    elems = elems.join(", ")
                )
            }
            Kind::UnitStruct => format!("Ok({name})"),
            Kind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut payload_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                        }
                        VariantShape::Tuple(1) => payload_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}({DE}(__inner)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> =
                                (0..*n).map(|i| format!("{DE}(&__items[{i}])?")).collect();
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => match __inner {{\n\
                                 {VALUE}::Array(__items) if __items.len() == {n} => \
                                 Ok({name}::{vname}({elems})),\n\
                                 __other => Err({ERR}::mismatch(\"array of {n}\", __other)),\n}},\n",
                                elems = elems.join(", ")
                            ));
                        }
                        VariantShape::Named(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                inits.push_str(&format!(
                                    "{}: {},\n",
                                    f.name,
                                    named_field_expr(f, name)
                                ));
                            }
                            payload_arms.push_str(&format!(
                                "\"{vname}\" => match __inner {{\n\
                                 {VALUE}::Object(__map) => Ok({name}::{vname} {{\n{inits}}}),\n\
                                 __other => Err({ERR}::mismatch(\"object\", __other)),\n}},\n"
                            ));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     {VALUE}::String(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => Err({ERR}::custom(format!(\
                     \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                     {VALUE}::Object(__m) if __m.len() == 1 => {{\n\
                     let (__k, __inner) = __m.iter().next().unwrap();\n\
                     match __k.as_str() {{\n\
                     {payload_arms}\
                     __other => Err({ERR}::custom(format!(\
                     \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                     __other => Err({ERR}::mismatch(\"{name} variant\", __other)),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{VALUE}) -> ::core::result::Result<Self, {ERR}> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}

//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkGroup`, `Bencher`,
//! `Throughput`, `BenchmarkId`, [`black_box`]) with a simple wall-clock
//! timer instead of criterion's statistical machinery: each benchmark runs
//! `sample_size` timed iterations and prints the mean. Good enough to keep
//! `cargo bench` meaningful and to keep bench targets compiling under
//! `cargo test`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work per iteration is reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call, then the timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// `cargo bench -- --test` smoke mode: run every routine once, skip the
/// timing report (mirrors real criterion's `--test` flag).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    if test_mode() {
        // samples = 0: `iter`'s unconditional warm-up call is the single run.
        let mut bencher = Bencher {
            samples: 0,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        println!("{label}: ok (test mode)");
        return;
    }
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed / bencher.iterations as u32;
    let mut line = format!("{label}: {} / iter", human_time(per_iter));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                count as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(" ({:.0} elem/s)", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" ({:.0} B/s)", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with test
            // harness flags; only time the benches under `cargo bench`.
            let bench_mode = std::env::args().any(|a| a == "--bench");
            if !bench_mode {
                return;
            }
            $( $group(); )+
        }
    };
}

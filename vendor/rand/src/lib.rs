//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io. This vendored crate implements the small subset of
//! the rand 0.8 API the workspace actually uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer ranges —
//! on top of a xoshiro256** generator seeded via SplitMix64. It is
//! deterministic and statistically solid for simulation workloads, but it is
//! **not** cryptographically secure.

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that values of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = rng.next_u64() as $wide % span;
                (self.start as $wide).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as $wide % span;
                (lo as $wide).wrapping_add(draw) as $t
            }
        }
    )+};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded with SplitMix64 (the initialisation recommended by the
    /// xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_and_in_range() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..1000 {
                let x: i8 = a.gen_range(-8i8..=8);
                assert_eq!(x, b.gen_range(-8i8..=8));
                assert!((-8..=8).contains(&x));
            }
        }

        #[test]
        fn covers_full_inclusive_domain() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                let _: u64 = r.gen_range(0u64..=u64::MAX);
            }
        }
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Text layer over the stub `serde` crate's [`Value`] tree: a recursive
//! descent JSON parser, a compact and a pretty printer, and the [`json!`]
//! macro. API-compatible (for the subset the workspace uses) with the real
//! serde_json.

use std::fmt;

pub use serde::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};

/// Error from parsing or value conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: String, line: usize, column: usize) -> Self {
        Error { msg, line, column }
    }

    /// One-based line of the error, or 0 when it has no text position
    /// (value-conversion errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// One-based column of the error, or 0 when it has no text position.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string(), 0, 0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// The stub value model can always be rendered, so this never fails; the
/// `Result` mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * depth));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (depth + 1)));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(msg.to_owned(), line, col)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half when present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u")
                                    && self.pos + 6 <= self.bytes.len()
                                {
                                    let hex2 = std::str::from_utf8(
                                        &self.bytes[self.pos + 2..self.pos + 6],
                                    )
                                    .map_err(|_| self.err("invalid \\u escape"))?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| self.err("invalid \\u escape"))?;
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Supports `null`, scalars,
/// arrays of expressions, and objects with string-literal keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, "x\n", true, null], "b": {}}"#).unwrap();
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_print_parses_back() {
        let v = json!({"outer": {"inner": [1, 2], "flag": false}});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
    }

    #[test]
    fn index_missing_key_is_null() {
        let v = json!({"a": 1});
        assert_eq!(v["missing"], Value::Null);
    }
}

//! Case execution: configuration, failure type, and the case loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Controls how many cases each property runs.
///
/// `max_shrink_iters` is accepted for source compatibility with the real
/// proptest but ignored: this stub reports the failing input without
/// shrinking it.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Ignored (no shrinking in the offline stub).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case failed (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion inside the property body did not hold.
    Fail(String),
    /// The input was rejected as not applicable (counts as a skip).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// Runs `case` for each of `config.cases` deterministic seeds, panicking
/// (failing the enclosing `#[test]`) on the first failure.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    // Seed derived from the test name so distinct properties explore
    // distinct streams, yet every run is reproducible.
    let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for case_index in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(name_hash ^ u64::from(case_index));
        let (input, outcome) = case(&mut rng);
        match outcome {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest case {case_index} of `{test_name}` failed: {msg}\n\
                 input: {input}"
            ),
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use — `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`,
//! `Strategy`/`Just`/`any`, range and tuple strategies, and
//! `collection::vec` — over the vendored `rand` crate. Failing cases are
//! reported with their generated inputs but are **not** shrunk
//! (`max_shrink_iters` is accepted and ignored).

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-line import of everything the macros and tests need.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Runs each `fn name(arg in strategy, ...) { body }` as a `#[test]` over
/// `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            // A tuple of strategies is itself a strategy for a tuple.
            let __strategy = ($( $strat, )+);
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let __vals =
                    $crate::strategy::Strategy::new_value(&__strategy, __rng);
                let __input = format!("{:?}", __vals);
                let ($($arg,)+) = __vals;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__input, __outcome)
            });
        }
    )*};
}

/// Defines `fn $name(...) -> impl Strategy<Value = $ret>` from component
/// strategies and a mapping body.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($arg:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($( $strat, )+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Chooses uniformly between the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Fails the current case (with the generated inputs in the message) when
/// the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}", format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}: {:?} == {:?}", format!($($fmt)+), __l, __r
        );
    }};
}

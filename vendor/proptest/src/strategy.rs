//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// The generator handed to strategies; a deterministic seeded PRNG.
pub type TestRng = StdRng;

/// Something that can generate random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A [`Strategy::prop_map`] adaptor.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted uniform choice between type-erased strategies.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one arm");
        Union { arms, total_weight }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            if draw < *weight {
                return strat.new_value(rng);
            }
            draw -= weight;
        }
        unreachable!("weights changed during generation")
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats support the half-open form only, matching the vendored rand's
// float sampling.
impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives, driven by raw generator bits.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.new_value(rng), )+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Inclusive bounds on a generated collection length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>`; see [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

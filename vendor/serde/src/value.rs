//! The JSON-like value tree both stub traits round-trip through.

use std::fmt;
use std::ops::{Index, IndexMut};

/// An ordered string-keyed map, preserving insertion order so printed JSON
/// follows struct declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably, inserting [`Value::Null`] when absent.
    pub fn entry_or_null(&mut self, key: &str) -> &mut Value {
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == key) {
            &mut self.entries[idx].1
        } else {
            self.entries.push((key.to_owned(), Value::Null));
            &mut self.entries.last_mut().unwrap().1
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.entries.iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer (fits `u64`).
    PosInt(u64),
    /// A negative integer (fits `i64`).
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Builds from a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Builds from an `i64`, normalising non-negatives to [`Number::PosInt`].
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Builds from an `f64`.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (always possible, may round).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` prints the shortest representation that round-trips,
            // always including a decimal point or exponent.
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            // JSON has no Inf/NaN; mirror serde_json's `null` behaviour.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Non-panicking indexing: `None` when the key/index is absent or the
    /// value is not a container of the right kind.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Returns the member, or `Null` when absent (matching `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Returns the member, inserting `Null` when absent.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(map) => map.entry_or_null(key),
            other => panic!("cannot index a JSON {} with a string key", other.kind()),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Returns the element, or `Null` when out of bounds or not an array.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $ctor:ident),+ $(,)?) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::$ctor(n.into())) }
        }
    )+};
}

impl_value_from_int!(u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64,
                     i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64);

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(Number::from_u64(n as u64))
    }
}

impl From<isize> for Value {
    fn from(n: isize) -> Value {
        Value::Number(Number::from_i64(n as i64))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::from_f64(n))
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Value {
        Value::Number(Number::from_f64(f64::from(n)))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

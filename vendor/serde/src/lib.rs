//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This crate provides a simplified but fully functional
//! serialization framework with the same *spelling* as serde — `#[derive(
//! Serialize, Deserialize)]`, `#[serde(...)]` attributes — so the workspace
//! code is source-compatible with the real crate.
//!
//! Instead of serde's visitor-based zero-copy data model, everything round
//! trips through an owned JSON-like [`Value`] tree: `Serialize` renders a
//! value *to* a [`Value`], `Deserialize` rebuilds one *from* a [`Value`].
//! The companion `serde_json` stub handles text parsing and printing.
//!
//! Supported `#[serde(...)]` attributes (the set the workspace uses):
//! `transparent`, `deny_unknown_fields`, `default` (field),
//! `try_from = "T"` / `into = "T"`.

mod value;

pub use value::{Map, Number, Value};

// Re-export the derive macros under the trait names, as the real serde does.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when a [`Value`] cannot be rebuilt into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Standard "expected X, found Y" mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts a value tree back into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_u64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

macro_rules! impl_serde_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_i64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers cannot hold u128 losslessly; encode as a decimal string.
        Value::String(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => s
                .parse()
                .map_err(|_| DeError::custom(format!("invalid u128 literal `{s}`"))),
            Value::Number(n) => n
                .as_u64()
                .map(u128::from)
                .ok_or_else(|| DeError::mismatch("u128", v)),
            other => Err(DeError::mismatch("u128", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::mismatch("bool", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::mismatch("f32", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("tuple array", other)),
                }
            }
        }
    )+};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching BTreeMap behaviour.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support items referenced by derive-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::{DeError, Deserialize, Map, Number, Serialize, Value};

    /// Looks up a field, enforcing presence.
    pub fn require<'v>(map: &'v Map, field: &str, ty: &str) -> Result<&'v Value, DeError> {
        map.get(field)
            .ok_or_else(|| DeError::custom(format!("missing field `{field}` in {ty}")))
    }

    /// Rejects keys that are not in `known` (for `deny_unknown_fields`).
    pub fn deny_unknown(map: &Map, known: &[&str], ty: &str) -> Result<(), DeError> {
        for (k, _) in map.iter() {
            if !known.contains(&k.as_str()) {
                return Err(DeError::custom(format!("unknown field `{k}` in {ty}")));
            }
        }
        Ok(())
    }
}

//! Build-system smoke tests.
//!
//! These exist to catch workspace regressions (broken manifests, missing
//! re-exports, vendored-dependency drift) with the cheapest possible
//! signal: the paper's default configuration must validate, and the facade
//! quickstart path — compile a zoo network, simulate it, observe non-zero
//! latency — must keep working end to end.

use pimsim::prelude::*;
use pimsim::{compiler::MappingPolicy, nn::zoo};

#[test]
fn paper_default_config_validates() {
    let arch = ArchConfig::paper_default();
    arch.validate().expect("the paper's configuration is valid");
}

#[test]
fn small_test_config_validates() {
    ArchConfig::small_test()
        .validate()
        .expect("the scaled-down test configuration is valid");
}

#[test]
fn facade_quickstart_runs() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .compile(&net)
        .expect("tiny_mlp fits the small test chip");
    let report = Simulator::new(&arch)
        .run(&compiled.program)
        .expect("compiled program simulates");
    assert!(
        report.latency.as_ns_f64() > 0.0,
        "simulated latency must be non-zero"
    );
    let out = report.read_global(compiled.output.gaddr, compiled.output.elems);
    assert_eq!(out.len(), compiled.output.elems as usize);
}

#[test]
fn config_roundtrips_through_json() {
    let arch = ArchConfig::paper_default();
    let text = arch.to_json();
    let back = ArchConfig::from_json(&text).expect("printed config parses back");
    assert_eq!(back.to_json(), text);
}

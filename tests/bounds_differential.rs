//! Differential soundness gate for the static performance bounds.
//!
//! For compiler-produced zoo programs the static analyzer must emit a
//! latency **lower** bound: `bounds(...).latency_lb_ps` may never exceed
//! the latency the simulator measures, under either mapping policy and
//! either engine. A violation means either the analyzer invented a
//! constraint the machine does not enforce, or the simulator's cost
//! model drifted below the shared pricing tables — both are bugs worth
//! failing loudly on. CI runs the full 11-network zoo through the
//! `pimsim bound` CLI; this in-tree subset keeps the gate in `cargo
//! test` at debug-build-friendly sizes.

use pimsim::nn::zoo;
use pimsim::prelude::*;
use pimsim::sim::EngineKind;

/// Asserts bound soundness + determinism for one network on one arch.
fn assert_sound(net: &Network, arch: &ArchConfig) {
    for policy in [
        MappingPolicy::UtilizationFirst,
        MappingPolicy::PerformanceFirst,
    ] {
        let compiled = Compiler::new(arch)
            .mapping(policy)
            .functional(false)
            .compile(net)
            .unwrap();
        let report = bounds(&compiled.program, arch);
        assert!(
            report.complete,
            "{policy:?}: compiler output should be fully analyzable: {:?}",
            report.diagnostics
        );
        assert!(report.latency_lb_ps > 0, "{policy:?}: trivial bound");
        // Determinism: a second run serializes byte-identically.
        assert_eq!(
            report.to_json(),
            bounds(&compiled.program, arch).to_json(),
            "{policy:?}: bound must be deterministic"
        );
        for kind in EngineKind::ALL {
            let sim = Simulator::new(arch)
                .with_engine(kind.engine())
                .run(&compiled.program)
                .unwrap();
            assert!(
                report.latency_lb_ps <= sim.latency.as_ps(),
                "{policy:?}/{kind}: static bound {} ps exceeds simulated {} ps",
                report.latency_lb_ps,
                sim.latency.as_ps()
            );
        }
    }
}

#[test]
fn tiny_mlp_bound_is_sound() {
    assert_sound(&zoo::tiny_mlp(), &ArchConfig::small_test());
}

#[test]
fn tiny_cnn_bound_is_sound() {
    assert_sound(&zoo::tiny_cnn(), &ArchConfig::small_test());
}

#[test]
fn lenet_bound_is_sound() {
    assert_sound(&zoo::lenet(32), &ArchConfig::paper_default());
}

#[test]
fn vgg8_bound_is_sound() {
    // One policy/engine combination: the full cross product on a net
    // this size belongs to the release-mode CI gate, not debug `cargo
    // test`.
    let arch = ArchConfig::paper_default();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(&zoo::vgg8(32))
        .unwrap();
    let report = bounds(&compiled.program, &arch);
    assert!(report.complete, "{:?}", report.diagnostics);
    let sim = Simulator::new(&arch).run(&compiled.program).unwrap();
    assert!(report.latency_lb_ps <= sim.latency.as_ps());
}

#[test]
fn bound_is_sound_across_arch_knobs() {
    // The pricing must stay a lower bound when the knobs it feeds on
    // move: deeper routers, fewer credits, tight ROB, more VCs.
    let net = zoo::tiny_cnn();
    let mut arch = ArchConfig::small_test()
        .with_rob(2)
        .with_router_pipeline_depth(3)
        .with_virtual_channels(2);
    arch.noc.channel_credits = 1;
    assert_sound(&net, &arch);
}

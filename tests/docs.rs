//! The docs/ book stays coherent: every chapter the summary lists
//! exists, every chapter on disk is listed, relative links resolve, and
//! the README points into the book. This is the CI `docs` job's
//! link-check (there is no mdBook binary in the offline environment).

use std::collections::BTreeSet;
use std::path::Path;

fn docs_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/docs"))
}

/// Every `](target)` markdown link in `text`.
fn links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("](") {
        rest = &rest[pos + 2..];
        if let Some(end) = rest.find(')') {
            out.push(rest[..end].to_string());
            rest = &rest[end..];
        }
    }
    out
}

/// Resolves a relative link (optionally with a `#anchor`) against docs/,
/// returning the target path if it is a local file link.
fn local_target(link: &str) -> Option<String> {
    if link.starts_with("http://") || link.starts_with("https://") || link.starts_with('#') {
        return None;
    }
    let path = link.split('#').next().unwrap_or(link);
    if path.is_empty() {
        return None;
    }
    Some(path.to_string())
}

#[test]
fn summary_lists_exactly_the_chapters_on_disk() {
    let summary = std::fs::read_to_string(docs_dir().join("SUMMARY.md")).expect("docs/SUMMARY.md");
    let listed: BTreeSet<String> = links(&summary)
        .iter()
        .filter_map(|l| local_target(l))
        .collect();
    // Each listed chapter exists...
    for chapter in &listed {
        assert!(
            docs_dir().join(chapter).is_file(),
            "SUMMARY.md lists `{chapter}` but docs/{chapter} does not exist"
        );
    }
    // ...and each chapter on disk is listed (SUMMARY.md itself aside).
    for entry in std::fs::read_dir(docs_dir()).expect("docs/ exists") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().to_string();
        if !name.ends_with(".md") || name == "SUMMARY.md" {
            continue;
        }
        assert!(
            listed.contains(&name),
            "docs/{name} exists but SUMMARY.md does not list it"
        );
    }
    // The book is a real book, not a stub.
    let chapters = listed.iter().filter(|c| *c != "README.md").count();
    assert!(
        chapters >= 6,
        "expected at least 6 chapters in docs/, found {chapters}"
    );
}

#[test]
fn every_relative_link_in_the_book_resolves() {
    for entry in std::fs::read_dir(docs_dir()).expect("docs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "md") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("chapter is readable");
        for link in links(&text) {
            let Some(target) = local_target(&link) else {
                continue;
            };
            assert!(
                docs_dir().join(&target).exists(),
                "{}: link `{link}` does not resolve",
                path.display()
            );
        }
    }
}

#[test]
fn readme_links_into_the_book() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md");
    let doc_links: Vec<String> = links(&readme)
        .into_iter()
        .filter(|l| l.starts_with("docs/"))
        .collect();
    assert!(
        doc_links.len() >= 3,
        "README.md should link into docs/ (found {doc_links:?})"
    );
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR")));
    for link in doc_links {
        let target = link.split('#').next().unwrap_or(&link);
        assert!(
            root.join(target).exists(),
            "README.md link `{link}` does not resolve"
        );
    }
}

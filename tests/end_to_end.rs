//! Workspace-level integration tests: the full ISA → compiler → simulator
//! stack, exercised through the `pimsim` facade crate.

use pimsim::nn::{zoo, GoldenModel, WeightGen};
use pimsim::prelude::*;

/// Compile + simulate functionally, returning the output tensor.
fn simulate(net: &pimsim::nn::Network, arch: &ArchConfig, policy: MappingPolicy) -> Vec<i32> {
    let compiled = Compiler::new(arch).mapping(policy).compile(net).unwrap();
    let report = Simulator::new(arch).run(&compiled.program).unwrap();
    report.read_global(compiled.output.gaddr, compiled.output.elems)
}

#[test]
fn quickstart_flow_matches_golden() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen)
        .run(&gen.input(net.input_shape.elems()))
        .unwrap();
    assert_eq!(
        simulate(&net, &arch, MappingPolicy::PerformanceFirst),
        golden
    );
}

#[test]
fn batched_inference_repeats_the_same_output() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .batch(3)
        .compile(&net)
        .unwrap();
    let report = Simulator::new(&arch).run(&compiled.program).unwrap();
    let n = compiled.output.elems;
    let first = report.read_global(compiled.output.gaddr, n);
    for img in 1..3u64 {
        let other = report.read_global(compiled.output.gaddr + img * n as u64, n);
        assert_eq!(other, first, "image {img} must produce identical output");
    }
    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen)
        .run(&gen.input(net.input_shape.elems()))
        .unwrap();
    assert_eq!(first, golden);
}

#[test]
fn batching_pipelines_across_cores() {
    // Per-image latency with a batch must beat single-image latency
    // (layers on distinct cores overlap across images).
    let arch = ArchConfig::paper_default().with_rob(4);
    let net = zoo::vgg8(32);
    let one = {
        let c = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .compile(&net)
            .unwrap();
        Simulator::new(&arch).run(&c.program).unwrap().latency
    };
    let four = {
        let c = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .batch(4)
            .compile(&net)
            .unwrap();
        Simulator::new(&arch).run(&c.program).unwrap().latency / 4
    };
    assert!(
        four.as_ps() < one.as_ps(),
        "pipelined per-image latency {four} should beat single-image {one}"
    );
}

#[test]
fn rob_latency_is_monotone_nonincreasing() {
    let net = zoo::tiny_cnn();
    let mut prev: Option<u64> = None;
    for rob in [1u32, 4, 16] {
        let arch = ArchConfig::small_test().with_rob(rob);
        let compiled = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .compile(&net)
            .unwrap();
        let lat = Simulator::new(&arch)
            .run(&compiled.program)
            .unwrap()
            .latency
            .as_ps();
        if let Some(p) = prev {
            // Allow 2% slack: a bigger window can slightly reshuffle NoC
            // contention, but the trend must hold.
            assert!(
                lat <= p + p / 50,
                "rob={rob} latency {lat} worse than previous {p}"
            );
        }
        prev = Some(lat);
    }
}

#[test]
fn performance_first_beats_utilization_first_on_branchy_nets() {
    let arch = ArchConfig::paper_default().with_rob(1);
    let net = zoo::squeezenet(64);
    let run = |policy| {
        let c = Compiler::new(&arch)
            .mapping(policy)
            .functional(false)
            .batch(2)
            .compile(&net)
            .unwrap();
        Simulator::new(&arch).run(&c.program).unwrap().latency
    };
    let util = run(MappingPolicy::UtilizationFirst);
    let perf = run(MappingPolicy::PerformanceFirst);
    assert!(
        perf < util,
        "performance-first ({perf}) should beat utilization-first ({util})"
    );
}

#[test]
fn determinism_of_full_stack() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    let a = simulate(&net, &arch, MappingPolicy::UtilizationFirst);
    let b = simulate(&net, &arch, MappingPolicy::UtilizationFirst);
    assert_eq!(a, b);

    let arch2 = ArchConfig::paper_default().with_rob(8);
    let compiled = Compiler::new(&arch2)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(&zoo::vgg8(32))
        .unwrap();
    let r1 = Simulator::new(&arch2).run(&compiled.program).unwrap();
    let r2 = Simulator::new(&arch2).run(&compiled.program).unwrap();
    assert_eq!(r1.latency, r2.latency);
    assert_eq!(r1.events, r2.events);
}

#[test]
fn program_json_roundtrip_preserves_simulation() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .compile(&net)
        .unwrap();
    let json = compiled.program.to_json();
    let back = Program::from_json(&json).unwrap();
    assert_eq!(back, compiled.program);
    let r1 = Simulator::new(&arch).run(&compiled.program).unwrap();
    let r2 = Simulator::new(&arch).run(&back).unwrap();
    assert_eq!(r1.latency, r2.latency);
}

#[test]
fn disassembly_of_compiled_program_reassembles() {
    // Weight matrices are elided by the disassembler, so compile
    // timing-only and compare instruction streams.
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(&net)
        .unwrap();
    let text = pimsim::isa::asm::disassemble(&compiled.program);
    let back = pimsim::isa::asm::assemble(&text).unwrap();
    for (a, b) in compiled.program.cores.iter().zip(&back.cores) {
        assert_eq!(a.instrs, b.instrs);
        assert_eq!(a.groups, b.groups);
    }
}

#[test]
fn network_description_file_flow() {
    // Network -> JSON file -> Network -> compile -> simulate == golden.
    let dir = std::env::temp_dir().join("pimsim-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("net.json");
    let net = zoo::tiny_cnn();
    net.to_file(&path).unwrap();
    let loaded = pimsim::nn::Network::from_file(&path).unwrap();
    assert_eq!(loaded, net);

    let arch = ArchConfig::small_test();
    let out = simulate(&loaded, &arch, MappingPolicy::PerformanceFirst);
    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen)
        .run(&gen.input(net.input_shape.elems()))
        .unwrap();
    assert_eq!(out, golden);
}

#[test]
fn baseline_reports_lower_comm_share_than_cycle_accurate() {
    use pimsim::baseline::BaselineSimulator;
    let arch = ArchConfig::paper_default().with_rob(16);
    let net = zoo::vgg8(32);
    let base = BaselineSimulator::new(&arch).run(&net).unwrap();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(&net)
        .unwrap();
    let ours = Simulator::new(&arch).run(&compiled.program).unwrap();

    // Second convolution, as in the paper's analysis.
    let conv2 = compiled
        .node_names
        .iter()
        .enumerate()
        .filter(|(_, n)| n.contains("conv"))
        .map(|(i, _)| i)
        .nth(1)
        .unwrap();
    let base_ratio = base.per_layer[conv2].comm_ratio();
    let ours_ratio = ours.comm_ratio(conv2 as u16);
    assert!(
        ours_ratio > base_ratio,
        "synchronized transfers must show a larger comm share ({ours_ratio:.3} vs {base_ratio:.3})"
    );
    // And the cycle-accurate simulator must be slower end to end.
    assert!(ours.latency > base.latency);
}

#[test]
fn mesh_size_affects_latency_not_results() {
    let net = zoo::tiny_cnn();
    let small = ArchConfig::small_test();
    let mut wide = ArchConfig::small_test();
    wide.resources.core_rows = 4;
    wide.resources.core_cols = 4;
    let a = simulate(&net, &small, MappingPolicy::PerformanceFirst);
    let b = simulate(&net, &wide, MappingPolicy::PerformanceFirst);
    assert_eq!(a, b, "chip geometry must not change functional results");
}

#[test]
fn extended_zoo_compiles_and_simulates() {
    // The zoo networks beyond the paper's evaluation set also run end to
    // end (timing-only on the paper chip).
    let arch = ArchConfig::paper_default().with_rob(8);
    for (name, hw) in [("lenet", 32), ("vgg11", 32), ("resnet34", 32)] {
        let net = pimsim::nn::zoo::by_name(name, hw).unwrap();
        let compiled = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .compile(&net)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = Simulator::new(&arch)
            .run(&compiled.program)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.latency.as_ns_f64() > 0.0, "{name}");
    }
}

#[test]
fn lenet_matches_golden_functionally() {
    // Tanh activations + average pooling, end to end. LeNet's 5x5 convs
    // need a few more of the tiny 16x16-crossbar cores than the default
    // test chip offers.
    let mut arch = ArchConfig::small_test();
    arch.resources.core_rows = 6;
    arch.resources.core_cols = 6;
    let net = pimsim::nn::zoo::lenet(32);
    let gen = WeightGen::for_network(&net);
    let golden = GoldenModel::new(&net, gen)
        .run(&gen.input(net.input_shape.elems()))
        .unwrap();
    assert_eq!(
        simulate(&net, &arch, MappingPolicy::PerformanceFirst),
        golden
    );
}

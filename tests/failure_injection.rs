//! Failure injection: every misuse must produce a typed error, never a
//! panic or a wrong result.

use pimsim::compiler::CompileError;
use pimsim::nn::{zoo, Activation, Layer, Network, PortRef, Shape};
use pimsim::prelude::*;
use pimsim::sim::SimError;

#[test]
fn network_too_big_for_chip() {
    let mut arch = ArchConfig::small_test();
    arch.resources.core_rows = 1;
    arch.resources.core_cols = 2;
    arch.resources.xbars_per_core = 1;
    let err = Compiler::new(&arch).compile(&zoo::vgg8(32)).unwrap_err();
    assert!(matches!(err, CompileError::Unmappable { .. }), "got {err}");
    // The message names the resource and the layer.
    let msg = err.to_string();
    assert!(msg.contains("cores"), "{msg}");
}

#[test]
fn local_memory_too_small() {
    let mut arch = ArchConfig::small_test();
    arch.resources.local_mem_kb = 1;
    let err = Compiler::new(&arch).compile(&zoo::tiny_cnn()).unwrap_err();
    assert!(
        matches!(err, CompileError::LocalMemoryOverflow { .. }),
        "got {err}"
    );
}

#[test]
fn invalid_arch_rejected_by_all_entry_points() {
    let mut arch = ArchConfig::paper_default();
    arch.timing.core_freq_ghz = -1.0;
    assert!(Compiler::new(&arch).compile(&zoo::tiny_mlp()).is_err());
    assert!(Simulator::new(&arch).run(&Program::with_cores(1)).is_err());
    assert!(pimsim::baseline::BaselineSimulator::new(&arch)
        .run(&zoo::tiny_mlp())
        .is_err());
}

#[test]
fn malformed_network_rejected() {
    // An Add with mismatched input shapes.
    let mut b = Network::builder("bad", Shape::new(8, 8, 3));
    let a = b.add(
        "c1",
        Layer::Conv2d {
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: Some(Activation::Relu),
        },
        vec![PortRef::Input],
    );
    let c = b.add(
        "c2",
        Layer::Conv2d {
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            activation: None,
        },
        vec![a],
    );
    b.add("sum", Layer::Add { activation: None }, vec![a, c]);
    assert!(b.finish().is_err());
}

#[test]
fn corrupt_program_rejected_by_simulator() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch).compile(&net).unwrap();
    let mut program = compiled.program.clone();
    // Corrupt: point an MVM at a group that does not exist.
    for core in &mut program.cores {
        for i in &mut core.instrs {
            if let pimsim::isa::Instruction::Mvm { group, .. } = i {
                *group = pimsim::isa::GroupId(4000);
            }
        }
    }
    let err = Simulator::new(&arch).run(&program).unwrap_err();
    assert!(matches!(err, SimError::InvalidProgram(_)), "got {err}");
}

#[test]
fn truncated_tag_space_detected() {
    // Force a tag overflow by asking for absurdly many edges is
    // impractical; instead check the mismatch detection directly.
    let arch = ArchConfig::small_test();
    let program = pimsim::isa::asm::assemble(
        r#"
        .core 0
        send core1, [r0+0], 64, tag=3
        halt
        .core 1
        recv core0, [r0+0], 32, tag=3
        halt
        "#,
    )
    .unwrap();
    let err = Simulator::new(&arch).run(&program).unwrap_err();
    assert!(matches!(err, SimError::TagMismatch { .. }), "got {err}");
}

#[test]
fn config_file_errors_are_typed() {
    let dir = std::env::temp_dir().join("pimsim-failures");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{ not json").unwrap();
    assert!(ArchConfig::from_file(&path).is_err());
    assert!(ArchConfig::from_file(dir.join("missing.json")).is_err());
    assert!(pimsim::nn::Network::from_file(dir.join("missing.json")).is_err());
}

#[test]
fn errors_are_send_sync_std_errors() {
    fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
    assert_err::<CompileError>();
    assert_err::<SimError>();
    assert_err::<pimsim::arch::ArchError>();
    assert_err::<pimsim::nn::NnError>();
    assert_err::<pimsim::isa::IsaError>();
    assert_err::<pimsim::baseline::BaselineError>();
}

//! Property-based end-to-end test: random small CNNs compile, simulate and
//! match the golden model bit-exactly under both mapping policies.

use pimsim::nn::{Activation, GoldenModel, Layer, Network, PortRef, Shape, WeightGen};
use pimsim::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Conv { ch: u8, k: u8, stride: u8, act: u8 },
    Pool { max: bool, k: u8 },
    Act(u8),
    Residual,
    Branch { ch: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..=12, 1u8..=3, 1u8..=2, 0u8..3).prop_map(|(ch, k, stride, act)| Op::Conv {
            ch,
            k,
            stride,
            act
        }),
        (any::<bool>(), 2u8..=3).prop_map(|(max, k)| Op::Pool { max, k }),
        (0u8..3).prop_map(Op::Act),
        Just(Op::Residual),
        (1u8..=8).prop_map(|ch| Op::Branch { ch }),
    ]
}

fn act_of(code: u8) -> Option<Activation> {
    match code {
        0 => Some(Activation::Relu),
        1 => Some(Activation::Sigmoid),
        _ => Some(Activation::Tanh),
    }
}

/// Builds a random-but-valid network from an op list, skipping ops that
/// would not type-check at the current shape.
fn build(ops: &[Op], hw: u8, in_ch: u8) -> Option<Network> {
    let mut b = Network::builder("random", Shape::new(hw as u32, hw as u32, in_ch as u32));
    let mut cur = PortRef::Input;
    let mut shape = Shape::new(hw as u32, hw as u32, in_ch as u32);
    let mut n = 0;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Conv { ch, k, stride, act } => {
                let k = (*k).min(shape.height.min(shape.width) as u8);
                if k == 0 {
                    continue;
                }
                let stride = (*stride).clamp(1, k);
                cur = b.add(
                    format!("conv{i}"),
                    Layer::Conv2d {
                        out_channels: *ch as u32,
                        kernel: k as u32,
                        stride: stride as u32,
                        padding: (k / 2) as u32,
                        activation: act_of(*act),
                    },
                    vec![cur],
                );
                let pad = (k / 2) as u32;
                let h = (shape.height + 2 * pad - k as u32) / stride as u32 + 1;
                let w = (shape.width + 2 * pad - k as u32) / stride as u32 + 1;
                shape = Shape::new(h, w, *ch as u32);
                n += 1;
            }
            Op::Pool { max, k } => {
                let k = (*k).min(shape.height.min(shape.width) as u8);
                if k < 2 {
                    continue;
                }
                let layer = if *max {
                    Layer::MaxPool2d {
                        kernel: k as u32,
                        stride: k as u32,
                        padding: 0,
                    }
                } else {
                    Layer::AvgPool2d {
                        kernel: k as u32,
                        stride: k as u32,
                        padding: 0,
                    }
                };
                cur = b.add(format!("pool{i}"), layer, vec![cur]);
                shape = Shape::new(
                    shape.height / k as u32,
                    shape.width / k as u32,
                    shape.channels,
                );
            }
            Op::Act(code) => {
                cur = b.add(
                    format!("act{i}"),
                    Layer::Activation(act_of(*code).unwrap()),
                    vec![cur],
                );
            }
            Op::Residual => {
                // x + conv(x), same shape.
                let side = b.add(
                    format!("res{i}/conv"),
                    Layer::Conv2d {
                        out_channels: shape.channels,
                        kernel: 3.min(shape.height.min(shape.width)),
                        stride: 1,
                        padding: 3u32.min(shape.height.min(shape.width)) / 2,
                        activation: None,
                    },
                    vec![cur],
                );
                // Only valid when the conv preserves shape (k odd => same).
                if 3u32.min(shape.height.min(shape.width)) % 2 == 1 {
                    cur = b.add(
                        format!("res{i}/add"),
                        Layer::Add {
                            activation: Some(Activation::Relu),
                        },
                        vec![cur, side],
                    );
                } else {
                    cur = side;
                    shape = Shape::new(shape.height, shape.width, shape.channels);
                }
                n += 1;
            }
            Op::Branch { ch } => {
                // concat(conv1x1(x), conv3x3(x)) when wide enough.
                if shape.height < 3 || shape.width < 3 {
                    continue;
                }
                let b1 = b.add(
                    format!("br{i}/a"),
                    Layer::Conv2d {
                        out_channels: *ch as u32,
                        kernel: 1,
                        stride: 1,
                        padding: 0,
                        activation: Some(Activation::Relu),
                    },
                    vec![cur],
                );
                let b2 = b.add(
                    format!("br{i}/b"),
                    Layer::Conv2d {
                        out_channels: *ch as u32,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                        activation: Some(Activation::Relu),
                    },
                    vec![cur],
                );
                cur = b.add(format!("br{i}/cat"), Layer::Concat, vec![b1, b2]);
                shape = Shape::new(shape.height, shape.width, 2 * *ch as u32);
                n += 2;
            }
        }
        if shape.height == 0 || shape.width == 0 {
            return None;
        }
    }
    let flat = b.add("flatten", Layer::Flatten, vec![cur]);
    b.add(
        "head",
        Layer::Linear {
            out_features: 4,
            activation: None,
        },
        vec![flat],
    );
    let _ = n;
    b.finish().ok()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 40,
    })]

    #[test]
    fn random_networks_match_golden(
        ops in proptest::collection::vec(op_strategy(), 1..5),
        hw in 6u8..=10,
        in_ch in 1u8..=4,
    ) {
        let Some(net) = build(&ops, hw, in_ch) else {
            return Ok(()); // degenerate shape; skip
        };
        let arch = ArchConfig::small_test();
        let gen = WeightGen::for_network(&net);
        let golden = GoldenModel::new(&net, gen)
            .run(&gen.input(net.input_shape.elems()))
            .unwrap();
        for policy in [MappingPolicy::PerformanceFirst, MappingPolicy::UtilizationFirst] {
            let compiled = match Compiler::new(&arch).mapping(policy).compile(&net) {
                Ok(c) => c,
                // Running out of crossbars on the tiny test chip is a
                // legitimate outcome for a random net; anything else is not.
                Err(pimsim::compiler::CompileError::Unmappable { .. }) => continue,
                Err(e) => panic!("unexpected compile error: {e}"),
            };
            let report = Simulator::new(&arch).run(&compiled.program)
                .unwrap_or_else(|e| panic!("simulate failed under {policy}: {e}"));
            let out = report.read_global(compiled.output.gaddr, compiled.output.elems);
            prop_assert_eq!(&out, &golden, "mismatch under {}", policy);
        }
    }
}

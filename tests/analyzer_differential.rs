//! Differential property test for the static analyzer: random multi-core
//! send/recv programs are generated from a global transfer order and then
//! perturbed (instruction swaps, payload-length edits). Whenever
//! `pimsim::analyze` certifies a program clean, the simulator must run it
//! to completion — no `Deadlock`, no `TagMismatch`. The perturbations
//! produce plenty of genuinely broken programs; those must be rejected
//! *statically* so the clean-implies-runs direction actually gets
//! exercised from both sides of the boundary.

use pimsim::analyze::analyze;
use pimsim::isa::asm;
use pimsim::prelude::*;
use pimsim::sim::SimError;
use proptest::prelude::*;

const CORES: usize = 3;

/// One transfer in the global order: sender, receiver, tag, payload words.
#[derive(Debug, Clone)]
struct Xfer {
    from: usize,
    to: usize,
    tag: u8,
    len: u8,
}

fn xfer_strategy() -> impl Strategy<Value = Xfer> {
    (0..CORES, 1..CORES, 0u8..4, 1u8..=4).prop_map(|(from, hop, tag, len)| Xfer {
        from,
        to: (from + hop) % CORES,
        tag,
        len,
    })
}

/// A perturbation applied after generation. Swaps reorder a core's
/// instruction stream (possibly crossing send/recv orders between
/// channels); `LenEdit` changes one receive's payload length.
#[derive(Debug, Clone)]
enum Tweak {
    Swap { core: usize, at: usize },
    LenEdit { event: usize, len: u8 },
}

fn tweak_strategy() -> impl Strategy<Value = Tweak> {
    prop_oneof![
        3 => (0..CORES, 0usize..16).prop_map(|(core, at)| Tweak::Swap { core, at }),
        1 => (0usize..24, 1u8..=5).prop_map(|(event, len)| Tweak::LenEdit { event, len }),
    ]
}

/// Builds the assembly text: each transfer appends a send to its sender
/// and a recv to its receiver, in one global order (which is always
/// deadlock-free), then the tweaks are applied to break it.
fn build_program(xfers: &[Xfer], tweaks: &[Tweak]) -> String {
    let mut lines: Vec<Vec<String>> = vec![Vec::new(); CORES];
    let mut recv_lens: Vec<u8> = xfers.iter().map(|x| x.len).collect();
    for t in tweaks {
        if let Tweak::LenEdit { event, len } = t {
            if let Some(slot) = recv_lens.get_mut(event % xfers.len().max(1)) {
                *slot = *len;
            }
        }
    }
    for (i, x) in xfers.iter().enumerate() {
        lines[x.from].push(format!(
            "send core{}, [r0+{}], {}, tag={}",
            x.to,
            1024 + i * 8,
            x.len,
            x.tag
        ));
        lines[x.to].push(format!(
            "recv core{}, [r0+{}], {}, tag={}",
            x.from,
            i * 8,
            recv_lens[i],
            x.tag
        ));
    }
    for t in tweaks {
        if let Tweak::Swap { core, at } = t {
            let stream = &mut lines[*core];
            if stream.len() >= 2 {
                let at = at % (stream.len() - 1);
                stream.swap(at, at + 1);
            }
        }
    }
    let mut text = String::new();
    for (core, stream) in lines.iter().enumerate() {
        text.push_str(&format!(".core {core}\n"));
        for line in stream {
            text.push_str(line);
            text.push('\n');
        }
        text.push_str("halt\n");
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 64,
    })]

    #[test]
    fn analyzer_clean_programs_never_deadlock(
        xfers in proptest::collection::vec(xfer_strategy(), 1..12),
        tweaks in proptest::collection::vec(tweak_strategy(), 0..5),
    ) {
        let arch = ArchConfig::small_test();
        let text = build_program(&xfers, &tweaks);
        let program = asm::assemble(&text).expect("generated assembly is well-formed");
        let analysis = analyze(&program, &arch);
        if analysis.has_errors() {
            return Ok(()); // statically rejected; nothing to certify
        }
        // A clean verdict also promises a complete rendezvous map.
        prop_assert!(
            analysis.rendezvous.complete,
            "no errors but incomplete rendezvous map:\n{text}"
        );
        match Simulator::new(&arch).run(&program) {
            Ok(_) => {}
            Err(e @ (SimError::Deadlock { .. } | SimError::TagMismatch { .. })) => {
                return Err(TestCaseError::fail(format!(
                    "analyzer certified a program the machine could not run: {e}\n{text}"
                )));
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "unexpected non-rendezvous failure: {e}\n{text}"
                )));
            }
        }
    }

    /// The preflight gate and the bare run agree on clean programs, and
    /// the analyzer itself is deterministic.
    #[test]
    fn preflight_agrees_with_the_analyzer(
        xfers in proptest::collection::vec(xfer_strategy(), 1..8),
        tweaks in proptest::collection::vec(tweak_strategy(), 0..4),
    ) {
        let arch = ArchConfig::small_test();
        let text = build_program(&xfers, &tweaks);
        let program = asm::assemble(&text).expect("generated assembly is well-formed");
        let a = analyze(&program, &arch);
        let b = analyze(&program, &arch);
        prop_assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        let gated = Simulator::new(&arch).with_preflight().run(&program);
        match (a.has_errors(), gated) {
            (true, Err(SimError::StaticAnalysis { .. })) => {}
            (true, other) => {
                return Err(TestCaseError::fail(format!(
                    "preflight let an erroring program through: {other:?}\n{text}"
                )));
            }
            (false, Err(SimError::StaticAnalysis { detail })) => {
                return Err(TestCaseError::fail(format!(
                    "preflight rejected a clean program: {detail}\n{text}"
                )));
            }
            (false, _) => {}
        }
    }

    /// Soundness of the static performance bound on random clean
    /// programs: the bound never exceeds the simulated latency under
    /// either engine, and `bounds` itself is deterministic.
    #[test]
    fn static_bound_never_exceeds_simulated_latency(
        xfers in proptest::collection::vec(xfer_strategy(), 1..10),
        tweaks in proptest::collection::vec(tweak_strategy(), 0..4),
    ) {
        use pimsim::prelude::bounds;
        use pimsim::sim::EngineKind;

        let arch = ArchConfig::small_test();
        let text = build_program(&xfers, &tweaks);
        let program = asm::assemble(&text).expect("generated assembly is well-formed");
        if analyze(&program, &arch).has_errors() {
            // Rejected programs get the trivial zero bound; nothing to
            // compare against a run that would fail anyway.
            let r = bounds(&program, &arch);
            prop_assert_eq!(r.latency_lb_ps, 0);
            prop_assert_eq!(r.bound_source, "unanalyzable");
            return Ok(());
        }
        let report = bounds(&program, &arch);
        prop_assert!(report.complete, "clean program must analyze fully:\n{text}");
        prop_assert_eq!(
            report.to_json(),
            bounds(&program, &arch).to_json(),
            "bound must be deterministic"
        );
        for kind in EngineKind::ALL {
            let sim = Simulator::new(&arch)
                .with_engine(kind.engine())
                .run(&program)
                .map_err(|e| TestCaseError::fail(format!(
                    "clean program failed to run under {kind}: {e}\n{text}"
                )))?;
            prop_assert!(
                report.latency_lb_ps <= sim.latency.as_ps(),
                "{}: bound {} ps exceeds simulated {} ps\n{}",
                kind, report.latency_lb_ps, sim.latency.as_ps(), text
            );
        }
    }
}

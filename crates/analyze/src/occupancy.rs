//! Per-channel credit occupancy: how much flow-control head-room each
//! `(sender, receiver, tag)` channel really needs.
//!
//! The pass replays the same zero-latency abstract transfer execution the
//! rendezvous checker uses, but with *unbounded* credits, and records per
//! channel the peak number of in-flight messages and the peak per-VC
//! credit usage. From those peaks it derives:
//!
//! * **`min_credits`** per channel — the smallest per-VC credit limit on
//!   *that channel alone* (all others unbounded) at which the abstract
//!   execution still drains;
//! * **`min_credits_deadlock_free`** — the smallest *uniform* per-VC
//!   credit limit at which every core drains; and
//! * **`credit_knee`** — the largest per-VC peak across all channels:
//!   raising the configured credit count past the knee cannot change any
//!   channel's behavior, so more credits stop helping.
//!
//! All of this is defined only when every core's transfer order is
//! statically known and every site is paired; otherwise the report is
//! empty and the minima are `None`.

use std::collections::{BTreeMap, VecDeque};

use pimsim_isa::Program;
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::rendezvous::{site_of, Site};

/// One channel's occupancy profile under the most-permissive abstract
/// execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelBound {
    /// Sending core.
    pub sender: u16,
    /// Receiving core.
    pub receiver: u16,
    /// Channel tag.
    pub tag: u16,
    /// Messages carried over the whole program.
    pub messages: u32,
    /// Peak simultaneously in-flight (sent, not yet received) messages
    /// with unbounded credits.
    pub peak_in_flight: u32,
    /// Peak credits in use on any single virtual channel, with the
    /// configured VC count and round-robin assignment.
    pub peak_per_vc: u32,
    /// Smallest per-VC credit limit on this channel alone at which the
    /// abstract execution drains; `None` when the analysis does not
    /// apply (non-linear or unpaired programs).
    pub min_credits: Option<u32>,
}

/// The credit-occupancy section of a bounds report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OccupancyReport {
    /// Per-channel profiles, sorted by `(sender, receiver, tag)`.
    pub channels: Vec<ChannelBound>,
    /// Smallest uniform per-VC credit limit at which every core drains;
    /// `None` when the analysis does not apply.
    pub min_credits_deadlock_free: Option<u32>,
    /// Largest per-VC peak across channels: credits beyond this cannot
    /// change behavior. `0` when the program has no transfers.
    pub credit_knee: u32,
}

/// One abstract run's per-channel observations.
#[derive(Debug, Default)]
struct ChannelStats {
    messages: u32,
    peak_in_flight: u32,
    peak_per_vc: u32,
}

/// Replays the transfer sequences with a per-channel credit limit
/// (`None` = unbounded). Returns `(drained, stats)`.
fn exec(
    seqs: &[Vec<Site>],
    vcs: u32,
    limit: impl Fn(&(u16, u16, u16)) -> Option<u32>,
) -> (bool, BTreeMap<(u16, u16, u16), ChannelStats>) {
    struct Chan {
        queue: VecDeque<u32>,
        vc_used: Vec<u32>,
        next_vc: u32,
        stats: ChannelStats,
    }
    let mut cursor = vec![0usize; seqs.len()];
    let mut chans: BTreeMap<(u16, u16, u16), Chan> = BTreeMap::new();
    // Greedy fixpoint, same argument as the rendezvous checker: each
    // channel has one producer and one consumer, so enabled moves are
    // persistent and the visit order cannot mask a drain.
    loop {
        let mut progressed = false;
        for c in 0..seqs.len() {
            while let Some(&site) = seqs[c].get(cursor[c]) {
                let ch = chans.entry(site.key).or_insert_with(|| Chan {
                    queue: VecDeque::new(),
                    vc_used: vec![0; vcs as usize],
                    next_vc: 0,
                    stats: ChannelStats::default(),
                });
                if site.is_send {
                    let vc = ch.next_vc as usize;
                    if let Some(credits) = limit(&site.key) {
                        if ch.vc_used[vc] >= credits {
                            break;
                        }
                    }
                    ch.next_vc = (ch.next_vc + 1) % vcs;
                    ch.vc_used[vc] += 1;
                    ch.queue.push_back(vc as u32);
                    ch.stats.messages += 1;
                    ch.stats.peak_in_flight = ch.stats.peak_in_flight.max(ch.queue.len() as u32);
                    ch.stats.peak_per_vc = ch.stats.peak_per_vc.max(ch.vc_used[vc]);
                } else {
                    let Some(vc) = ch.queue.pop_front() else {
                        break;
                    };
                    ch.vc_used[vc as usize] -= 1;
                }
                cursor[c] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let drained = (0..seqs.len()).all(|c| cursor[c] >= seqs[c].len());
    (
        drained,
        chans.into_iter().map(|(k, c)| (k, c.stats)).collect(),
    )
}

/// Computes the occupancy report. Returns an empty report when any core
/// is non-linear or the unbounded replay fails to drain (an unpaired or
/// self-inconsistent program — already diagnosed elsewhere).
pub(crate) fn occupancy(program: &Program, cfgs: &[Cfg], vcs: u32) -> OccupancyReport {
    let vcs = vcs.max(1);
    let mut seqs: Vec<Vec<Site>> = Vec::with_capacity(program.cores.len());
    for (c, (cp, cfg)) in program.cores.iter().zip(cfgs).enumerate() {
        let Some(trace) = cfg.linear_trace() else {
            return OccupancyReport::default();
        };
        seqs.push(
            trace
                .iter()
                .filter_map(|&pc| site_of(c as u16, pc, &cp.instrs[pc as usize]))
                .collect(),
        );
    }

    let (drained, unbounded) = exec(&seqs, vcs, |_| None);
    if !drained {
        return OccupancyReport::default();
    }

    let credit_knee = unbounded.values().map(|s| s.peak_per_vc).max().unwrap_or(0);

    // Smallest uniform limit that drains. Draining is monotone in the
    // limit and the unbounded run drains, so scanning up from 1 and
    // stopping at the first success yields the minimum; the knee bounds
    // the scan because `limit >= peak` behaves exactly like unbounded.
    let mut min_uniform = 1;
    let min_credits_deadlock_free = if credit_knee == 0 {
        // No transfers at all: any credit count (vacuously) works.
        None
    } else {
        while !exec(&seqs, vcs, |_| Some(min_uniform)).0 {
            min_uniform += 1;
            debug_assert!(min_uniform <= credit_knee, "knee must drain");
        }
        Some(min_uniform)
    };

    // Per-channel minima: limit one channel, leave the rest unbounded.
    let channels = unbounded
        .iter()
        .map(|(&key, stats)| {
            let mut c = 1;
            while !exec(&seqs, vcs, |k| (*k == key).then_some(c)).0 {
                c += 1;
                debug_assert!(c <= stats.peak_per_vc, "peak must drain");
            }
            ChannelBound {
                sender: key.0,
                receiver: key.1,
                tag: key.2,
                messages: stats.messages,
                peak_in_flight: stats.peak_in_flight,
                peak_per_vc: stats.peak_per_vc,
                min_credits: Some(c),
            }
        })
        .collect();

    OccupancyReport {
        channels,
        min_credits_deadlock_free,
        credit_knee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::asm::assemble;

    fn report(src: &str, vcs: u32) -> OccupancyReport {
        let p = assemble(src).unwrap();
        let cfgs: Vec<Cfg> = p.cores.iter().map(|c| Cfg::build(&c.instrs)).collect();
        occupancy(&p, &cfgs, vcs)
    }

    #[test]
    fn burst_of_sends_needs_matching_depth() {
        // Three sends can all be posted before the receiver must act, so
        // the peak is 3 — but one credit already drains (zero-latency
        // recvs free it), so min_credits is 1.
        let r = report(
            ".core 0\n\
             send core1, [r0+0], 4, tag=1\n\
             send core1, [r0+8], 4, tag=1\n\
             send core1, [r0+16], 4, tag=1\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 4, tag=1\n\
             recv core0, [r0+8], 4, tag=1\n\
             recv core0, [r0+16], 4, tag=1\n\
             halt\n",
            1,
        );
        assert_eq!(r.channels.len(), 1);
        let ch = &r.channels[0];
        assert_eq!((ch.sender, ch.receiver, ch.tag), (0, 1, 1));
        assert_eq!(ch.messages, 3);
        assert_eq!(ch.peak_in_flight, 3);
        assert_eq!(ch.peak_per_vc, 3);
        assert_eq!(ch.min_credits, Some(1));
        assert_eq!(r.min_credits_deadlock_free, Some(1));
        assert_eq!(r.credit_knee, 3);
    }

    #[test]
    fn crossed_exchange_needs_one_credit() {
        // Classic head-to-head exchange: each core sends before it
        // receives. With at least one credit both sends post and both
        // recvs drain; the sends themselves never block on each other.
        let r = report(
            ".core 0\n\
             send core1, [r0+0], 4, tag=1\n\
             recv core1, [r0+8], 4, tag=2\n\
             halt\n\
             .core 1\n\
             send core0, [r0+0], 4, tag=2\n\
             recv core0, [r0+8], 4, tag=1\n\
             halt\n",
            1,
        );
        assert_eq!(r.channels.len(), 2);
        assert_eq!(r.min_credits_deadlock_free, Some(1));
        assert_eq!(r.credit_knee, 1);
    }

    #[test]
    fn vcs_split_the_burst() {
        // Four back-to-back sends over 2 VCs round-robin: two per VC.
        let r = report(
            ".core 0\n\
             send core1, [r0+0], 4, tag=1\n\
             send core1, [r0+8], 4, tag=1\n\
             send core1, [r0+16], 4, tag=1\n\
             send core1, [r0+24], 4, tag=1\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 4, tag=1\n\
             recv core0, [r0+8], 4, tag=1\n\
             recv core0, [r0+16], 4, tag=1\n\
             recv core0, [r0+24], 4, tag=1\n\
             halt\n",
            2,
        );
        let ch = &r.channels[0];
        assert_eq!(ch.peak_in_flight, 4);
        assert_eq!(ch.peak_per_vc, 2);
        assert_eq!(r.credit_knee, 2);
    }

    #[test]
    fn transfer_free_program_is_empty() {
        let r = report(".core 0\nnop\nhalt\n", 1);
        assert!(r.channels.is_empty());
        assert_eq!(r.min_credits_deadlock_free, None);
        assert_eq!(r.credit_knee, 0);
    }

    #[test]
    fn non_linear_core_disables_the_analysis() {
        let r = report(
            ".core 0\n\
             send core1, [r0+0], 4, tag=1\n\
             jmp 0\n\
             .core 1\n\
             recv core0, [r0+0], 4, tag=1\n\
             halt\n",
            1,
        );
        assert!(r.channels.is_empty());
        assert_eq!(r.min_credits_deadlock_free, None);
    }
}

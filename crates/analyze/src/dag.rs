//! The cross-core program dependence DAG behind the static performance
//! bounds pass.
//!
//! For every core whose execution order is statically determined
//! ([`Cfg::linear_trace`]), the builder interprets the scalar register
//! file *exactly* as the machine frontend does (scalars execute at
//! dispatch, in order), resolves every memory-class operand to the same
//! absolute addresses the runtime's resolver computes, and derives the
//! same hazard ranges the ROB checks. Nodes are the ROB-class
//! (matrix/vector/transfer) instructions; edges are the constraints the
//! real machine provably enforces:
//!
//! * **hazard edges** — a younger instruction whose ranges RAW/WAW/WAR
//!   overlap an older one (or whose global-memory interval conflicts)
//!   cannot issue before the older completes;
//! * **channel FIFO edges** — transfers on one `(src, dst, tag)` channel
//!   issue in program order;
//! * **rendezvous edges** — a `recv` completes no earlier than its
//!   statically-matched `send`'s message delivery
//!   ([`crate::RendezvousMap`] supplies the pairing).
//!
//! Exactness of the replication is what makes the downstream bound
//! *sound*: every edge corresponds to an ordering the runtime really
//! enforces, so the longest path is a true lower bound. Over-approximated
//! ranges would invent orderings the machine never waits for and could
//! push the "lower bound" past the simulated latency.

use pimsim_isa::{InstrClass, Instruction, Program, Reg, SBinOp, SImmOp, VectorShape};

use crate::cfg::Cfg;

/// A half-open local-memory interval `[start, end)`, mirroring the
/// runtime resolver's hazard ranges exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// First element index.
    pub start: u32,
    /// One past the last element index.
    pub end: u32,
}

impl Range {
    fn new(start: u32, len: u32) -> Range {
        Range {
            start,
            end: start.saturating_add(len),
        }
    }

    fn overlaps(&self, other: &Range) -> bool {
        self.start < self.end
            && other.start < other.end
            && self.start < other.end
            && other.start < self.end
    }

    /// Conservative span of a strided 2-D access (identical arithmetic to
    /// the runtime resolver, including the `u32` saturation).
    fn strided(base: u32, block_len: u32, blocks: u32, stride: i32) -> Range {
        if blocks == 0 || block_len == 0 {
            return Range::new(base, 0);
        }
        let last = base as i64 + (blocks as i64 - 1) * stride as i64;
        let lo = (base as i64).min(last).clamp(0, u32::MAX as i64) as u32;
        let hi = ((base as i64).max(last) + block_len as i64).clamp(0, u32::MAX as i64) as u32;
        Range { start: lo, end: hi }
    }
}

/// What a node costs: the inputs its minimal unit-service time is priced
/// on, classified with the same shared tables the simulator uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceKind {
    /// A vector-unit operation with the shared [`VectorShape`].
    Vector(VectorShape),
    /// One `MVM` on a crossbar group.
    Matrix {
        /// The group's input vector length.
        input_len: u32,
        /// The group's output vector length.
        output_len: u32,
        /// Crossbars in the group.
        xbar_count: u32,
    },
    /// A core-to-core `send`: priced as the uncontended message time.
    Send {
        /// Destination core.
        to: u16,
        /// Payload elements.
        elems: u32,
    },
    /// A `recv`/`recv2d`: completes with its matched send's delivery.
    Recv,
    /// A `gload`/`gstore`: priced as the uncontended memory-access time.
    GlobalMem {
        /// Payload elements.
        elems: u32,
    },
}

/// One ROB-class instruction in a core's statically-known execution
/// order, with the exact operand metadata the runtime's hazard scan uses.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// The core executing this instruction.
    pub core: u16,
    /// Instruction index in the core's program.
    pub pc: u32,
    /// Position in the core's dispatch order, counting scalar
    /// instructions too (the frontend paces *all* dispatches).
    pub dispatch_index: u32,
    /// Instruction class (never `Scalar`).
    pub class: InstrClass,
    /// Pricing inputs.
    pub service: ServiceKind,
    /// Local-memory ranges read (exact mirror of the runtime resolver).
    pub reads: Vec<Range>,
    /// Local-memory ranges written.
    pub writes: Vec<Range>,
    /// Global-memory interval `[start, end)` touched, `true` = write.
    pub gmem: Option<(u64, u64, bool)>,
    /// Flow-control channel `(src, dst, tag)` for `send`/`recv` only.
    pub channel: Option<(u16, u16, u16)>,
    /// Older same-core nodes this one provably waits for (hazard +
    /// channel-FIFO), as indices into [`Dag::nodes`].
    pub preds: Vec<usize>,
    /// The statically-matched `send` node feeding this `recv`, if any.
    pub paired_send: Option<usize>,
}

/// One core's contribution to the DAG.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// `true` when the core's execution order is statically determined.
    pub linear: bool,
    /// Instructions the frontend dispatches (trace length; `0` for
    /// non-linear cores, whose pacing contribution is conservative).
    pub dispatches: u32,
    /// `true` when the core has at least one instruction (a non-empty
    /// core always pays at least the decode offset).
    pub has_instructions: bool,
    /// This core's nodes, as indices into [`Dag::nodes`], in trace order.
    pub nodes: Vec<usize>,
}

/// The priced cross-core dependence DAG.
#[derive(Debug, Clone)]
pub struct Dag {
    /// All nodes, grouped by core in trace order (core 0's nodes first).
    pub nodes: Vec<DagNode>,
    /// Per-core trace summaries, parallel to `program.cores`.
    pub cores: Vec<CoreTrace>,
}

/// Executes one scalar instruction against the register file, exactly as
/// the machine frontend does at dispatch (register effects only; control
/// flow is already fixed by the linear trace).
fn exec_scalar(regs: &mut [i32; 32], instr: &Instruction) {
    let rd_write = |regs: &mut [i32; 32], rd: Reg, v: i32| {
        if !rd.is_zero() {
            regs[rd.index() as usize] = v;
        }
    };
    match instr {
        Instruction::SBin { op, rd, rs1, rs2 } => {
            let a = regs[rs1.index() as usize];
            let b = regs[rs2.index() as usize];
            let v = match op {
                SBinOp::Add => a.wrapping_add(b),
                SBinOp::Sub => a.wrapping_sub(b),
                SBinOp::Mul => a.wrapping_mul(b),
                SBinOp::And => a & b,
                SBinOp::Or => a | b,
                SBinOp::Xor => a ^ b,
                SBinOp::Slt => (a < b) as i32,
                SBinOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
                SBinOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
            };
            rd_write(regs, *rd, v);
        }
        Instruction::SImm { op, rd, rs1, imm } => {
            let a = regs[rs1.index() as usize];
            let v = match op {
                SImmOp::Add => a.wrapping_add(*imm),
                SImmOp::Mul => a.wrapping_mul(*imm),
                SImmOp::Sll => ((a as u32) << (*imm as u32 & 31)) as i32,
                SImmOp::Srl => ((a as u32) >> (*imm as u32 & 31)) as i32,
                SImmOp::And => a & *imm,
                SImmOp::Or => a | *imm,
                SImmOp::Slt => (a < *imm) as i32,
            };
            rd_write(regs, *rd, v);
        }
        // Branches are evaluated by the machine but cannot change
        // register state; the linear trace already encodes the (unique)
        // outcome.
        Instruction::Branch { .. }
        | Instruction::Jump { .. }
        | Instruction::Halt
        | Instruction::Nop => {}
        other => unreachable!("memory-class instruction in exec_scalar: {other}"),
    }
}

/// Resolves `addr` against the register file, exactly as the runtime.
fn abs(addr: pimsim_isa::Addr, regs: &[i32; 32]) -> u32 {
    let base = regs[addr.base().index() as usize] as i64;
    (base + addr.offset() as i64).max(0) as u32
}

/// Builds one node's operand metadata from a memory-class instruction and
/// the exact register state at its dispatch. Returns `None` for scalars.
fn node_of(
    program: &Program,
    core: u16,
    pc: u32,
    dispatch_index: u32,
    instr: &Instruction,
    regs: &[i32; 32],
) -> Option<DagNode> {
    use Instruction as I;
    let class = instr.class();
    if class == InstrClass::Scalar {
        return None;
    }
    let mut node = DagNode {
        core,
        pc,
        dispatch_index,
        class,
        service: ServiceKind::Recv, // placeholder, always overwritten
        reads: Vec::new(),
        writes: Vec::new(),
        gmem: None,
        channel: None,
        preds: Vec::new(),
        paired_send: None,
    };
    match instr {
        I::Mvm {
            group,
            dst,
            src,
            len,
        } => {
            let g = &program.cores[core as usize].groups[group.as_usize()];
            node.service = ServiceKind::Matrix {
                input_len: g.input_len,
                output_len: g.output_len,
                xbar_count: g.xbar_ids.len() as u32,
            };
            node.reads = vec![Range::new(abs(*src, regs), *len)];
            node.writes = vec![Range::new(abs(*dst, regs), g.output_len)];
        }
        I::VBin { dst, a, b, len, .. } => {
            node.service = ServiceKind::Vector(VectorShape::binary(*len));
            node.reads = vec![
                Range::new(abs(*a, regs), *len),
                Range::new(abs(*b, regs), *len),
            ];
            node.writes = vec![Range::new(abs(*dst, regs), *len)];
        }
        I::VImm { dst, src, len, .. } | I::VUn { dst, src, len, .. } => {
            node.service = ServiceKind::Vector(VectorShape::unary(*len));
            node.reads = vec![Range::new(abs(*src, regs), *len)];
            node.writes = vec![Range::new(abs(*dst, regs), *len)];
        }
        I::VFill { dst, len, .. } => {
            node.service = ServiceKind::Vector(VectorShape::fill(*len));
            node.writes = vec![Range::new(abs(*dst, regs), *len)];
        }
        I::VCopy2d {
            dst,
            src,
            block_len,
            blocks,
            src_stride,
            dst_stride,
        } => {
            node.service = ServiceKind::Vector(VectorShape::copy2d(*block_len, *blocks));
            node.reads = vec![Range::strided(
                abs(*src, regs),
                *block_len,
                *blocks,
                *src_stride,
            )];
            node.writes = vec![Range::strided(
                abs(*dst, regs),
                *block_len,
                *blocks,
                *dst_stride,
            )];
        }
        I::VPool {
            dst,
            src,
            channels,
            win_w,
            win_h,
            row_stride,
            ..
        } => {
            node.service = ServiceKind::Vector(VectorShape::pool(*channels, *win_w, *win_h));
            node.reads = vec![Range::strided(
                abs(*src, regs),
                win_w * channels,
                (*win_h).max(1),
                *row_stride,
            )];
            node.writes = vec![Range::new(abs(*dst, regs), *channels)];
        }
        I::Send {
            peer,
            src,
            len,
            tag,
        } => {
            node.service = ServiceKind::Send {
                to: peer.0,
                elems: *len,
            };
            node.reads = vec![Range::new(abs(*src, regs), *len)];
            node.channel = Some((core, peer.0, *tag));
        }
        I::Recv {
            peer,
            dst,
            len,
            tag,
        } => {
            node.service = ServiceKind::Recv;
            // A plain recv resolves like a 1-block strided recv.
            node.writes = vec![Range::strided(abs(*dst, regs), *len, 1, *len as i32)];
            node.channel = Some((peer.0, core, *tag));
        }
        I::Recv2d {
            peer,
            dst,
            block_len,
            blocks,
            dst_stride,
            tag,
        } => {
            node.service = ServiceKind::Recv;
            node.writes = vec![Range::strided(
                abs(*dst, regs),
                *block_len,
                *blocks,
                *dst_stride,
            )];
            node.channel = Some((peer.0, core, *tag));
        }
        I::GLoad { dst, gaddr, len } => {
            node.service = ServiceKind::GlobalMem { elems: *len };
            node.writes = vec![Range::new(abs(*dst, regs), *len)];
            let g = abs(*gaddr, regs) as u64;
            node.gmem = Some((g, g + *len as u64, false));
        }
        I::GStore { gaddr, src, len } => {
            node.service = ServiceKind::GlobalMem { elems: *len };
            node.reads = vec![Range::new(abs(*src, regs), *len)];
            let g = abs(*gaddr, regs) as u64;
            node.gmem = Some((g, g + *len as u64, true));
        }
        _ => unreachable!("scalar class filtered above"),
    }
    Some(node)
}

/// Does two optional global accesses conflict (overlap with a write)?
/// Exact mirror of the ROB's check.
fn gmem_conflict(a: &Option<(u64, u64, bool)>, b: &Option<(u64, u64, bool)>) -> bool {
    match (a, b) {
        (Some((s1, e1, w1)), Some((s2, e2, w2))) => (*w1 || *w2) && s1 < e2 && s2 < e1,
        _ => false,
    }
}

/// Must `younger` wait for `older`'s completion before issuing? Exact
/// mirror of the ROB's hazard scan (RAW/WAW/WAR local-memory overlap,
/// global-memory conflict, same-channel transfer FIFO).
fn blocks(older: &DagNode, younger: &DagNode) -> bool {
    let raw = younger
        .reads
        .iter()
        .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
    let waw = younger
        .writes
        .iter()
        .any(|r| older.writes.iter().any(|w| r.overlaps(w)));
    let war = younger
        .writes
        .iter()
        .any(|r| older.reads.iter().any(|w| r.overlaps(w)));
    if raw || waw || war || gmem_conflict(&younger.gmem, &older.gmem) {
        return true;
    }
    younger.channel.is_some() && younger.channel == older.channel
}

impl Dag {
    /// Builds the DAG from a validated program, its per-core CFGs, and
    /// the rendezvous pairing. Non-linear cores contribute no nodes (only
    /// a conservative pacing term); channels whose endpoints are not both
    /// linear have no rendezvous edges.
    pub fn build(program: &Program, cfgs: &[Cfg], rendezvous: &crate::RendezvousMap) -> Dag {
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut cores = Vec::with_capacity(program.cores.len());
        for (c, (cp, cfg)) in program.cores.iter().zip(cfgs).enumerate() {
            let c16 = c as u16;
            let Some(trace) = cfg.linear_trace() else {
                cores.push(CoreTrace {
                    linear: false,
                    dispatches: 0,
                    has_instructions: !cp.instrs.is_empty(),
                    nodes: Vec::new(),
                });
                continue;
            };
            let first = nodes.len();
            let mut regs = [0i32; 32];
            for (k, &pc) in trace.iter().enumerate() {
                let instr = &cp.instrs[pc as usize];
                match node_of(program, c16, pc, k as u32, instr, &regs) {
                    Some(node) => nodes.push(node),
                    None => exec_scalar(&mut regs, instr),
                }
            }
            // Hazard + channel-FIFO edges among this core's nodes.
            let end = nodes.len();
            for i in first..end {
                for j in first..i {
                    if blocks(&nodes[j], &nodes[i]) {
                        nodes[i].preds.push(j);
                    }
                }
            }
            cores.push(CoreTrace {
                linear: true,
                dispatches: trace.len() as u32,
                has_instructions: !cp.instrs.is_empty(),
                nodes: (first..end).collect(),
            });
        }

        // Rendezvous edges: each statically-matched pair's recv waits for
        // its send's delivery. A pc appears at most once in a linear
        // trace, so (core, pc) identifies a node.
        let mut by_site = std::collections::BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.channel.is_some() {
                by_site.insert((n.core, n.pc), id);
            }
        }
        for p in &rendezvous.pairs {
            let (Some(&s), Some(&r)) = (
                by_site.get(&(p.sender, p.send_pc)),
                by_site.get(&(p.receiver, p.recv_pc)),
            ) else {
                continue;
            };
            nodes[r].paired_send = Some(s);
        }

        Dag { nodes, cores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::asm::assemble;

    fn dag_of(src: &str) -> Dag {
        let p = assemble(src).unwrap();
        let cfgs: Vec<Cfg> = p.cores.iter().map(|c| Cfg::build(&c.instrs)).collect();
        let (_, map) = crate::rendezvous::check(&p, &cfgs, 4, 1);
        Dag::build(&p, &cfgs, &map)
    }

    #[test]
    fn scalar_interpretation_resolves_exact_addresses() {
        // r1 = 1000; the vector op's operands resolve against it.
        let d = dag_of(
            ".core 0\n\
             li r1, 1000\n\
             vadd [r1+24], [r1+0], [r0+8], 8\n\
             halt\n",
        );
        assert_eq!(d.nodes.len(), 1);
        let n = &d.nodes[0];
        assert_eq!(n.dispatch_index, 1, "li dispatched first");
        assert_eq!(
            n.writes,
            vec![Range {
                start: 1024,
                end: 1032
            }]
        );
        assert_eq!(
            n.reads,
            vec![
                Range {
                    start: 1000,
                    end: 1008
                },
                Range { start: 8, end: 16 }
            ]
        );
        assert_eq!(d.cores[0].dispatches, 3);
    }

    #[test]
    fn hazard_edges_follow_real_overlaps() {
        let d = dag_of(
            ".core 0\n\
             vfill [r0+0], 1, 8\n\
             vrelu [r0+100], [r0+4], 8\n\
             vfill [r0+200], 2, 8\n\
             halt\n",
        );
        assert_eq!(d.nodes.len(), 3);
        assert_eq!(d.nodes[1].preds, vec![0], "RAW on [4, 8)");
        assert!(d.nodes[2].preds.is_empty(), "disjoint ranges: no edge");
    }

    #[test]
    fn same_channel_transfers_chain_fifo() {
        let d = dag_of(
            ".core 0\n\
             send core1, [r0+0], 4, tag=7\n\
             send core1, [r0+100], 4, tag=7\n\
             send core1, [r0+200], 4, tag=8\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 4, tag=7\n\
             recv core0, [r0+100], 4, tag=7\n\
             recv core0, [r0+200], 4, tag=8\n\
             halt\n",
        );
        // Disjoint payload ranges: only the channel rule chains them.
        assert_eq!(d.nodes[1].preds, vec![0]);
        assert!(d.nodes[2].preds.is_empty(), "different tag overtakes");
    }

    #[test]
    fn rendezvous_pairs_become_cross_edges() {
        let d = dag_of(
            ".core 0\n\
             send core1, [r0+0], 16, tag=3\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 16, tag=3\n\
             halt\n",
        );
        assert_eq!(d.nodes.len(), 2);
        let recv = d.nodes.iter().position(|n| n.core == 1).unwrap();
        let send = d.nodes.iter().position(|n| n.core == 0).unwrap();
        assert_eq!(d.nodes[recv].paired_send, Some(send));
        assert_eq!(d.nodes[send].paired_send, None);
    }

    #[test]
    fn non_linear_cores_contribute_no_nodes() {
        let d = dag_of(
            ".core 0\n\
             jmp 0\n",
        );
        assert!(d.nodes.is_empty());
        assert!(!d.cores[0].linear);
        assert!(d.cores[0].has_instructions);
    }

    #[test]
    fn gmem_conflicts_make_edges() {
        let d = dag_of(
            ".core 0\n\
             gstore g[r0+100], [r0+0], 8\n\
             gload [r0+500], g[r0+104], 8\n\
             gload [r0+600], g[r0+900], 8\n\
             halt\n",
        );
        assert_eq!(d.nodes[1].preds, vec![0], "store/load overlap at 104..108");
        assert!(d.nodes[2].preds.is_empty(), "disjoint global intervals");
    }
}

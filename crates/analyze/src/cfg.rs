//! Per-core control-flow graphs over the ISA instruction stream.
//!
//! Blocks are cut at terminators (`branch`, `jump`, `halt` — see
//! [`Instruction::is_terminator`]) and at branch targets, so every
//! instruction belongs to exactly one block and a terminator is always
//! the last instruction of its block. The graph drives reachability
//! (unreachable-block and missing-`halt` detection), the dataflow passes,
//! and — through [`Cfg::linear_trace`] — the rendezvous analysis, which
//! only reasons precisely about cores whose execution order is statically
//! determined.

use pimsim_isa::Instruction;

/// One basic block: the half-open pc range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block indices (deduplicated, in target-then-fallthrough
    /// order).
    pub succs: Vec<usize>,
    /// `true` if control can leave this block past the end of the
    /// instruction stream (the machine halts silently when `pc` runs off
    /// the end).
    pub falls_off_end: bool,
}

/// A per-core control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Basic blocks, sorted by `start`, covering every instruction.
    pub blocks: Vec<BasicBlock>,
    /// `blocks` index for each pc.
    block_of: Vec<usize>,
    /// Per-block reachability from the entry block (block 0).
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of one core's instruction stream. An empty stream
    /// (an idle core) yields an empty graph.
    pub fn build(instrs: &[Instruction]) -> Cfg {
        let n = instrs.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
            };
        }

        // Leaders: the entry, every branch/jump target, and the
        // instruction after every terminator.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                // Out-of-range targets are a `Program::validate` error;
                // tolerate them here so the CFG never panics on input the
                // analyzer will reject anyway.
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            if instr.is_terminator() && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        // Cut blocks at leaders; a terminator is always last in its block
        // because the following instruction (if any) is a leader.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1];
            if last {
                blocks.push(BasicBlock {
                    start: start as u32,
                    end: (pc + 1) as u32,
                    succs: Vec::new(),
                    falls_off_end: false,
                });
                start = pc + 1;
            }
        }

        // Successor edges.
        for blk in &mut blocks {
            let end = blk.end as usize;
            let last = &instrs[end - 1];
            let mut succs = Vec::new();
            let mut falls_off = false;
            match last {
                Instruction::Halt => {}
                Instruction::Jump { target } => {
                    if (*target as usize) < n {
                        succs.push(block_of[*target as usize]);
                    } else {
                        falls_off = true;
                    }
                }
                Instruction::Branch { target, .. } => {
                    if (*target as usize) < n {
                        succs.push(block_of[*target as usize]);
                    } else {
                        falls_off = true;
                    }
                    if end < n {
                        succs.push(block_of[end]);
                    } else {
                        falls_off = true;
                    }
                }
                _ => {
                    if end < n {
                        succs.push(block_of[end]);
                    } else {
                        falls_off = true;
                    }
                }
            }
            succs.dedup();
            blk.succs = succs;
            blk.falls_off_end = falls_off;
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; blocks.len()];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &blocks[b].succs {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
        }
    }

    /// The block containing `pc`.
    pub fn block_of(&self, pc: u32) -> usize {
        self.block_of[pc as usize]
    }

    /// `true` if `pc` is reachable from the entry.
    pub fn pc_reachable(&self, pc: u32) -> bool {
        self.block_of
            .get(pc as usize)
            .is_some_and(|&b| self.reachable[b])
    }

    /// The statically-determined execution order of the core, as the pc
    /// sequence from entry to `halt` (or to running off the end), when
    /// control never actually forks: no reachable two-way branch and no
    /// cycle. Returns `None` for cores whose order depends on data.
    ///
    /// Compiled (straight-line) programs always have a trace; hand-written
    /// programs with loops don't, and the rendezvous analysis treats them
    /// conservatively.
    pub fn linear_trace(&self) -> Option<Vec<u32>> {
        if self.blocks.is_empty() {
            return Some(Vec::new());
        }
        let mut trace = Vec::new();
        let mut visited = vec![false; self.blocks.len()];
        let mut b = 0usize;
        loop {
            if visited[b] {
                return None; // cycle: iteration count is data-dependent
            }
            visited[b] = true;
            let blk = &self.blocks[b];
            trace.extend(blk.start..blk.end);
            let outcomes = blk.succs.len() + usize::from(blk.falls_off_end);
            match (blk.succs.as_slice(), outcomes) {
                (_, 2..) => return None, // a real fork
                ([], _) => return Some(trace),
                (&[s], 1) => b = s,
                (&[_], _) => return None, // one succ plus fall-off-end
                _ => unreachable!("outcome count covers these"),
            }
        }
        // A `branch` whose taken and untaken paths coincide (target ==
        // fallthrough) dedupes to one successor and stays linear.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::{BranchCond, Reg};

    fn branch(target: u32) -> Instruction {
        Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::R1,
            rs2: Reg::R2,
            target,
        }
    }

    #[test]
    fn empty_stream_is_empty_graph() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.linear_trace(), Some(vec![]));
    }

    #[test]
    fn straight_line_is_one_block() {
        let instrs = vec![Instruction::Nop, Instruction::Nop, Instruction::Halt];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.blocks[0].falls_off_end);
        assert_eq!(cfg.linear_trace(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn missing_halt_falls_off_end() {
        let instrs = vec![Instruction::Nop, Instruction::Nop];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].falls_off_end);
        assert_eq!(cfg.linear_trace(), Some(vec![0, 1]));
    }

    #[test]
    fn branch_cuts_blocks_and_forks() {
        // 0: beq -> 3 ; 1: nop ; 2: halt ; 3: halt
        let instrs = vec![
            branch(3),
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Halt,
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].succs, vec![2, 1]);
        assert!(cfg.reachable.iter().all(|&r| r));
        assert_eq!(cfg.linear_trace(), None);
        assert_eq!(cfg.block_of(1), 1);
        assert_eq!(cfg.block_of(3), 2);
    }

    #[test]
    fn code_after_jump_is_unreachable() {
        // 0: jump 2 ; 1: nop (dead) ; 2: halt
        let instrs = vec![
            Instruction::Jump { target: 2 },
            Instruction::Nop,
            Instruction::Halt,
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.reachable, vec![true, false, true]);
        // Execution order is still statically known: 0 then 2.
        assert_eq!(cfg.linear_trace(), Some(vec![0, 2]));
    }

    #[test]
    fn self_loop_has_no_linear_trace() {
        let instrs = vec![Instruction::Jump { target: 0 }];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].succs, vec![0]);
        assert_eq!(cfg.linear_trace(), None);
    }

    #[test]
    fn branch_to_fallthrough_stays_linear() {
        // beq -> 1 has identical outcomes; the trace is deterministic.
        let instrs = vec![branch(1), Instruction::Halt];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.linear_trace(), Some(vec![0, 1]));
    }

    #[test]
    fn trailing_branch_off_end_is_a_fork() {
        // A branch at the last pc whose untaken path runs off the end.
        let instrs = vec![Instruction::Nop, branch(0)];
        let cfg = Cfg::build(&instrs);
        let last = cfg.blocks.last().unwrap();
        assert!(last.falls_off_end);
        assert_eq!(cfg.linear_trace(), None);
    }

    #[test]
    fn every_pc_in_exactly_one_block() {
        let instrs = vec![
            branch(4),
            Instruction::Nop,
            Instruction::Jump { target: 1 },
            Instruction::Halt,
            Instruction::Nop,
            Instruction::Halt,
        ];
        let cfg = Cfg::build(&instrs);
        let mut seen = vec![0u32; instrs.len()];
        for blk in &cfg.blocks {
            for pc in blk.start..blk.end {
                seen[pc as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }
}

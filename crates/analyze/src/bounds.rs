//! Static performance bounds: a sound lower bound on simulated latency,
//! with the critical path and per-core utilization that justify it.
//!
//! The analyzer prices every node of the cross-core dependence DAG
//! ([`crate::dag`]) with the *same* cost tables the simulator uses
//! ([`CostModel`], via the shared [`pimsim_isa::VectorShape`]
//! classification) and computes a longest-path abstract schedule under
//! only the constraints the machine provably enforces:
//!
//! * the frontend dispatches in order, one instruction per dispatch
//!   interval, starting at the decode offset;
//! * an instruction issues no earlier than the completion of every older
//!   instruction it has a RAW/WAW/WAR, global-memory, or channel-FIFO
//!   hazard against;
//! * a unit occupies for at least its minimal (uncontended) service
//!   time — messages pay router traversal plus link serialization for
//!   their Manhattan hop count, global accesses add the memory service
//!   time;
//! * a `recv` completes no earlier than its matched `send`'s delivery;
//! * the vector unit is single-occupancy, so a core's vector work takes
//!   at least its sum of service times.
//!
//! Everything the real machine *adds* — ROB capacity stalls, credit
//! stalls, link and memory contention, VC arbitration — only delays
//! execution further, so the resulting latency is a true lower bound:
//! `bounds(p, arch).latency_lb_ps <= simulate(p, arch).latency` for every
//! program both can handle. CI enforces exactly that inequality over the
//! whole network zoo, making this pass a standing oracle against both
//! analyzer unsoundness and simulator cost-model drift.
//!
//! The pricing helpers ([`message_min`], [`memory_access_min`],
//! [`dispatch_interval`], [`decode_offset`]) are public so the simulator
//! crate can pin them against its own `Noc`/`DefaultTiming` arithmetic.

use std::collections::VecDeque;

use pimsim_arch::model::CostModel;
use pimsim_arch::ArchConfig;
use pimsim_event::SimTime;
use pimsim_isa::Program;
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::dag::{Dag, ServiceKind};
use crate::diag::Diagnostic;
use crate::occupancy::{occupancy, ChannelBound};

/// Maximum critical-path hops retained in a [`BoundsReport`]; longer
/// paths keep their *last* hops (closest to completion) and record the
/// full length in [`BoundsReport::critical_path_len`].
pub const MAX_CRITICAL_HOPS: usize = 256;

/// Minimal uncontended delivery time of a `core → core` message carrying
/// `elems` elements: Manhattan-distance router traversals plus link
/// serialization of the payload flits (a self-send is a local copy).
/// Pinned against `Noc::message` on an idle fabric by the simulator's
/// test suite.
pub fn message_min(model: &CostModel, from: u16, to: u16, elems: u32) -> SimTime {
    if from == to {
        return model.local_copy_cost(elems).time;
    }
    let cfg = model.config();
    let hops = cfg.resources.mesh_hops(from, to);
    let router = model.noc_hop_latency(1) * cfg.noc.router_pipeline_depth as u64;
    router * hops as u64 + model.link_serialization(model.flits_for_elems(elems))
}

/// Minimal uncontended `gload`/`gstore` time from `core`: the trip to the
/// memory node attached to core 0 (one extra link) plus payload
/// serialization plus the memory service time. Pinned against
/// `Noc::memory_access` on an idle fabric.
pub fn memory_access_min(model: &CostModel, core: u16, elems: u32) -> SimTime {
    let cfg = model.config();
    let hops = cfg.resources.mesh_hops(core, 0) + 1;
    let router = model.noc_hop_latency(1) * cfg.noc.router_pipeline_depth as u64;
    router * hops as u64
        + model.link_serialization(model.flits_for_elems(elems))
        + model.global_mem_cost(elems).time
}

/// The frontend's minimal time between consecutive dispatches. Identical
/// arithmetic to the simulator's `DefaultTiming::dispatch_interval`.
pub fn dispatch_interval(model: &CostModel) -> SimTime {
    let period = model.core_clock().period().as_ps();
    SimTime::from_ps(period.div_ceil(model.config().timing.dispatch_width.max(1) as u64))
}

/// Time before the first dispatch (fetch/decode fill). Identical
/// arithmetic to the simulator's `DefaultTiming::decode_offset`.
pub fn decode_offset(model: &CostModel) -> SimTime {
    model
        .core_clock()
        .cycles_to_time(model.config().timing.decode_cycles as u64)
}

/// Minimal unit-service time of one DAG node.
fn service_time(model: &CostModel, core: u16, service: &ServiceKind) -> SimTime {
    match service {
        ServiceKind::Vector(s) => model.vector_cost(s.len, s.reads, s.writes).time,
        ServiceKind::Matrix {
            input_len,
            output_len,
            xbar_count,
        } => model.mvm_cost(*input_len, *output_len, *xbar_count).time,
        ServiceKind::Send { to, elems } => message_min(model, core, *to, *elems),
        // A recv's completion is driven by its matched send's delivery.
        ServiceKind::Recv => SimTime::ZERO,
        ServiceKind::GlobalMem { elems } => memory_access_min(model, core, *elems),
    }
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalHop {
    /// Core executing the instruction.
    pub core: u16,
    /// Instruction index in the core's program.
    pub pc: u32,
    /// Canonical assembly text of the instruction.
    pub instr: String,
    /// Time this hop adds beyond its earliest issue (service time, or
    /// rendezvous wait for a `recv`), in picoseconds.
    pub cost_ps: u64,
    /// The hop's completion time bound, in picoseconds.
    pub finish_ps: u64,
}

/// Per-core schedule bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreBound {
    /// Core index.
    pub core: u16,
    /// Instructions the frontend dispatches (`0` when the core is empty
    /// or its execution order is not statically known).
    pub instructions: u32,
    /// Lower bound on the core's execution-unit busy time: the sum of
    /// minimal service times over its matrix/vector/transfer work, in
    /// picoseconds.
    pub busy_lb_ps: u64,
    /// Lower bound on when this core finishes, in picoseconds.
    pub finish_lb_ps: u64,
    /// `busy_lb_ps` over the network-level latency bound — a lower bound
    /// on the core's busy fraction *of the bound* (the true utilization
    /// against a longer simulated run can be lower). `0` for an empty
    /// program.
    pub utilization_lb: f64,
}

/// The machine-readable static bounds artifact (tentpole deliverable):
/// sound latency lower bound + critical path, per-core utilization
/// bounds, and per-channel credit occupancy. Designed as a prune filter
/// for design-space search: a candidate whose *lower bound* already
/// exceeds the incumbent's simulated latency can be discarded without
/// simulating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Version of this JSON schema.
    pub schema_version: u32,
    /// `true` when every core's execution order was statically known,
    /// the rendezvous matching was complete, and the dependence graph
    /// was acyclic — i.e. the full analysis ran. When `false` the bound
    /// is still sound but degrades to frontend-pacing terms.
    pub complete: bool,
    /// Which term produced the latency bound: `critical-path`,
    /// `vector-unit-throughput`, `frontend-pacing`, or `unanalyzable`
    /// (program rejected by the checker; bound is zero).
    pub bound_source: String,
    /// End-to-end latency lower bound, picoseconds.
    pub latency_lb_ps: u64,
    /// End-to-end latency lower bound, nanoseconds.
    pub latency_lb_ns: f64,
    /// Full critical-path length in hops (`0` unless `bound_source` is
    /// `critical-path`).
    pub critical_path_len: u32,
    /// The last (up to [`MAX_CRITICAL_HOPS`]) hops of the critical path,
    /// in execution order.
    pub critical_path: Vec<CriticalHop>,
    /// Per-core bounds, one entry per core in the program.
    pub cores: Vec<CoreBound>,
    /// Per-channel credit occupancy, sorted by `(sender, receiver, tag)`.
    pub channels: Vec<ChannelBound>,
    /// Smallest uniform per-VC credit count at which the abstract
    /// transfer execution stays deadlock-free; `None` for transfer-free
    /// or unanalyzable programs.
    pub min_credits_deadlock_free: Option<u32>,
    /// Credit count beyond which more credits cannot change any
    /// channel's behavior.
    pub credit_knee: u32,
    /// The checker diagnostics for the program (errors explain an
    /// `unanalyzable` report; warnings ride along for context).
    pub diagnostics: Vec<Diagnostic>,
}

impl BoundsReport {
    /// Serializes the report as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bounds serialization cannot fail")
    }
}

/// Computes the static performance bounds for `program` on `arch`.
///
/// Soundness contract: for every program the simulator runs to
/// completion, `latency_lb_ps` never exceeds the simulated latency (in
/// picoseconds) under any engine, mapping, or routing policy of the same
/// [`ArchConfig`]. Programs the checker rejects with errors yield a
/// trivial (zero) bound with `bound_source = "unanalyzable"`.
pub fn bounds(program: &Program, arch: &ArchConfig) -> BoundsReport {
    let analysis = crate::analyze(program, arch);
    if analysis.has_errors() {
        return BoundsReport {
            schema_version: crate::SCHEMA_VERSION,
            complete: false,
            bound_source: "unanalyzable".into(),
            latency_lb_ps: 0,
            latency_lb_ns: 0.0,
            critical_path_len: 0,
            critical_path: Vec::new(),
            cores: Vec::new(),
            channels: Vec::new(),
            min_credits_deadlock_free: None,
            credit_knee: 0,
            diagnostics: analysis.diagnostics,
        };
    }

    let model = CostModel::new(arch);
    let cfgs: Vec<Cfg> = program
        .cores
        .iter()
        .map(|c| Cfg::build(&c.instrs))
        .collect();
    let dag = Dag::build(program, &cfgs, &analysis.rendezvous);
    let occ = occupancy(program, &cfgs, arch.noc.virtual_channels);

    let n = dag.nodes.len();
    let interval = dispatch_interval(&model);
    let decode = decode_offset(&model);
    let service: Vec<SimTime> = dag
        .nodes
        .iter()
        .map(|nd| service_time(&model, nd.core, &nd.service))
        .collect();
    let dispatch_lb: Vec<SimTime> = dag
        .nodes
        .iter()
        .map(|nd| decode + interval * nd.dispatch_index as u64)
        .collect();

    // Topological order (Kahn). The graph can only be cyclic when a
    // non-linear core kept the rendezvous deadlock check from running;
    // such programs wedge at runtime, so falling back to the pacing
    // terms below stays sound.
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nd) in dag.nodes.iter().enumerate() {
        for &p in &nd.preds {
            succs[p].push(i);
            indeg[i] += 1;
        }
        if let Some(s) = nd.paired_send {
            succs[s].push(i);
            indeg[i] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        topo.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    let acyclic = topo.len() == n;

    // Longest-path schedule: earliest possible issue and completion per
    // node under the enforced constraints only.
    let mut start = vec![SimTime::ZERO; n];
    let mut completion = vec![SimTime::ZERO; n];
    let mut best_pred: Vec<Option<usize>> = vec![None; n];
    if acyclic {
        for &i in &topo {
            let nd = &dag.nodes[i];
            let mut s = dispatch_lb[i];
            let mut det = None;
            for &p in &nd.preds {
                if completion[p] > s {
                    s = completion[p];
                    det = Some(p);
                }
            }
            start[i] = s;
            let mut comp = s + service[i];
            if let Some(sp) = nd.paired_send {
                if completion[sp] > comp {
                    comp = completion[sp];
                    det = Some(sp);
                }
            }
            completion[i] = comp;
            best_pred[i] = det;
        }
    }

    // Per-core terms and the global bound.
    let mut crit_max = SimTime::ZERO;
    let mut vector_max = SimTime::ZERO;
    let mut frontend_max = SimTime::ZERO;
    let mut cores_out = Vec::with_capacity(dag.cores.len());
    for (c, ct) in dag.cores.iter().enumerate() {
        let frontend = if ct.dispatches > 0 {
            decode + interval * (ct.dispatches - 1) as u64
        } else if ct.has_instructions {
            decode
        } else {
            SimTime::ZERO
        };
        let mut busy = SimTime::ZERO;
        let mut node_max = SimTime::ZERO;
        let mut vec_sum = SimTime::ZERO;
        let mut first_vec: Option<usize> = None;
        for &i in &ct.nodes {
            busy += service[i];
            if acyclic {
                node_max = node_max.max(completion[i]);
            }
            if matches!(dag.nodes[i].service, ServiceKind::Vector(_)) {
                if first_vec.is_none() {
                    first_vec = Some(i);
                }
                vec_sum += service[i];
            }
        }
        // The vector unit is single-occupancy: all of this core's vector
        // work fits after the first vector op's earliest dispatch.
        let vector = match first_vec {
            Some(i) => dispatch_lb[i] + vec_sum,
            None => SimTime::ZERO,
        };
        let finish = frontend.max(vector).max(node_max);
        crit_max = crit_max.max(node_max);
        vector_max = vector_max.max(vector);
        frontend_max = frontend_max.max(frontend);
        cores_out.push(CoreBound {
            core: c as u16,
            instructions: ct.dispatches,
            busy_lb_ps: busy.as_ps(),
            finish_lb_ps: finish.as_ps(),
            utilization_lb: 0.0, // filled once the latency bound is known
        });
    }
    let latency = crit_max.max(vector_max).max(frontend_max);
    for cb in &mut cores_out {
        cb.utilization_lb = if latency.is_zero() {
            0.0
        } else {
            cb.busy_lb_ps as f64 / latency.as_ps() as f64
        };
    }
    let bound_source = if !latency.is_zero() && crit_max == latency {
        "critical-path"
    } else if !latency.is_zero() && vector_max == latency {
        "vector-unit-throughput"
    } else {
        "frontend-pacing"
    };

    // Critical path: backtrace the deterministic argmax completion.
    let mut critical_path = Vec::new();
    let mut critical_path_len = 0u32;
    if bound_source == "critical-path" {
        let sink = (0..n)
            .find(|&i| completion[i] == latency)
            .expect("crit_max came from a node");
        let mut chain = Vec::new();
        let mut cur = Some(sink);
        while let Some(i) = cur {
            chain.push(i);
            cur = best_pred[i];
        }
        chain.reverse();
        critical_path_len = chain.len() as u32;
        let keep = chain.len().saturating_sub(MAX_CRITICAL_HOPS);
        critical_path = chain[keep..]
            .iter()
            .map(|&i| {
                let nd = &dag.nodes[i];
                CriticalHop {
                    core: nd.core,
                    pc: nd.pc,
                    instr: program.cores[nd.core as usize].instrs[nd.pc as usize].to_string(),
                    cost_ps: completion[i].saturating_sub(start[i]).as_ps(),
                    finish_ps: completion[i].as_ps(),
                }
            })
            .collect();
    }

    BoundsReport {
        schema_version: crate::SCHEMA_VERSION,
        complete: acyclic && analysis.rendezvous.complete && dag.cores.iter().all(|c| c.linear),
        bound_source: bound_source.into(),
        latency_lb_ps: latency.as_ps(),
        latency_lb_ns: latency.as_ns_f64(),
        critical_path_len,
        critical_path,
        cores: cores_out,
        channels: occ.channels,
        min_credits_deadlock_free: occ.min_credits_deadlock_free,
        credit_knee: occ.credit_knee,
        diagnostics: analysis.diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::asm::assemble;

    fn arch() -> ArchConfig {
        ArchConfig::small_test()
    }

    #[test]
    fn scalar_only_program_is_paced_by_the_frontend() {
        let p = assemble(".core 0\nnop\nnop\nnop\nhalt\n").unwrap();
        let a = arch();
        let r = bounds(&p, &a);
        let model = CostModel::new(&a);
        let expect = decode_offset(&model) + dispatch_interval(&model) * 3;
        assert_eq!(r.bound_source, "frontend-pacing");
        assert_eq!(r.latency_lb_ps, expect.as_ps());
        assert!(r.complete, "{r:?}");
        assert_eq!(r.cores[0].instructions, 4);
        assert_eq!(r.cores[0].busy_lb_ps, 0);
    }

    #[test]
    fn dependent_chain_prices_as_critical_path() {
        // Three dependent vector ops: the chain must serialize.
        let p = assemble(
            ".core 0\n\
             vfill [r0+0], 1, 64\n\
             vrelu [r0+64], [r0+0], 64\n\
             vrelu [r0+128], [r0+64], 64\n\
             halt\n",
        )
        .unwrap();
        let a = arch();
        let r = bounds(&p, &a);
        let model = CostModel::new(&a);
        let fill = model.vector_cost(64, 0, 1).time;
        let relu = model.vector_cost(64, 1, 1).time;
        let expect = decode_offset(&model) + fill + relu + relu;
        assert_eq!(r.bound_source, "critical-path");
        assert_eq!(r.latency_lb_ps, expect.as_ps());
        assert_eq!(r.critical_path_len, 3);
        assert_eq!(r.critical_path.len(), 3);
        assert_eq!(r.critical_path[0].instr, "vfill [r0+0], 1, 64");
        assert_eq!(r.cores[0].busy_lb_ps, (fill + relu + relu).as_ps());
    }

    #[test]
    fn rendezvous_wait_crosses_cores() {
        let p = assemble(
            ".core 0\n\
             send core1, [r0+0], 64, tag=1\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 64, tag=1\n\
             vrelu [r0+64], [r0+0], 64\n\
             halt\n",
        )
        .unwrap();
        let a = arch();
        let r = bounds(&p, &a);
        let model = CostModel::new(&a);
        let msg = message_min(&model, 0, 1, 64);
        let relu = model.vector_cost(64, 1, 1).time;
        let expect = decode_offset(&model) + msg + relu;
        assert_eq!(r.bound_source, "critical-path");
        assert_eq!(r.latency_lb_ps, expect.as_ps());
        // send → recv → vrelu
        let cores: Vec<u16> = r.critical_path.iter().map(|h| h.core).collect();
        assert_eq!(cores, vec![0, 1, 1]);
        assert_eq!(r.min_credits_deadlock_free, Some(1));
    }

    #[test]
    fn error_programs_bound_to_zero() {
        let p = assemble(
            ".core 0\n\
             send core1, [r0+0], 8, tag=1\n\
             halt\n\
             .core 1\n\
             halt\n",
        )
        .unwrap();
        let r = bounds(&p, &arch());
        assert_eq!(r.bound_source, "unanalyzable");
        assert_eq!(r.latency_lb_ps, 0);
        assert!(!r.complete);
        assert!(!r.diagnostics.is_empty());
    }

    #[test]
    fn report_is_deterministic_and_roundtrips() {
        let p = assemble(
            ".core 0\n\
             vfill [r0+0], 1, 32\n\
             send core1, [r0+0], 32, tag=1\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 32, tag=1\n\
             halt\n",
        )
        .unwrap();
        let a = arch();
        let r1 = bounds(&p, &a);
        let r2 = bounds(&p, &a);
        assert_eq!(r1.to_json(), r2.to_json());
        let back: BoundsReport = serde_json::from_str(&r1.to_json()).unwrap();
        assert_eq!(back, r1);
        assert_eq!(r1.schema_version, crate::SCHEMA_VERSION);
    }

    #[test]
    fn self_send_is_rejected_like_the_simulator_rejects_it() {
        // `Program::validate` forbids self-sends, so the local-copy
        // branch of `message_min` only matters for the Noc pin test.
        let p = assemble(
            ".core 0\n\
             send core0, [r0+0], 16, tag=1\n\
             recv core0, [r0+64], 16, tag=1\n\
             halt\n",
        )
        .unwrap();
        let r = bounds(&p, &arch());
        assert_eq!(r.bound_source, "unanalyzable");
        assert_eq!(r.latency_lb_ps, 0);
    }

    #[test]
    fn vector_throughput_floors_independent_work() {
        // Eight independent vfills: no hazards, but one vector unit.
        let mut src = String::from(".core 0\n");
        for i in 0..8 {
            src.push_str(&format!("vfill [r0+{}], 1, 256\n", i * 256));
        }
        src.push_str("halt\n");
        let p = assemble(&src).unwrap();
        let a = arch();
        let r = bounds(&p, &a);
        let model = CostModel::new(&a);
        let fill = model.vector_cost(256, 0, 1).time;
        let expect = decode_offset(&model) + fill * 8;
        assert_eq!(r.bound_source, "vector-unit-throughput");
        assert_eq!(r.latency_lb_ps, expect.as_ps());
    }
}

//! Cross-core rendezvous analysis: matches `send`/`recv` sites by
//! `(sender, receiver, tag)` channel, reports transfers that can never
//! complete, and — for programs whose per-core execution order is
//! statically determined — runs a zero-latency abstract execution of the
//! transfer fabric to prove (or refute) that every transfer drains.
//!
//! Soundness direction: the abstract fabric is *maximally permissive* —
//! messages cross the mesh instantly, every enabled transfer eventually
//! fires, and the only constraints kept are the real machine's own
//! structural ones (per-core in-order single-occupancy transfer issue,
//! per-channel FIFO delivery, round-robin virtual-channel assignment with
//! `channel_credits` credits per VC). Every real execution's transfer
//! order is a refinement of some abstract one, and enabled moves here are
//! *persistent* (each channel has one sender core and one receiver core,
//! so only the cursor that would take a move can consume its enabling
//! resources). If even this most-permissive schedule wedges, every real
//! schedule wedges: a reported [`DiagKind::DeadlockCycle`] is a
//! guaranteed runtime deadlock, not a maybe.

use std::collections::BTreeMap;

use pimsim_isa::{Instruction, Program};
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};

/// One provably-matched transfer: the `k`-th send on a channel paired
/// with the `k`-th recv. With both endpoint cores linear this pairing is
/// exactly the runtime's (per-channel FIFO delivery, in-order issue).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RendezvousPair {
    /// Sending core id.
    pub sender: u16,
    /// The `send` site's instruction index.
    pub send_pc: u32,
    /// Receiving core id.
    pub receiver: u16,
    /// The `recv`/`recv2d` site's instruction index.
    pub recv_pc: u32,
    /// Channel tag.
    pub tag: u16,
    /// Payload length, elements (equal on both sides by construction).
    pub elems: u32,
}

/// The analyzer's public rendezvous artifact: every provably-matched
/// send/recv pair, and whether the matching is *complete* — all transfer
/// sites paired, every core's order statically known, and the abstract
/// execution drained. A complete map is what lets a compiled engine fuse
/// regions across transfer boundaries; an incomplete map is still useful
/// as a partial cross-reference.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RendezvousMap {
    /// Matched pairs, sorted by `(sender, send_pc)`.
    pub pairs: Vec<RendezvousPair>,
    /// `true` when every transfer site in the program is in `pairs` and
    /// the abstract execution proved the program drains.
    pub complete: bool,
}

/// A channel's send sites and recv sites, in program order.
type ChannelSites = (Vec<Site>, Vec<Site>);

/// One transfer site, in a core's statically-known execution order.
/// Shared with the credit-occupancy pass ([`crate::occupancy`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Site {
    pub(crate) pc: u32,
    /// `true` for `send`, `false` for `recv`/`recv2d`.
    pub(crate) is_send: bool,
    /// Channel key `(sender, receiver, tag)`.
    pub(crate) key: (u16, u16, u16),
    /// Payload elements: `len` for send/recv, `block_len * blocks` for
    /// `recv2d` (the length the runtime's payload check compares).
    pub(crate) elems: u32,
}

pub(crate) fn site_of(core: u16, pc: u32, instr: &Instruction) -> Option<Site> {
    match instr {
        Instruction::Send { peer, len, tag, .. } => Some(Site {
            pc,
            is_send: true,
            key: (core, peer.0, *tag),
            elems: *len,
        }),
        Instruction::Recv { peer, len, tag, .. } => Some(Site {
            pc,
            is_send: false,
            key: (peer.0, core, *tag),
            elems: *len,
        }),
        Instruction::Recv2d {
            peer,
            block_len,
            blocks,
            tag,
            ..
        } => Some(Site {
            pc,
            is_send: false,
            key: (peer.0, core, *tag),
            elems: block_len * blocks,
        }),
        _ => None,
    }
}

fn channel_name(key: (u16, u16, u16)) -> String {
    format!("channel core{}\u{2192}core{} tag={}", key.0, key.1, key.2)
}

/// Runs the rendezvous analysis. `cfgs` parallels `program.cores`.
/// Returns the diagnostics plus the [`RendezvousMap`] artifact.
pub fn check(
    program: &Program,
    cfgs: &[Cfg],
    credits: u32,
    vcs: u32,
) -> (Vec<Diagnostic>, RendezvousMap) {
    let mut diags = Vec::new();

    // Per-core transfer sites in execution order (linear cores) or in
    // program order over reachable pcs (conservative fallback).
    let mut traces: Vec<Option<Vec<Site>>> = Vec::new(); // None = not linear
    let mut all_sites: Vec<Vec<Site>> = Vec::new();
    for (c, (cp, cfg)) in program.cores.iter().zip(cfgs).enumerate() {
        let c16 = c as u16;
        match cfg.linear_trace() {
            Some(pcs) => {
                let sites: Vec<Site> = pcs
                    .iter()
                    .filter_map(|&pc| site_of(c16, pc, &cp.instrs[pc as usize]))
                    .collect();
                all_sites.push(sites.clone());
                traces.push(Some(sites));
            }
            None => {
                let sites: Vec<Site> = (0..cp.instrs.len() as u32)
                    .filter(|&pc| cfg.pc_reachable(pc))
                    .filter_map(|pc| site_of(c16, pc, &cp.instrs[pc as usize]))
                    .collect();
                all_sites.push(sites);
                traces.push(None);
            }
        }
    }
    let all_linear = traces.iter().all(Option::is_some);

    // Group sites by channel.
    let mut channels: BTreeMap<(u16, u16, u16), ChannelSites> = BTreeMap::new();
    for sites in &all_sites {
        for &s in sites {
            let entry = channels.entry(s.key).or_default();
            if s.is_send {
                entry.0.push(s);
            } else {
                entry.1.push(s);
            }
        }
    }

    // One-sided channels: those transfers can never complete, on any
    // execution that reaches them, regardless of control flow elsewhere.
    for (&key, (sends, recvs)) in &channels {
        if recvs.is_empty() {
            for s in sends {
                diags.push(Diagnostic::at(
                    DiagKind::UnmatchedRendezvous,
                    key.0,
                    s.pc,
                    &program.cores[key.0 as usize].instrs[s.pc as usize],
                    format!(
                        "no recv anywhere in core{}'s program for {}",
                        key.1,
                        channel_name(key)
                    ),
                ));
            }
        }
        if sends.is_empty() {
            for r in recvs {
                diags.push(Diagnostic::at(
                    DiagKind::UnmatchedRendezvous,
                    key.1,
                    r.pc,
                    &program.cores[key.1 as usize].instrs[r.pc as usize],
                    format!(
                        "no send anywhere in core{}'s program for {}",
                        key.0,
                        channel_name(key)
                    ),
                ));
            }
        }
    }

    // In-order pairing. Precise only when both endpoint cores execute a
    // statically-known sequence; a pair from two linear cores is exact
    // even if some third core is not linear.
    let mut pairs = Vec::new();
    let mut all_paired = true;
    for (&key, (sends, recvs)) in &channels {
        if sends.is_empty() || recvs.is_empty() {
            all_paired = false;
            continue;
        }
        let endpoints_linear = traces[key.0 as usize].is_some() && traces[key.1 as usize].is_some();
        if !endpoints_linear {
            all_paired = false;
            continue;
        }
        if sends.len() != recvs.len() {
            all_paired = false;
            // FIFO delivery: the first min(m, n) pairs match; the trailing
            // excess on the longer side can never complete.
            let m = sends.len().min(recvs.len());
            for s in &sends[m..] {
                diags.push(Diagnostic::at(
                    DiagKind::UnmatchedRendezvous,
                    key.0,
                    s.pc,
                    &program.cores[key.0 as usize].instrs[s.pc as usize],
                    format!(
                        "{} has {} sends but only {} recvs: this send's message is never consumed",
                        channel_name(key),
                        sends.len(),
                        recvs.len()
                    ),
                ));
            }
            for r in &recvs[m..] {
                diags.push(Diagnostic::at(
                    DiagKind::UnmatchedRendezvous,
                    key.1,
                    r.pc,
                    &program.cores[key.1 as usize].instrs[r.pc as usize],
                    format!(
                        "{} has {} recvs but only {} sends: this recv waits forever",
                        channel_name(key),
                        recvs.len(),
                        sends.len()
                    ),
                ));
            }
        }
        for (s, r) in sends.iter().zip(recvs.iter()) {
            if s.elems != r.elems {
                all_paired = false;
                diags.push(Diagnostic::at(
                    DiagKind::PayloadMismatch,
                    key.1,
                    r.pc,
                    &program.cores[key.1 as usize].instrs[r.pc as usize],
                    format!(
                        "recv expects {} elements but the matching send (core{} pc={}) carries {} ({})",
                        r.elems,
                        key.0,
                        s.pc,
                        s.elems,
                        channel_name(key)
                    ),
                ));
            } else {
                pairs.push(RendezvousPair {
                    sender: key.0,
                    send_pc: s.pc,
                    receiver: key.1,
                    recv_pc: r.pc,
                    tag: key.2,
                    elems: s.elems,
                });
            }
        }
    }
    pairs.sort_by_key(|p| (p.sender, p.send_pc));

    // Abstract execution: only meaningful when every core's transfer
    // order is known and every site paired up.
    let mut drained = false;
    if all_linear && all_paired && diags.is_empty() {
        drained = abstract_exec(program, &traces, credits, vcs, &mut diags);
    }

    let map = RendezvousMap {
        pairs,
        complete: all_linear && all_paired && drained && diags.is_empty(),
    };
    (diags, map)
}

/// State of one channel in the abstract fabric.
#[derive(Debug)]
struct AbstractChannel {
    /// Messages deposited but not consumed, in order, each tagged with
    /// the VC whose credit it holds.
    queue: std::collections::VecDeque<u32>,
    /// Credits in use per VC.
    vc_used: Vec<u32>,
    /// Round-robin cursor for the next send's VC assignment.
    next_vc: u32,
}

/// Zero-latency most-permissive execution of the transfer fabric.
/// Returns `true` if every core's transfer sequence drains; on a wedge,
/// appends one [`DiagKind::DeadlockCycle`] diagnostic per stuck core.
fn abstract_exec(
    program: &Program,
    traces: &[Option<Vec<Site>>],
    credits: u32,
    vcs: u32,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let seqs: Vec<&[Site]> = traces
        .iter()
        .map(|t| t.as_deref().expect("caller checked all cores linear"))
        .collect();
    let mut cursor = vec![0usize; seqs.len()];
    let mut chans: BTreeMap<(u16, u16, u16), AbstractChannel> = BTreeMap::new();
    fn chan(
        chans: &mut BTreeMap<(u16, u16, u16), AbstractChannel>,
        key: (u16, u16, u16),
        vcs: u32,
    ) -> &mut AbstractChannel {
        chans.entry(key).or_insert_with(|| AbstractChannel {
            queue: std::collections::VecDeque::new(),
            vc_used: vec![0; vcs as usize],
            next_vc: 0,
        })
    }
    // Greedy fixpoint. Enabled moves are persistent (single producer and
    // single consumer per channel), so the visit order can't mask a
    // drain: if the loop wedges, no order drains.
    loop {
        let mut progressed = false;
        for c in 0..seqs.len() {
            while let Some(&site) = seqs[c].get(cursor[c]) {
                let ch = chan(&mut chans, site.key, vcs);
                if site.is_send {
                    // The VC is assigned round-robin at issue and the send
                    // waits on that VC's credit pool, like the runtime.
                    let vc = ch.next_vc as usize;
                    if ch.vc_used[vc] >= credits {
                        break;
                    }
                    ch.next_vc = (ch.next_vc + 1) % vcs;
                    ch.vc_used[vc] += 1;
                    ch.queue.push_back(vc as u32);
                } else {
                    let Some(vc) = ch.queue.pop_front() else {
                        break;
                    };
                    ch.vc_used[vc as usize] -= 1;
                }
                cursor[c] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let stuck: Vec<usize> = (0..seqs.len())
        .filter(|&c| cursor[c] < seqs[c].len())
        .collect();
    if stuck.is_empty() {
        return true;
    }

    // Each stuck core waits on exactly one other core: a blocked recv
    // waits for its sender, a credit-starved send waits for its receiver
    // to drain the channel. With every site paired, that peer is itself
    // stuck, so following the edges always closes a cycle.
    let waits_on = |c: usize| -> (Site, u16) {
        let site = seqs[c][cursor[c]];
        let peer = if site.is_send { site.key.1 } else { site.key.0 };
        (site, peer)
    };
    for &c in &stuck {
        let (site, peer) = waits_on(c);
        // Trace the wait-for chain from this core until it repeats.
        let mut chain = vec![c as u16];
        let mut cur = peer;
        while !chain.contains(&cur) {
            chain.push(cur);
            if cursor[cur as usize] >= seqs[cur as usize].len() {
                break; // finished core: chain ends, shouldn't happen when paired
            }
            cur = waits_on(cur as usize).1;
        }
        chain.push(cur);
        let cycle: Vec<String> = chain.iter().map(|&x| format!("core{x}")).collect();
        let what = if site.is_send {
            format!(
                "send is out of credits on {} ({} credits/VC) and core{} never drains it",
                channel_name(site.key),
                credits,
                peer
            )
        } else {
            format!(
                "recv waits for a message on {} that core{} never gets to send",
                channel_name(site.key),
                peer
            )
        };
        diags.push(Diagnostic::at(
            DiagKind::DeadlockCycle,
            c as u16,
            site.pc,
            &program.cores[c].instrs[site.pc as usize],
            format!(
                "static deadlock: {what}; wait-for cycle {}",
                cycle.join(" \u{2192} ")
            ),
        ));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::{Addr, CoreId, Reg};

    fn addr() -> Addr {
        Addr::new(Reg::R0, 0).unwrap()
    }

    fn send(peer: u16, len: u32, tag: u16) -> Instruction {
        Instruction::Send {
            peer: CoreId(peer),
            src: addr(),
            len,
            tag,
        }
    }

    fn recv(peer: u16, len: u32, tag: u16) -> Instruction {
        Instruction::Recv {
            peer: CoreId(peer),
            dst: addr(),
            len,
            tag,
        }
    }

    fn program(cores: Vec<Vec<Instruction>>) -> Program {
        let mut p = Program::with_cores(cores.len());
        for (i, instrs) in cores.into_iter().enumerate() {
            p.cores[i].instrs = instrs;
        }
        p
    }

    fn run(p: &Program) -> (Vec<Diagnostic>, RendezvousMap) {
        let cfgs: Vec<Cfg> = p.cores.iter().map(|c| Cfg::build(&c.instrs)).collect();
        check(p, &cfgs, 2, 1)
    }

    #[test]
    fn matched_pair_is_clean_and_mapped() {
        let p = program(vec![
            vec![send(1, 64, 5), Instruction::Halt],
            vec![recv(0, 64, 5), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags, vec![]);
        assert!(map.complete);
        assert_eq!(
            map.pairs,
            vec![RendezvousPair {
                sender: 0,
                send_pc: 0,
                receiver: 1,
                recv_pc: 0,
                tag: 5,
                elems: 64,
            }]
        );
    }

    #[test]
    fn missing_recv_is_unmatched() {
        let p = program(vec![
            vec![send(1, 64, 5), Instruction::Halt],
            vec![Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::UnmatchedRendezvous);
        assert_eq!((diags[0].core, diags[0].pc), (0, Some(0)));
        assert!(!map.complete);
    }

    #[test]
    fn missing_send_is_unmatched_at_recv() {
        let p = program(vec![
            vec![Instruction::Halt],
            vec![recv(0, 64, 5), Instruction::Halt],
        ]);
        let (diags, _) = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::UnmatchedRendezvous);
        assert_eq!((diags[0].core, diags[0].pc), (1, Some(0)));
    }

    #[test]
    fn count_mismatch_flags_trailing_excess() {
        let p = program(vec![
            vec![send(1, 8, 1), send(1, 8, 1), Instruction::Halt],
            vec![recv(0, 8, 1), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::UnmatchedRendezvous);
        assert_eq!((diags[0].core, diags[0].pc), (0, Some(1)));
        // The first send still pairs.
        assert_eq!(map.pairs.len(), 1);
        assert!(!map.complete);
    }

    #[test]
    fn payload_mismatch_flagged_at_recv() {
        let p = program(vec![
            vec![send(1, 64, 5), Instruction::Halt],
            vec![recv(0, 32, 5), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::PayloadMismatch);
        assert_eq!((diags[0].core, diags[0].pc), (1, Some(0)));
        assert!(map.pairs.is_empty());
        assert!(!map.complete);
    }

    #[test]
    fn crossed_recv_send_is_a_static_deadlock() {
        // Both cores recv first: the classic cross.
        let p = program(vec![
            vec![recv(1, 8, 1), send(1, 8, 2), Instruction::Halt],
            vec![recv(0, 8, 2), send(0, 8, 1), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.kind == DiagKind::DeadlockCycle));
        assert_eq!((diags[0].core, diags[0].pc), (0, Some(0)));
        assert_eq!((diags[1].core, diags[1].pc), (1, Some(0)));
        assert!(
            diags[0]
                .message
                .contains("core0 \u{2192} core1 \u{2192} core0"),
            "{}",
            diags[0].message
        );
        assert!(!map.complete);
    }

    #[test]
    fn credit_exhaustion_deadlocks() {
        // core0 issues 3 sends on one channel (2 credits, 1 VC) before
        // anything else; core1 first waits for a message core0 can only
        // send after its third send — which is credit-blocked until core1
        // recvs. Wedge.
        let p = program(vec![
            vec![
                send(1, 8, 1),
                send(1, 8, 1),
                send(1, 8, 1),
                send(1, 8, 9),
                Instruction::Halt,
            ],
            vec![
                recv(0, 8, 9),
                recv(0, 8, 1),
                recv(0, 8, 1),
                recv(0, 8, 1),
                Instruction::Halt,
            ],
        ]);
        let (diags, map) = run(&p);
        assert!(
            diags.iter().any(|d| d.kind == DiagKind::DeadlockCycle),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains("out of credits"),));
        assert!(!map.complete);
    }

    #[test]
    fn buffered_sends_within_credits_drain() {
        // Two sends queue up (2 credits) before the peer recvs: fine.
        let p = program(vec![
            vec![
                send(1, 8, 1),
                send(1, 8, 1),
                recv(1, 8, 2),
                Instruction::Halt,
            ],
            vec![
                send(0, 8, 2),
                recv(0, 8, 1),
                recv(0, 8, 1),
                Instruction::Halt,
            ],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags, vec![]);
        assert!(map.complete);
        assert_eq!(map.pairs.len(), 3);
    }

    #[test]
    fn non_linear_core_disables_completeness_but_keeps_zero_side_checks() {
        // core0 loops; its send count is unknowable, but core1's recv on
        // a channel with no send at all is still an error.
        let p = program(vec![
            vec![send(1, 8, 1), Instruction::Jump { target: 0 }],
            vec![recv(0, 8, 1), recv(0, 8, 7), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagKind::UnmatchedRendezvous);
        assert_eq!((diags[0].core, diags[0].pc), (1, Some(1)));
        assert!(!map.complete);
        assert!(map.pairs.is_empty());
    }

    #[test]
    fn recv2d_len_is_block_times_blocks() {
        let p = program(vec![
            vec![send(1, 24, 5), Instruction::Halt],
            vec![
                Instruction::Recv2d {
                    peer: CoreId(0),
                    dst: addr(),
                    block_len: 8,
                    blocks: 3,
                    dst_stride: 16,
                    tag: 5,
                },
                Instruction::Halt,
            ],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags, vec![]);
        assert!(map.complete);
        assert_eq!(map.pairs[0].elems, 24);
    }

    #[test]
    fn many_channels_many_pairs_sorted() {
        let p = program(vec![
            vec![send(1, 8, 2), send(2, 8, 1), Instruction::Halt],
            vec![recv(0, 8, 2), send(2, 8, 1), Instruction::Halt],
            vec![recv(0, 8, 1), recv(1, 8, 1), Instruction::Halt],
        ]);
        let (diags, map) = run(&p);
        assert_eq!(diags, vec![]);
        assert!(map.complete);
        let keys: Vec<(u16, u32)> = map.pairs.iter().map(|p| (p.sender, p.send_pc)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(map.pairs.len(), 3);
    }
}

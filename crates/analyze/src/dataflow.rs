//! Intra-core register dataflow: definite assignment (def-before-use),
//! liveness (dead writes), and a conservative interval analysis over the
//! scalar registers that flags statically-provable out-of-bounds memory
//! operands.
//!
//! All three passes are classic worklist fixpoints over the reachable
//! part of the [`Cfg`]. Soundness direction: the interval of a register
//! over-approximates the values it can hold at runtime (the entry state
//! is `[0, 0]` everywhere — the machine powers on with a zeroed register
//! file), so an access is reported as out of bounds only when *every*
//! value in the interval faults. Arithmetic mirrors the machine exactly
//! (`wrapping_*`, shift counts masked to 5 bits) when operands are
//! single-valued, and widens to the full `i32` range whenever a result
//! could wrap.

use pimsim_isa::{Instruction, Reg, SBinOp, SImmOp};

use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};

/// Memory capacities the out-of-bounds check runs against.
#[derive(Debug, Clone, Copy)]
pub struct MemLimits {
    /// Local scratchpad capacity, 32-bit elements.
    pub local_elems: u32,
    /// Global memory capacity, 32-bit elements.
    pub global_elems: u64,
}

// ---------------------------------------------------------------- intervals

/// An inclusive value interval `[lo, hi]` in `i64` (always within `i32`
/// range; `i64` keeps the arithmetic overflow-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

const TOP: Interval = Interval {
    lo: i32::MIN as i64,
    hi: i32::MAX as i64,
};

impl Interval {
    fn exact(v: i32) -> Interval {
        Interval {
            lo: v as i64,
            hi: v as i64,
        }
    }

    fn single(self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo as i32)
    }

    /// Union hull of two intervals.
    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps to `i32` range, widening to [`TOP`] when the bounds could
    /// only have been produced by a wrap.
    fn fit(lo: i64, hi: i64) -> Interval {
        if lo < i32::MIN as i64 || hi > i32::MAX as i64 {
            TOP
        } else {
            Interval { lo, hi }
        }
    }
}

type Regs = [Interval; 32];

/// Evaluates one scalar instruction over the interval state, mirroring
/// `exec_scalar` in the simulator's frontend.
fn eval(instr: &Instruction, regs: &mut Regs) {
    let get = |regs: &Regs, r: Reg| regs[r.index() as usize];
    let set = |regs: &mut Regs, r: Reg, v: Interval| {
        if !r.is_zero() {
            regs[r.index() as usize] = v;
        }
    };
    match instr {
        Instruction::SBin { op, rd, rs1, rs2 } => {
            let a = get(regs, *rs1);
            let b = get(regs, *rs2);
            let v = match (a.single(), b.single()) {
                // Both single-valued: fold exactly with machine semantics.
                (Some(x), Some(y)) => Interval::exact(match op {
                    SBinOp::Add => x.wrapping_add(y),
                    SBinOp::Sub => x.wrapping_sub(y),
                    SBinOp::Mul => x.wrapping_mul(y),
                    SBinOp::And => x & y,
                    SBinOp::Or => x | y,
                    SBinOp::Xor => x ^ y,
                    SBinOp::Slt => (x < y) as i32,
                    SBinOp::Sll => ((x as u32) << (y as u32 & 31)) as i32,
                    SBinOp::Srl => ((x as u32) >> (y as u32 & 31)) as i32,
                }),
                _ => match op {
                    SBinOp::Add => Interval::fit(a.lo + b.lo, a.hi + b.hi),
                    SBinOp::Sub => Interval::fit(a.lo - b.hi, a.hi - b.lo),
                    SBinOp::Mul => {
                        let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                        Interval::fit(
                            c.iter().copied().min().expect("nonempty"),
                            c.iter().copied().max().expect("nonempty"),
                        )
                    }
                    SBinOp::Slt => Interval { lo: 0, hi: 1 },
                    SBinOp::And | SBinOp::Or | SBinOp::Xor | SBinOp::Sll | SBinOp::Srl => TOP,
                },
            };
            set(regs, *rd, v);
        }
        Instruction::SImm { op, rd, rs1, imm } => {
            let a = get(regs, *rs1);
            let v = match a.single() {
                Some(x) => Interval::exact(match op {
                    SImmOp::Add => x.wrapping_add(*imm),
                    SImmOp::Mul => x.wrapping_mul(*imm),
                    SImmOp::Sll => ((x as u32) << (*imm as u32 & 31)) as i32,
                    SImmOp::Srl => ((x as u32) >> (*imm as u32 & 31)) as i32,
                    SImmOp::And => x & *imm,
                    SImmOp::Or => x | *imm,
                    SImmOp::Slt => (x < *imm) as i32,
                }),
                None => match op {
                    SImmOp::Add => Interval::fit(a.lo + *imm as i64, a.hi + *imm as i64),
                    SImmOp::Mul => {
                        let c = [a.lo * *imm as i64, a.hi * *imm as i64];
                        Interval::fit(c[0].min(c[1]), c[0].max(c[1]))
                    }
                    SImmOp::Slt => Interval { lo: 0, hi: 1 },
                    SImmOp::Sll | SImmOp::Srl | SImmOp::And | SImmOp::Or => TOP,
                },
            };
            set(regs, *rd, v);
        }
        // Memory-class and control instructions never write registers.
        _ => {}
    }
}

// ------------------------------------------------------------ the passes

/// Runs every dataflow pass over one core and appends its diagnostics.
pub fn check_core(
    core: u16,
    instrs: &[Instruction],
    cfg: &Cfg,
    limits: MemLimits,
    out: &mut Vec<Diagnostic>,
) {
    if cfg.blocks.is_empty() {
        return;
    }
    let preds = predecessors(cfg);
    def_before_use(core, instrs, cfg, &preds, out);
    dead_writes(core, instrs, cfg, out);
    out_of_bounds(core, instrs, cfg, &preds, limits, out);
}

/// Predecessor lists, restricted to reachable blocks.
fn predecessors(cfg: &Cfg) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); cfg.blocks.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        for &s in &blk.succs {
            preds[s].push(b);
        }
    }
    preds
}

/// Forward definite-assignment: warn when a register can be read before
/// any instruction writes it (it reads as `0`, the power-on value).
fn def_before_use(
    core: u16,
    instrs: &[Instruction],
    cfg: &Cfg,
    preds: &[Vec<usize>],
    out: &mut Vec<Diagnostic>,
) {
    const ALL: u32 = u32::MAX;
    let nb = cfg.blocks.len();
    // Bit r set = register r definitely assigned. r0 is always "assigned".
    let mut inb = vec![ALL; nb];
    inb[0] = 1;
    let transfer = |blk: &crate::cfg::BasicBlock, mut mask: u32| {
        for pc in blk.start..blk.end {
            if let Some(rd) = instrs[pc as usize].def_reg() {
                if !rd.is_zero() {
                    mask |= 1 << rd.index();
                }
            }
        }
        mask
    };
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.reachable[b] {
                continue;
            }
            if b == 0 {
                // The entry meets with the power-on state: nothing but r0
                // is definitely assigned at pc 0 on the first entry, and
                // intersection with any loop-back edge can't add to that.
                continue;
            }
            // Meet (intersection) over predecessors' OUT sets.
            let m = preds[b]
                .iter()
                .fold(ALL, |acc, &p| acc & transfer(&cfg.blocks[p], inb[p]));
            if m != inb[b] {
                inb[b] = m;
                changed = true;
            }
        }
    }
    // Report pass.
    for (b, entry) in inb.iter().enumerate().take(nb) {
        if !cfg.reachable[b] {
            continue;
        }
        let mut mask = *entry;
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            let instr = &instrs[pc as usize];
            let mut uses = Vec::new();
            instr.uses_regs(&mut uses);
            uses.sort_unstable();
            uses.dedup();
            for r in uses {
                if !r.is_zero() && mask & (1 << r.index()) == 0 {
                    out.push(Diagnostic::at(
                        DiagKind::DefBeforeUse,
                        core,
                        pc,
                        instr,
                        format!("{r} may be read before any write (reads as 0)"),
                    ));
                }
            }
            if let Some(rd) = instr.def_reg() {
                if !rd.is_zero() {
                    mask |= 1 << rd.index();
                }
            }
        }
    }
}

/// Backward liveness: warn about register writes no path can observe,
/// including writes to the hardwired-zero register.
fn dead_writes(core: u16, instrs: &[Instruction], cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let nb = cfg.blocks.len();
    // Bit r set = register r live (read before next write on some path).
    let mut live_in = vec![0u32; nb];
    let transfer = |blk: &crate::cfg::BasicBlock, live_out: u32| {
        let mut live = live_out;
        for pc in (blk.start..blk.end).rev() {
            let instr = &instrs[pc as usize];
            if let Some(rd) = instr.def_reg() {
                live &= !(1 << rd.index());
            }
            let mut uses = Vec::new();
            instr.uses_regs(&mut uses);
            for r in uses {
                live |= 1 << r.index();
            }
        }
        live
    };
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            if !cfg.reachable[b] {
                continue;
            }
            let live_out = cfg.blocks[b]
                .succs
                .iter()
                .fold(0u32, |acc, &s| acc | live_in[s]);
            let li = transfer(&cfg.blocks[b], live_out);
            if li != live_in[b] {
                live_in[b] = li;
                changed = true;
            }
        }
    }
    // Report pass.
    for b in 0..nb {
        if !cfg.reachable[b] {
            continue;
        }
        let mut live = cfg.blocks[b]
            .succs
            .iter()
            .fold(0u32, |acc, &s| acc | live_in[s]);
        // Walk backward so `live` is the live-after set at each pc.
        let pcs: Vec<u32> = (cfg.blocks[b].start..cfg.blocks[b].end).collect();
        for &pc in pcs.iter().rev() {
            let instr = &instrs[pc as usize];
            if let Some(rd) = instr.def_reg() {
                if rd.is_zero() {
                    out.push(Diagnostic::at(
                        DiagKind::DeadWrite,
                        core,
                        pc,
                        instr,
                        "write to r0 is discarded (hardwired zero)".to_string(),
                    ));
                } else if live & (1 << rd.index()) == 0 {
                    out.push(Diagnostic::at(
                        DiagKind::DeadWrite,
                        core,
                        pc,
                        instr,
                        format!("value written to {rd} is never read"),
                    ));
                }
                live &= !(1 << rd.index());
            }
            let mut uses = Vec::new();
            instr.uses_regs(&mut uses);
            for r in uses {
                live |= 1 << r.index();
            }
        }
    }
    // The backward report walk emits per block in reverse pc order; the
    // caller sorts all diagnostics, so order here doesn't matter.
}

/// Forward interval analysis + provable out-of-bounds memory operands.
fn out_of_bounds(
    core: u16,
    instrs: &[Instruction],
    cfg: &Cfg,
    preds: &[Vec<usize>],
    limits: MemLimits,
    out: &mut Vec<Diagnostic>,
) {
    let nb = cfg.blocks.len();
    let entry: Regs = [Interval::exact(0); 32];
    let mut inb: Vec<Option<Regs>> = vec![None; nb]; // None = not yet seen
    inb[0] = Some(entry);
    let transfer = |blk: &crate::cfg::BasicBlock, mut regs: Regs| {
        for pc in blk.start..blk.end {
            eval(&instrs[pc as usize], &mut regs);
        }
        regs
    };
    // Round-robin to fixpoint with widening after a few sweeps: interval
    // joins only ever grow, and widening snaps growing bounds to TOP, so
    // this terminates quickly.
    let mut sweeps = 0usize;
    loop {
        let mut changed = false;
        sweeps += 1;
        for b in 0..nb {
            if !cfg.reachable[b] {
                continue;
            }
            let mut joined: Option<Regs> = if b == 0 { Some(entry) } else { None };
            for &p in &preds[b] {
                let Some(pi) = inb[p] else { continue };
                let po = transfer(&cfg.blocks[p], pi);
                joined = Some(match joined {
                    None => po,
                    Some(mut j) => {
                        for r in 0..32 {
                            j[r] = j[r].join(po[r]);
                        }
                        j
                    }
                });
            }
            let Some(mut j) = joined else { continue };
            if let Some(old) = inb[b] {
                if sweeps > 3 {
                    // Widen: any bound still moving goes straight to TOP.
                    for r in 0..32 {
                        if j[r] != old[r] {
                            j[r] = TOP;
                        }
                    }
                }
                for r in 0..32 {
                    j[r] = j[r].join(old[r]);
                }
                if j != old {
                    inb[b] = Some(j);
                    changed = true;
                }
            } else {
                inb[b] = Some(j);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Report pass: evaluate each reachable block from its converged entry
    // state and check memory operands.
    for (b, entry) in inb.iter().enumerate().take(nb) {
        if !cfg.reachable[b] {
            continue;
        }
        let Some(mut regs) = *entry else { continue };
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            let instr = &instrs[pc as usize];
            check_instr_bounds(core, pc, instr, &regs, limits, out);
            eval(instr, &mut regs);
        }
    }
}

/// The effective-address interval of a memory operand: base register
/// interval plus the static offset (the machine computes
/// `max(reg + offset, 0)` in `i64`; clamping happens in the checks).
fn eff(addr: pimsim_isa::Addr, regs: &Regs) -> Interval {
    let base = regs[addr.base().index() as usize];
    Interval {
        lo: base.lo + addr.offset() as i64,
        hi: base.hi + addr.offset() as i64,
    }
}

/// Checks one access with relative span `[rel_lo, rel_hi)` around an
/// effective base interval against a memory of `capacity` elements.
/// Reports only when the access faults for *every* value in the interval.
#[allow(clippy::too_many_arguments)]
fn check_span(
    core: u16,
    pc: u32,
    instr: &Instruction,
    what: &str,
    base: Interval,
    rel_lo: i64,
    rel_hi: i64,
    capacity: i64,
    out: &mut Vec<Diagnostic>,
) {
    if rel_hi <= rel_lo {
        return; // empty access
    }
    if base.hi + rel_lo < 0 {
        out.push(Diagnostic::at(
            DiagKind::OutOfBounds,
            core,
            pc,
            instr,
            format!(
                "{what} address is provably negative (lowest element at {})",
                base.hi + rel_lo
            ),
        ));
    } else if base.lo.max(-rel_lo) + rel_hi > capacity {
        // Even the smallest possible base (after the machine's clamp to
        // 0) reaches past the end.
        out.push(Diagnostic::at(
            DiagKind::OutOfBounds,
            core,
            pc,
            instr,
            format!(
                "{what} access [{}, {}) provably exceeds {what} memory of {capacity} elements",
                base.lo.max(-rel_lo) + rel_lo,
                base.lo.max(-rel_lo) + rel_hi,
            ),
        ));
    }
}

/// Bounds checks for the transfer-class operands the issue calls out:
/// `recv`/`recv2d` destinations, and `gload`/`gstore` local + global
/// operands.
fn check_instr_bounds(
    core: u16,
    pc: u32,
    instr: &Instruction,
    regs: &Regs,
    limits: MemLimits,
    out: &mut Vec<Diagnostic>,
) {
    let local = limits.local_elems as i64;
    let global = limits.global_elems.min(i64::MAX as u64) as i64;
    match instr {
        Instruction::Recv { dst, len, .. } => {
            check_span(
                core,
                pc,
                instr,
                "local",
                eff(*dst, regs),
                0,
                *len as i64,
                local,
                out,
            );
        }
        Instruction::Recv2d {
            dst,
            block_len,
            blocks,
            dst_stride,
            ..
        } => {
            if *blocks == 0 || *block_len == 0 {
                return;
            }
            let reach = (*blocks as i64 - 1) * *dst_stride as i64;
            let rel_lo = reach.min(0);
            let rel_hi = reach.max(0) + *block_len as i64;
            check_span(
                core,
                pc,
                instr,
                "local",
                eff(*dst, regs),
                rel_lo,
                rel_hi,
                local,
                out,
            );
        }
        Instruction::GLoad { dst, gaddr, len } => {
            check_span(
                core,
                pc,
                instr,
                "local",
                eff(*dst, regs),
                0,
                *len as i64,
                local,
                out,
            );
            check_span(
                core,
                pc,
                instr,
                "global",
                eff(*gaddr, regs),
                0,
                *len as i64,
                global,
                out,
            );
        }
        Instruction::GStore { gaddr, src, len } => {
            check_span(
                core,
                pc,
                instr,
                "local",
                eff(*src, regs),
                0,
                *len as i64,
                local,
                out,
            );
            check_span(
                core,
                pc,
                instr,
                "global",
                eff(*gaddr, regs),
                0,
                *len as i64,
                global,
                out,
            );
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::{Addr, CoreId, Reg};

    const LIMITS: MemLimits = MemLimits {
        local_elems: 1024,
        global_elems: 1 << 20,
    };

    fn addr(base: Reg, off: i32) -> Addr {
        Addr::new(base, off).unwrap()
    }

    fn li(rd: Reg, v: i32) -> Instruction {
        Instruction::SImm {
            op: SImmOp::Add,
            rd,
            rs1: Reg::R0,
            imm: v,
        }
    }

    fn run(instrs: &[Instruction]) -> Vec<Diagnostic> {
        let cfg = Cfg::build(instrs);
        let mut out = Vec::new();
        check_core(0, instrs, &cfg, LIMITS, &mut out);
        out
    }

    /// `(kind, pc)` pairs sorted by pc — `check_core` leaves the global
    /// sort to the caller.
    fn kinds(diags: &[Diagnostic]) -> Vec<(DiagKind, u32)> {
        let mut v: Vec<(DiagKind, u32)> = diags.iter().map(|d| (d.kind, d.pc.unwrap())).collect();
        v.sort_by_key(|&(_, pc)| pc);
        v
    }

    #[test]
    fn clean_program_is_clean() {
        let instrs = vec![
            li(Reg::R1, 64),
            Instruction::Recv {
                peer: CoreId(1),
                dst: addr(Reg::R1, 0),
                len: 32,
                tag: 1,
            },
            Instruction::Send {
                peer: CoreId(1),
                src: addr(Reg::R1, 0),
                len: 32,
                tag: 2,
            },
            Instruction::Halt,
        ];
        assert_eq!(run(&instrs), vec![]);
    }

    #[test]
    fn def_before_use_flagged_once_per_site() {
        // r5 is never written; the recv base reads as 0.
        let instrs = vec![
            Instruction::Recv {
                peer: CoreId(1),
                dst: addr(Reg::R5, 0),
                len: 8,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert_eq!(kinds(&diags), vec![(DiagKind::DefBeforeUse, 0)]);
        assert!(diags[0].message.contains("r5"), "{}", diags[0].message);
    }

    #[test]
    fn def_on_every_path_suppresses_warning() {
        // 0: beq->2 ; 1: li r1 ; 2: li r1 ... both paths write r1? No —
        // path 0->2 skips pc 1. Write on one path only: still a warning.
        let instrs = vec![
            Instruction::Branch {
                cond: pimsim_isa::BranchCond::Eq,
                rs1: Reg::R0,
                rs2: Reg::R0,
                target: 2,
            },
            li(Reg::R1, 4),
            Instruction::Send {
                peer: CoreId(1),
                src: addr(Reg::R1, 0),
                len: 4,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagKind::DefBeforeUse && d.pc == Some(2)),
            "{diags:?}"
        );
        // Writing before the branch on the shared prefix clears it.
        let instrs2 = vec![
            li(Reg::R1, 4),
            Instruction::Branch {
                cond: pimsim_isa::BranchCond::Eq,
                rs1: Reg::R0,
                rs2: Reg::R0,
                target: 3,
            },
            Instruction::Nop,
            Instruction::Send {
                peer: CoreId(1),
                src: addr(Reg::R1, 0),
                len: 4,
                tag: 1,
            },
            Instruction::Halt,
        ];
        assert!(
            run(&instrs2)
                .iter()
                .all(|d| d.kind != DiagKind::DefBeforeUse),
            "{:?}",
            run(&instrs2)
        );
    }

    #[test]
    fn dead_write_flagged() {
        let instrs = vec![li(Reg::R1, 4), li(Reg::R1, 8), Instruction::Halt];
        let diags = run(&instrs);
        // pc 0's value is overwritten unread; pc 1's is never read.
        assert_eq!(
            kinds(&diags),
            vec![(DiagKind::DeadWrite, 0), (DiagKind::DeadWrite, 1)]
        );
    }

    #[test]
    fn write_to_r0_is_dead() {
        let instrs = vec![li(Reg::R0, 4), Instruction::Halt];
        let diags = run(&instrs);
        assert_eq!(kinds(&diags), vec![(DiagKind::DeadWrite, 0)]);
        assert!(
            diags[0].message.contains("hardwired"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn live_through_loop_is_not_dead() {
        // r1 counts down a loop: written at 0, read+written at 1, read by
        // the branch at 2.
        let instrs = vec![
            li(Reg::R1, 4),
            Instruction::SImm {
                op: SImmOp::Add,
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: -1,
            },
            Instruction::Branch {
                cond: pimsim_isa::BranchCond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                target: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert!(
            diags.iter().all(|d| d.kind != DiagKind::DeadWrite),
            "{diags:?}"
        );
    }

    #[test]
    fn provable_oob_recv_flagged() {
        let instrs = vec![
            li(Reg::R1, 1020),
            Instruction::Recv {
                peer: CoreId(1),
                dst: addr(Reg::R1, 0),
                len: 8,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert_eq!(kinds(&diags), vec![(DiagKind::OutOfBounds, 1)]);
        assert!(
            diags[0].message.contains("[1020, 1028)"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn unknown_base_is_not_flagged() {
        // r1's value depends on a branch: [0, 1020] hull — some values in
        // bounds, so nothing is provable.
        let instrs = vec![
            Instruction::Branch {
                cond: pimsim_isa::BranchCond::Eq,
                rs1: Reg::R0,
                rs2: Reg::R0,
                target: 2,
            },
            li(Reg::R1, 1020),
            Instruction::Recv {
                peer: CoreId(1),
                dst: addr(Reg::R1, 0),
                len: 8,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert!(
            diags.iter().all(|d| d.kind != DiagKind::OutOfBounds),
            "{diags:?}"
        );
    }

    #[test]
    fn negative_address_flagged() {
        let instrs = vec![
            li(Reg::R1, -100),
            Instruction::GLoad {
                dst: addr(Reg::R1, 0),
                gaddr: addr(Reg::R0, 0),
                len: 4,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert_eq!(kinds(&diags), vec![(DiagKind::OutOfBounds, 1)]);
        assert!(
            diags[0].message.contains("negative"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn strided_recv2d_span_checked() {
        // 2 blocks of 4, stride 1020: reaches [0, 1024) from base 0 — ok;
        // from base 8 the last block ends at 1032 — provably out.
        let ok = vec![
            Instruction::Recv2d {
                peer: CoreId(1),
                dst: addr(Reg::R0, 0),
                block_len: 4,
                blocks: 2,
                dst_stride: 1020,
                tag: 1,
            },
            Instruction::Halt,
        ];
        assert!(run(&ok).iter().all(|d| d.kind != DiagKind::OutOfBounds));
        let bad = vec![
            Instruction::Recv2d {
                peer: CoreId(1),
                dst: addr(Reg::R0, 8),
                block_len: 4,
                blocks: 2,
                dst_stride: 1020,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&bad);
        assert_eq!(kinds(&diags), vec![(DiagKind::OutOfBounds, 0)]);
    }

    #[test]
    fn gstore_global_bounds_checked() {
        let instrs = vec![
            li(Reg::R1, 1 << 20),
            Instruction::GStore {
                gaddr: addr(Reg::R1, 0),
                src: addr(Reg::R0, 0),
                len: 4,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert_eq!(kinds(&diags), vec![(DiagKind::OutOfBounds, 1)]);
        assert!(diags[0].message.contains("global"), "{}", diags[0].message);
    }

    #[test]
    fn wrapping_add_widens_not_misjudges() {
        // r1 = i32::MAX, r1 = r1 + 1 wraps to MIN at runtime; the exact
        // fold mirrors that, so the access is provably negative.
        let instrs = vec![
            li(Reg::R1, i32::MAX),
            Instruction::SImm {
                op: SImmOp::Add,
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 1,
            },
            Instruction::Recv {
                peer: CoreId(1),
                dst: addr(Reg::R1, 0),
                len: 4,
                tag: 1,
            },
            Instruction::Halt,
        ];
        let diags = run(&instrs);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagKind::OutOfBounds && d.message.contains("negative")),
            "{diags:?}"
        );
    }
}

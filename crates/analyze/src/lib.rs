//! # pimsim-analyze — static verification of compiled ISA programs
//!
//! The ISA is the contract between the compiler and the simulator; this
//! crate checks compiled [`Program`]s against that contract *before* the
//! first event fires, instead of letting violations surface thousands of
//! simulated nanoseconds in as a runtime `Deadlock`, `TagMismatch` or
//! `MemoryFault`. One call does everything:
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//! use pimsim_isa::asm::assemble;
//!
//! let arch = ArchConfig::small_test();
//! let program = assemble(".core 0\nhalt\n").unwrap();
//! let analysis = pimsim_analyze::analyze(&program, &arch);
//! assert!(!analysis.has_errors());
//! assert!(analysis.diagnostics.is_empty());
//! ```
//!
//! Three analysis layers, each a module:
//!
//! * [`mod@cfg`] — per-core control-flow graphs: unreachable blocks, silent
//!   fall-off-the-end (missing `halt`), and the linear execution traces
//!   the rendezvous analysis builds on;
//! * [`dataflow`] — register definite-assignment (def-before-use), dead
//!   writes, and interval analysis flagging statically-provable
//!   out-of-bounds `recv`/`recv2d`/`gload`/`gstore` operands against the
//!   configured memory sizes;
//! * [`rendezvous`] — cross-core `send`/`recv` matching by
//!   `(sender, receiver, tag)`, guaranteed-unmatched transfers, payload
//!   mismatches, a credit-aware abstract execution that reports provable
//!   deadlock cycles, and the [`RendezvousMap`] artifact of matched pairs.
//!
//! On top of the checker sits the **static performance bounds** pass
//! ([`bounds()`]): it builds the priced cross-core dependence DAG
//! ([`mod@dag`]), runs a longest-path abstract schedule, and emits a
//! [`BoundsReport`] — a *sound* lower bound on simulated latency with
//! its critical path, per-core utilization bounds, and per-channel
//! credit occupancy ([`mod@occupancy`]).
//!
//! Reported *errors* are provable misbehavior (soundness leans
//! conservative: an out-of-bounds access is flagged only when every
//! possible register valuation faults, a deadlock only when even a
//! maximally-permissive fabric wedges); *warnings* are well-defined but
//! almost certainly unintended behavior. See [`DiagKind`] for the
//! catalogue.

pub mod bounds;
pub mod cfg;
pub mod dag;
pub mod dataflow;
pub mod diag;
pub mod occupancy;
pub mod rendezvous;

use pimsim_arch::ArchConfig;
use pimsim_isa::{IsaError, Program, ProgramLimits};
use serde::{Deserialize, Serialize};

pub use bounds::{bounds, BoundsReport, CoreBound, CriticalHop};
pub use cfg::{BasicBlock, Cfg};
pub use diag::{DiagKind, Diagnostic, Severity};
pub use occupancy::{ChannelBound, OccupancyReport};
pub use rendezvous::{RendezvousMap, RendezvousPair};

use dataflow::MemLimits;

/// Version stamp carried by every serialized analyzer artifact
/// ([`Analysis`] and [`BoundsReport`]). Bump on any
/// backwards-incompatible JSON schema change.
pub const SCHEMA_VERSION: u32 = 1;

/// Everything one analysis run produced: diagnostics in deterministic
/// report order, plus the rendezvous artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Version of this JSON schema (see [`SCHEMA_VERSION`]); `0` when
    /// deserialized from a pre-versioning artifact.
    #[serde(default)]
    pub schema_version: u32,
    /// All findings, sorted by `(core, pc, kind, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Provably-matched send/recv pairs.
    pub rendezvous: RendezvousMap,
}

impl Analysis {
    /// `true` if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// One-line `N errors, M warnings` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} error{}, {} warning{}",
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
        )
    }

    /// Serializes the full analysis (diagnostics + rendezvous map) to
    /// pretty JSON, deterministically.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis serialization cannot fail")
    }
}

/// Statically analyzes `program` against `arch`.
///
/// Structural validation ([`Program::validate`]) runs first: a program
/// the simulator would reject is reported as a single
/// [`DiagKind::InvalidProgram`] error and nothing else runs (the deeper
/// passes assume in-range branch targets and peers).
pub fn analyze(program: &Program, arch: &ArchConfig) -> Analysis {
    let mut diagnostics = Vec::new();

    if let Err(e) = arch.validate() {
        diagnostics.push(Diagnostic::core_level(
            DiagKind::InvalidProgram,
            0,
            format!("architecture configuration invalid: {e}"),
        ));
        return Analysis {
            schema_version: SCHEMA_VERSION,
            diagnostics,
            rendezvous: RendezvousMap::default(),
        };
    }

    let limits = ProgramLimits {
        cores: arch.resources.cores(),
        xbars_per_core: arch.resources.xbars_per_core,
        local_mem_elems: arch.resources.local_mem_elems(),
        global_mem_elems: arch.resources.global_mem_elems(),
    };
    if let Err(e) = program.validate(&limits) {
        let diag = match &e {
            IsaError::Validate {
                core,
                pc: Some(pc),
                msg,
            } => {
                let instr = &program.cores[*core as usize].instrs[*pc as usize];
                Diagnostic::at(DiagKind::InvalidProgram, *core, *pc, instr, msg.clone())
            }
            IsaError::Validate {
                core,
                pc: None,
                msg,
            } => Diagnostic::core_level(DiagKind::InvalidProgram, *core, msg.clone()),
            other => Diagnostic::core_level(DiagKind::InvalidProgram, 0, other.to_string()),
        };
        diagnostics.push(diag);
        return Analysis {
            schema_version: SCHEMA_VERSION,
            diagnostics,
            rendezvous: RendezvousMap::default(),
        };
    }

    let mem = MemLimits {
        local_elems: arch.resources.local_mem_elems(),
        global_elems: arch.resources.global_mem_elems(),
    };

    // Per-core structure + dataflow.
    let mut cfgs = Vec::with_capacity(program.cores.len());
    for (c, cp) in program.cores.iter().enumerate() {
        let c16 = c as u16;
        let cfg = Cfg::build(&cp.instrs);
        for (b, blk) in cfg.blocks.iter().enumerate() {
            if !cfg.reachable[b] {
                diagnostics.push(Diagnostic::at(
                    DiagKind::UnreachableBlock,
                    c16,
                    blk.start,
                    &cp.instrs[blk.start as usize],
                    format!(
                        "block [{}, {}) is unreachable from the entry",
                        blk.start, blk.end
                    ),
                ));
            } else if blk.falls_off_end {
                let last = blk.end - 1;
                diagnostics.push(Diagnostic::at(
                    DiagKind::MissingHalt,
                    c16,
                    last,
                    &cp.instrs[last as usize],
                    "control can run off the end of the program (the core halts \
                     silently; add an explicit `halt`)"
                        .to_string(),
                ));
            }
        }
        dataflow::check_core(c16, &cp.instrs, &cfg, mem, &mut diagnostics);
        cfgs.push(cfg);
    }

    // Cross-core rendezvous.
    let (rdiags, rendezvous) = rendezvous::check(
        program,
        &cfgs,
        arch.noc.channel_credits,
        arch.noc.virtual_channels,
    );
    diagnostics.extend(rdiags);

    diagnostics.sort_by_key(|d| d.sort_key());
    Analysis {
        schema_version: SCHEMA_VERSION,
        diagnostics,
        rendezvous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_isa::asm::assemble;

    fn small() -> ArchConfig {
        ArchConfig::small_test()
    }

    #[test]
    fn clean_two_core_program() {
        let p = assemble(
            ".core 0\n\
             li r1, 0\n\
             send core1, [r1+0], 8, tag=1\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 8, tag=1\n\
             halt\n",
        )
        .unwrap();
        let a = analyze(&p, &small());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a.rendezvous.complete);
        assert_eq!(a.rendezvous.pairs.len(), 1);
        assert_eq!(a.summary(), "0 errors, 0 warnings");
    }

    #[test]
    fn invalid_program_preempts_everything() {
        let mut p = Program::with_cores(1);
        p.cores[0].instrs = vec![pimsim_isa::Instruction::Jump { target: 99 }];
        let a = analyze(&p, &small());
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].kind, DiagKind::InvalidProgram);
        assert_eq!(a.diagnostics[0].pc, Some(0));
        assert!(a.has_errors());
        assert!(!a.rendezvous.complete);
    }

    #[test]
    fn report_order_is_deterministic() {
        let p = assemble(
            ".core 0\n\
             li r1, 1\n\
             recv core1, [r2+0], 8, tag=3\n\
             halt\n\
             .core 1\n\
             halt\n",
        )
        .unwrap();
        let a = analyze(&p, &small());
        let again = analyze(&p, &small());
        assert_eq!(a, again);
        // dead write (r1), def-before-use (r2), unmatched recv — sorted
        // by pc.
        let kinds: Vec<DiagKind> = a.diagnostics.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DiagKind::DeadWrite,
                DiagKind::DefBeforeUse,
                DiagKind::UnmatchedRendezvous
            ],
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn json_roundtrips() {
        let p = assemble(".core 0\nnop\n").unwrap();
        let a = analyze(&p, &small());
        // nop then fall off the end: missing-halt warning.
        assert_eq!(a.warning_count(), 1);
        let text = a.to_json();
        let back: Analysis = serde_json::from_str(&text).unwrap();
        assert_eq!(back, a);
        assert!(text.contains("missing-halt"), "{text}");
    }

    #[test]
    fn json_is_versioned_and_byte_stable() {
        let p = assemble(
            ".core 0\n\
             li r1, 0\n\
             send core1, [r1+0], 4, tag=2\n\
             halt\n\
             .core 1\n\
             recv core0, [r0+0], 4, tag=2\n\
             halt\n",
        )
        .unwrap();
        let a = analyze(&p, &small());
        let text = a.to_json();
        // Version stamp is present in the serialized artifact...
        assert_eq!(a.schema_version, SCHEMA_VERSION);
        assert!(
            text.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
            "{text}"
        );
        // ...a rerun serializes byte-identically...
        assert_eq!(text, analyze(&p, &small()).to_json());
        // ...and pre-versioning artifacts still deserialize (as v0).
        let legacy = text.replace(&format!("\"schema_version\": {SCHEMA_VERSION},\n"), "");
        let back: Analysis = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.schema_version, 0);
        assert_eq!(back.rendezvous, a.rendezvous);
    }

    #[test]
    fn idle_cores_are_silent() {
        let p = Program::with_cores(4);
        let a = analyze(&p, &small());
        assert!(a.diagnostics.is_empty());
        assert!(a.rendezvous.complete);
        assert!(a.rendezvous.pairs.is_empty());
    }
}

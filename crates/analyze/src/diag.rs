//! Diagnostic types: severity, kind, and the diagnostic record itself.
//!
//! Diagnostics are plain data — severity, kind, location (core + pc), the
//! offending instruction's canonical assembly text, and a human-readable
//! message — so they render the same way from the CLI (`pimsim check`),
//! the `Simulator` pre-flight hook, and tests. Kinds serialize as their
//! kebab-case names (the same strings `Display` prints), keeping the JSON
//! output grep-friendly.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a diagnostic is.
///
/// `Error` marks programs that provably misbehave (out-of-bounds access,
/// transfers that can never match, guaranteed deadlock); `Warning` marks
/// code that executes with well-defined — but almost certainly
/// unintended — semantics (a register read before any write yields `0`,
/// running off the end of the stream halts silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum Severity {
    /// Suspicious but well-defined behavior.
    Warning,
    /// Provable misbehavior.
    Error,
}

impl Severity {
    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Severity, String> {
        match s {
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(format!(
                "unknown severity `{other}` (want warning or error)"
            )),
        }
    }
}

impl TryFrom<String> for Severity {
    type Error = String;
    fn try_from(s: String) -> Result<Severity, String> {
        s.parse()
    }
}

impl From<Severity> for String {
    fn from(s: Severity) -> String {
        s.name().to_string()
    }
}

/// What a diagnostic is about. Each kind has a fixed [`Severity`]
/// (see [`DiagKind::severity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum DiagKind {
    /// The program failed [`pimsim_isa::Program::validate`]; structural
    /// errors preempt every other analysis.
    InvalidProgram,
    /// A basic block no path from entry reaches.
    UnreachableBlock,
    /// Control can run off the end of the instruction stream (the machine
    /// halts silently instead of via an explicit `halt`).
    MissingHalt,
    /// A register may be read before any instruction writes it (it reads
    /// as `0`, the power-on value).
    DefBeforeUse,
    /// A register write whose value no path can observe.
    DeadWrite,
    /// A memory access that provably exceeds the configured memory size
    /// (or provably computes a negative address) on every execution.
    OutOfBounds,
    /// A `send` or `recv` site whose channel has no matching partner, or
    /// more sites on one side than the other: the excess transfers can
    /// never complete.
    UnmatchedRendezvous,
    /// A matched send/recv pair whose payload lengths disagree — the
    /// runtime raises `TagMismatch` when the message arrives.
    PayloadMismatch,
    /// A wait-for cycle among transfer sites: the cores provably stop
    /// making progress on every execution (static deadlock).
    DeadlockCycle,
}

impl DiagKind {
    /// Every diagnostic kind, in canonical order.
    pub const ALL: [DiagKind; 9] = [
        DiagKind::InvalidProgram,
        DiagKind::UnreachableBlock,
        DiagKind::MissingHalt,
        DiagKind::DefBeforeUse,
        DiagKind::DeadWrite,
        DiagKind::OutOfBounds,
        DiagKind::UnmatchedRendezvous,
        DiagKind::PayloadMismatch,
        DiagKind::DeadlockCycle,
    ];

    /// The canonical kebab-case name (used in text and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::InvalidProgram => "invalid-program",
            DiagKind::UnreachableBlock => "unreachable-block",
            DiagKind::MissingHalt => "missing-halt",
            DiagKind::DefBeforeUse => "def-before-use",
            DiagKind::DeadWrite => "dead-write",
            DiagKind::OutOfBounds => "out-of-bounds",
            DiagKind::UnmatchedRendezvous => "unmatched-rendezvous",
            DiagKind::PayloadMismatch => "payload-mismatch",
            DiagKind::DeadlockCycle => "deadlock-cycle",
        }
    }

    /// The fixed severity of this kind.
    pub fn severity(self) -> Severity {
        match self {
            DiagKind::InvalidProgram
            | DiagKind::OutOfBounds
            | DiagKind::UnmatchedRendezvous
            | DiagKind::PayloadMismatch
            | DiagKind::DeadlockCycle => Severity::Error,
            DiagKind::UnreachableBlock
            | DiagKind::MissingHalt
            | DiagKind::DefBeforeUse
            | DiagKind::DeadWrite => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DiagKind {
    type Err = String;

    fn from_str(s: &str) -> Result<DiagKind, String> {
        DiagKind::ALL
            .iter()
            .find(|k| k.name() == s)
            .copied()
            .ok_or_else(|| format!("unknown diagnostic kind `{s}`"))
    }
}

impl TryFrom<String> for DiagKind {
    type Error = String;
    fn try_from(s: String) -> Result<DiagKind, String> {
        s.parse()
    }
}

impl From<DiagKind> for String {
    fn from(k: DiagKind) -> String {
        k.name().to_string()
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Whether this is an error or a warning (always `kind.severity()`).
    pub severity: Severity,
    /// What the finding is about.
    pub kind: DiagKind,
    /// Which core's program the finding is in.
    pub core: u16,
    /// Offending instruction index, when the finding has one.
    pub pc: Option<u32>,
    /// The offending instruction's canonical assembly text (empty when
    /// `pc` is `None`).
    pub instr: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at a specific instruction, capturing its
    /// assembly text.
    pub fn at(
        kind: DiagKind,
        core: u16,
        pc: u32,
        instr: &pimsim_isa::Instruction,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: kind.severity(),
            kind,
            core,
            pc: Some(pc),
            instr: instr.to_string(),
            message: message.into(),
        }
    }

    /// Builds a core-level diagnostic with no instruction location.
    pub fn core_level(kind: DiagKind, core: u16, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: kind.severity(),
            kind,
            core,
            pc: None,
            instr: String::new(),
            message: message.into(),
        }
    }

    /// The deterministic report order: by core, then pc (core-level
    /// findings first), then kind, then message.
    pub fn sort_key(&self) -> (u16, i64, DiagKind, String) {
        let pc = self.pc.map_or(-1, |p| p as i64);
        (self.core, pc, self.kind, self.message.clone())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] core{}", self.severity, self.kind, self.core)?;
        if let Some(pc) = self.pc {
            write!(f, " pc={pc}")?;
        }
        if !self.instr.is_empty() {
            write!(f, " `{}`", self.instr)?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for k in DiagKind::ALL {
            let back: DiagKind = k.name().parse().unwrap();
            assert_eq!(back, k);
        }
        assert!("not-a-kind".parse::<DiagKind>().is_err());
    }

    #[test]
    fn severity_names_roundtrip() {
        for s in [Severity::Warning, Severity::Error] {
            let back: Severity = s.name().parse().unwrap();
            assert_eq!(back, s);
        }
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn display_includes_location_and_text() {
        let d = Diagnostic::at(
            DiagKind::OutOfBounds,
            2,
            7,
            &pimsim_isa::Instruction::Halt,
            "address 4096 exceeds local memory of 1024 elements",
        );
        let text = d.to_string();
        assert!(
            text.starts_with("error[out-of-bounds] core2 pc=7 `halt`:"),
            "{text}"
        );

        let c = Diagnostic::core_level(DiagKind::InvalidProgram, 0, "bad");
        assert_eq!(c.to_string(), "error[invalid-program] core0: bad");
    }

    #[test]
    fn sort_order_puts_core_level_first() {
        let a = Diagnostic::core_level(DiagKind::InvalidProgram, 0, "x");
        let b = Diagnostic::at(
            DiagKind::DeadWrite,
            0,
            0,
            &pimsim_isa::Instruction::Nop,
            "y",
        );
        assert!(a.sort_key() < b.sort_key());
    }
}

//! Property tests for CFG construction: random instruction streams, with
//! branch targets both in and out of range, must always produce a graph
//! where every instruction belongs to exactly one block and every edge is
//! consistent with the underlying terminators.

use pimsim_analyze::Cfg;
use pimsim_isa::{BranchCond, Instruction, Reg, SImmOp};
use proptest::prelude::*;

/// A random instruction for CFG purposes: control flow plus filler.
/// Targets range past the end of the stream on purpose — `Cfg::build`
/// must tolerate what `Program::validate` would reject.
fn instr_strategy(max_target: u32) -> impl Strategy<Value = Instruction> {
    prop_oneof![
        3 => Just(Instruction::Nop),
        2 => (1u8..=8, -64i32..64).prop_map(|(r, imm)| Instruction::SImm {
            op: SImmOp::Add,
            rd: Reg::new(r).expect("registers 1..=8 exist"),
            rs1: Reg::R0,
            imm,
        }),
        2 => (0..max_target).prop_map(|target| Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::R1,
            rs2: Reg::R2,
            target,
        }),
        1 => (0..max_target).prop_map(|target| Instruction::Jump { target }),
        1 => Just(Instruction::Halt),
    ]
}

fn stream_strategy() -> impl Strategy<Value = Vec<Instruction>> {
    // The target bound exceeds every possible stream length, so draws
    // exercise both in-range and past-the-end targets for all lengths.
    proptest::collection::vec(instr_strategy(52), 1usize..48usize)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_instruction_in_exactly_one_block(instrs in stream_strategy()) {
        let cfg = Cfg::build(&instrs);
        let mut seen = vec![0u32; instrs.len()];
        for blk in &cfg.blocks {
            prop_assert!(blk.start < blk.end, "empty block {blk:?}");
            prop_assert!((blk.end as usize) <= instrs.len());
            for pc in blk.start..blk.end {
                seen[pc as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage {seen:?}");
        // block_of agrees with the block ranges.
        for (b, blk) in cfg.blocks.iter().enumerate() {
            for pc in blk.start..blk.end {
                prop_assert_eq!(cfg.block_of(pc), b);
            }
        }
    }

    #[test]
    fn successors_are_consistent_with_terminators(instrs in stream_strategy()) {
        let n = instrs.len();
        let cfg = Cfg::build(&instrs);
        for blk in &cfg.blocks {
            // A terminator can only be the last instruction of its block.
            for pc in blk.start..blk.end - 1 {
                prop_assert!(
                    !instrs[pc as usize].is_terminator(),
                    "terminator mid-block at pc {pc}"
                );
            }
            let last = &instrs[(blk.end - 1) as usize];
            // Every successor must be exactly a block starting at the
            // branch target or at the fallthrough pc.
            let mut expected = Vec::new();
            let mut falls_off = false;
            let mut add = |pc: u32| {
                if (pc as usize) < n {
                    expected.push(pc);
                } else {
                    falls_off = true;
                }
            };
            match last {
                Instruction::Halt => {}
                Instruction::Jump { target } => add(*target),
                Instruction::Branch { target, .. } => {
                    add(*target);
                    add(blk.end);
                }
                _ => add(blk.end),
            }
            let got: Vec<u32> = blk.succs.iter().map(|&s| cfg.blocks[s].start).collect();
            expected.dedup();
            prop_assert_eq!(&got, &expected, "block {:?}", blk);
            prop_assert_eq!(blk.falls_off_end, falls_off, "block {:?}", blk);
        }
        // The entry block is always reachable; reachability is closed
        // under successors.
        if !cfg.blocks.is_empty() {
            prop_assert!(cfg.reachable[0]);
            for (b, blk) in cfg.blocks.iter().enumerate() {
                if cfg.reachable[b] {
                    for &s in &blk.succs {
                        prop_assert!(cfg.reachable[s]);
                    }
                }
            }
        }
    }

    #[test]
    fn linear_traces_visit_reachable_straight_line_code_once(instrs in stream_strategy()) {
        let cfg = Cfg::build(&instrs);
        if let Some(trace) = cfg.linear_trace() {
            // A trace never repeats a pc and only visits reachable code.
            let mut seen = std::collections::HashSet::new();
            for &pc in &trace {
                prop_assert!(seen.insert(pc), "pc {pc} repeated");
                prop_assert!(cfg.pc_reachable(pc));
            }
        }
    }
}

//! Regression corpus of deliberately broken assembly: one fixture per
//! diagnostic kind, each pinned to the exact core and pc the analyzer
//! must report. These are the canonical examples of each defect class —
//! if a refactor moves a diagnostic to a different site or stops it
//! firing, this file is what fails.

use pimsim_analyze::{analyze, Analysis, DiagKind};
use pimsim_arch::ArchConfig;
use pimsim_isa::asm;

/// Assembles `src`, analyzes it on the test chip, and asserts that a
/// diagnostic of `kind` fires at exactly (`core`, `pc`) with the kind's
/// fixed severity and its kebab-case name in the rendered text.
fn expect_at(src: &str, kind: DiagKind, core: u16, pc: u32) -> Analysis {
    let program = asm::assemble(src).expect("fixture assembles");
    let analysis = analyze(&program, &ArchConfig::small_test());
    let hit = analysis
        .diagnostics
        .iter()
        .find(|d| d.kind == kind && d.core == core && d.pc == Some(pc))
        .unwrap_or_else(|| {
            panic!(
                "expected {} at core{core} pc={pc}, got:\n{}",
                kind.name(),
                analysis.summary_lines()
            )
        });
    assert_eq!(hit.severity, kind.severity());
    assert!(
        hit.to_string().contains(kind.name()),
        "rendered text names the kind: {hit}"
    );
    assert!(
        !hit.instr.is_empty(),
        "site diagnostics carry the instruction"
    );
    analysis
}

trait SummaryLines {
    fn summary_lines(&self) -> String;
}

impl SummaryLines for Analysis {
    fn summary_lines(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[test]
fn unreachable_block_after_an_unconditional_jump() {
    expect_at(
        r#"
            .core 0
            jmp end
            addi r1, r0, 5
            end:
            halt
        "#,
        DiagKind::UnreachableBlock,
        0,
        1,
    );
}

#[test]
fn missing_halt_when_control_runs_off_the_end() {
    let analysis = expect_at(
        r#"
            .core 0
            addi r1, r0, 1
        "#,
        DiagKind::MissingHalt,
        0,
        0,
    );
    // Warnings only: the program still runs (it halts silently).
    assert!(!analysis.has_errors());
}

#[test]
fn def_before_use_reads_the_power_on_zero() {
    expect_at(
        r#"
            .core 0
            add r1, r2, r2
            gstore g[r1+0], [r0+0], 4
            halt
        "#,
        DiagKind::DefBeforeUse,
        0,
        0,
    );
}

#[test]
fn dead_write_overwritten_before_any_read() {
    expect_at(
        r#"
            .core 0
            addi r1, r0, 7
            addi r1, r0, 8
            gstore g[r1+0], [r0+0], 4
            halt
        "#,
        DiagKind::DeadWrite,
        0,
        0,
    );
}

#[test]
fn out_of_bounds_recv_past_the_local_memory() {
    // The validator cannot see through the register, but the interval
    // analysis proves r1 is far past the end of local memory.
    expect_at(
        r#"
            .core 0
            li r1, 100000000
            recv core1, [r1+0], 8, tag=1
            halt
            .core 1
            send core0, [r0+0], 8, tag=1
            halt
        "#,
        DiagKind::OutOfBounds,
        0,
        1,
    );
}

#[test]
fn unmatched_send_with_no_receiver() {
    let analysis = expect_at(
        r#"
            .core 0
            send core1, [r0+0], 4, tag=7
            halt
            .core 1
            halt
        "#,
        DiagKind::UnmatchedRendezvous,
        0,
        0,
    );
    assert!(analysis.has_errors());
    assert!(!analysis.rendezvous.complete);
}

#[test]
fn payload_mismatch_between_matched_partners() {
    expect_at(
        r#"
            .core 0
            send core1, [r0+0], 4, tag=3
            halt
            .core 1
            recv core0, [r0+0], 6, tag=3
            halt
        "#,
        DiagKind::PayloadMismatch,
        1,
        0,
    );
}

#[test]
fn deadlock_cycle_from_crossed_rendezvous_order() {
    // Every transfer is matched and the rendezvous map is complete, yet
    // each core's send sits behind its own blocked recv: a wait-for
    // cycle the credit-aware abstract execution proves will wedge.
    let analysis = expect_at(
        r#"
            .core 0
            recv core1, [r0+0], 4, tag=1
            send core1, [r0+64], 4, tag=2
            halt
            .core 1
            recv core0, [r0+0], 4, tag=2
            send core0, [r0+64], 4, tag=1
            halt
        "#,
        DiagKind::DeadlockCycle,
        0,
        0,
    );
    // Matching is not the problem — no transfer is one-sided — but the
    // map still reports incomplete because the abstract execution wedges.
    assert!(analysis
        .diagnostics
        .iter()
        .all(|d| d.kind != DiagKind::UnmatchedRendezvous));
    assert!(!analysis.rendezvous.complete);
    assert!(analysis.has_errors());
}

#[test]
fn invalid_program_preempts_everything_else() {
    // A send to a core outside the 3x3 test mesh fails validation; the
    // analyzer reports exactly that and nothing speculative.
    let program = asm::assemble(
        r#"
            .core 0
            send core12, [r0+0], 4, tag=0
            halt
        "#,
    )
    .expect("assembles; validation is the analyzer's job");
    let analysis = analyze(&program, &ArchConfig::small_test());
    assert!(analysis.has_errors());
    assert!(analysis
        .diagnostics
        .iter()
        .all(|d| d.kind == DiagKind::InvalidProgram));
}

//! `pimsim` — command-line front end for the PIMSIM-NN framework.
//!
//! ```text
//! pimsim run      --network resnet18 [--size 64] [--mapping performance-first]
//!                 [--rob N] [--batch N] [--config arch.json] [--functional]
//!                 [--baseline] [--json]
//! pimsim compile  --network vgg8 [--size 32] [--mapping ...] [--out prog.json]
//!                 [--asm prog.s]
//! pimsim check    <prog.json|prog.s> | --network resnet18 [--mapping ...]
//!                 [--format text|json] [--deny-warnings]
//! pimsim bound    <prog.json|prog.s> | --network resnet18 [--mapping ...]
//!                 [--format text|json]
//! pimsim asm      <file.s> [--out prog.json]
//! pimsim disasm   <prog.json>
//! pimsim sweep    [--config grid.json] [--networks a,b] [--robs 1,4,8] ...
//!                 [--arrival-rates R,S] [--batch-policies P,Q]
//!                 [--threads N] [--out results.json] [--json]
//! pimsim serve    --networks resnet18,vgg8 [--rate 50000] [--arrivals poisson]
//!                 [--duration 10ms] [--batch 4/50us] [--queue 64]
//!                 [--instances N] [--seed N] [--no-drain] [--json]
//! pimsim networks
//! pimsim config   [--out arch.json]
//! ```

use std::process::ExitCode;

use pimsim_arch::ArchConfig;
use pimsim_baseline::BaselineSimulator;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::{EngineKind, Simulator};
use pimsim_isa::{asm, Program};
use pimsim_nn::{zoo, Network};
use pimsim_sweep::{results_to_json, run_scenarios, SweepGrid};

mod args;
use args::Args;

const USAGE: &str =
    "usage: pimsim <run|compile|check|bound|asm|disasm|sweep|serve|networks|config> [options]
  run       compile a zoo network and simulate it (add --baseline for the
            MNSIM2.0-like behaviour-level model)
  compile   compile a network and write the program (JSON and/or assembly)
  check     statically verify a program (a .s/.json file, or --network to
            compile one on the spot): control flow, register dataflow,
            memory bounds, and cross-core send/recv rendezvous
  bound     static performance bounds for a program (same sources as
            check): a sound latency lower bound with its critical path,
            per-core utilization bounds, and per-channel credit occupancy
  asm       assemble a .s file into a program JSON
  disasm    print the assembly of a program JSON
  sweep     run a design-space campaign (cartesian scenario grid) in
            parallel and collect one result row per point
  serve     simulate the chip under open-loop inference traffic (request
            arrivals, batching queue) and report throughput and
            p50/p95/p99 tail latency
  networks  list zoo networks
  config    print (or write) the default architecture configuration

common options (in parentheses: the commands that accept each):
  --network NAME      zoo network (run/compile/check/bound; see
                      `pimsim networks`)
  --size N            input resolution, default 64; vgg default 32
                      (run/compile/check/bound)
  --config FILE       architecture configuration JSON, default: paper chip
                      (run/compile/check/bound); for `sweep`: the grid JSON
  --mapping POLICY    performance-first | utilization-first
                      (run/compile/check/bound)
  --rob N             re-order buffer size override (run/compile/check/bound)
  --batch N           inferences compiled back to back
                      (run/compile/check/bound)
  --routing POLICY    NoC routing: xy (default) | yx | xy-yx | adaptive
                      (run/compile/check/bound)
  --vcs N             virtual channels per rendezvous channel, default 1
                      (run/compile/check/bound)
  --router-depth N    router pipeline stages per hop, default 1
                      (run/compile/check/bound)
  --format FMT        report format: text (default) | json (check/bound)
  --deny-warnings     exit nonzero on warnings, not just errors (check)
  --engine KIND       run-loop engine: event (default, reference) |
                      compiled (pre-placed schedules, identical output)
                      (run)
  --schedule          include the engine's schedule counters in the
                      report (run)
  --functional        run functionally, data + timing (run/compile)
  --trace             print the first instruction completions (run/compile)
  --json              machine-readable report (run/sweep)
  --out FILE          output path (compile/asm/sweep/config)
  --asm FILE          also write the program's assembly (compile)

sweep axes (comma-separated; flags override the --config grid; an axis
left empty inherits a single value from the base architecture):
  --networks A,B      zoo networks to sweep (required)
  --resolutions N,M   input resolutions (default: each network's usual)
  --mappings P,Q      mapping policies
  --batches N,M       batch sizes
  --robs N,M          re-order buffer depths
  --adcs N,M          ADCs per crossbar
  --lanes N,M         vector SIMD lanes
  --flits N,M         NoC flit widths (bytes)
  --routings P,Q      NoC routing policies (xy | yx | xy-yx | adaptive)
  --vcs N,M           virtual channels per rendezvous channel
  --router-depths N,M router pipeline depths
  --hazards on,off    structure-hazard settings (ablation)
  --simulators S,T    cycle | baseline
  --engines A,B       run-loop engines (event | compiled)
  --arrival-rates R,S open-loop serving rates (req/s); fans each hardware
                      point out across traffic intensities
  --batch-policies P,Q serving batch policies, `N` or `N/T` (e.g. 4/50us)
  --serve-duration D  serving arrival horizon (default 10ms)
  --serve-seed N      serving arrival-stream seed (default 42)
  --threads N         worker threads (default: available cores; sweep/serve)

serve options (open-loop serving; also honors --config, --mapping, --rob,
--routing, --vcs, --router-depth and --engine like `run`):
  --networks A,B      zoo networks to serve, `name` or `name/RES` (required)
  --rate R            aggregate offered load, requests/second (default 50000)
  --arrivals KIND     arrival process: poisson (default) | fixed | bursty
  --duration D        arrival horizon with a unit: ns/us/ms/s (default 10ms)
  --seed N            arrival-stream RNG seed (default 42)
  --batch POLICY      batch policy `N` or `N/T`: dispatch a batch at N
                      queued requests or when the oldest has waited T
                      (default 4/50us)
  --queue N           admission-queue bound, all networks (default 64)
  --instances N       simulated accelerator instances (default 1)
  --burst-on D        bursty arrivals: on-window length (default 500us)
  --burst-off D       bursty arrivals: off-window length (default 500us)
  --no-drain          stop at the horizon instead of draining the queue
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// One subcommand: its name, its option vocabulary (so one command's
/// options are rejected with a hint on another instead of being silently
/// ignored), and its entry point.
struct CommandSpec {
    name: &'static str,
    vocab: args::Vocabulary,
    run: fn(&Args) -> Result<(), String>,
}

/// The complete subcommand table — the single source the parser, the
/// dispatcher, and the tests all read.
const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "run",
        vocab: args::Vocabulary {
            value_options: &[
                "network",
                "size",
                "config",
                "mapping",
                "rob",
                "batch",
                "routing",
                "vcs",
                "router-depth",
                "engine",
            ],
            flags: &[
                "baseline",
                "functional",
                "trace",
                "json",
                "schedule",
                "help",
            ],
            max_positionals: 0,
        },
        run: cmd_run,
    },
    CommandSpec {
        name: "compile",
        vocab: args::Vocabulary {
            value_options: &[
                "network",
                "size",
                "config",
                "mapping",
                "rob",
                "batch",
                "routing",
                "vcs",
                "router-depth",
                "out",
                "asm",
            ],
            flags: &["functional", "trace", "help"],
            max_positionals: 0,
        },
        run: cmd_compile,
    },
    CommandSpec {
        name: "check",
        vocab: args::Vocabulary {
            value_options: &[
                "network",
                "size",
                "config",
                "mapping",
                "rob",
                "batch",
                "routing",
                "vcs",
                "router-depth",
                "format",
            ],
            flags: &["deny-warnings", "help"],
            max_positionals: 1,
        },
        run: cmd_check,
    },
    CommandSpec {
        name: "bound",
        vocab: args::Vocabulary {
            value_options: &[
                "network",
                "size",
                "config",
                "mapping",
                "rob",
                "batch",
                "routing",
                "vcs",
                "router-depth",
                "format",
            ],
            flags: &["help"],
            max_positionals: 1,
        },
        run: cmd_bound,
    },
    CommandSpec {
        name: "asm",
        vocab: args::Vocabulary {
            value_options: &["out"],
            flags: &["help"],
            max_positionals: 1,
        },
        run: cmd_asm,
    },
    CommandSpec {
        name: "disasm",
        vocab: args::Vocabulary {
            value_options: &[],
            flags: &["help"],
            max_positionals: 1,
        },
        run: cmd_disasm,
    },
    CommandSpec {
        name: "sweep",
        vocab: args::Vocabulary {
            value_options: &[
                "config",
                "out",
                "threads",
                "networks",
                "resolutions",
                "mappings",
                "batches",
                "robs",
                "adcs",
                "lanes",
                "flits",
                "routings",
                "vcs",
                "router-depths",
                "hazards",
                "simulators",
                "engines",
                "arrival-rates",
                "batch-policies",
                "serve-duration",
                "serve-seed",
            ],
            flags: &["json", "help"],
            max_positionals: 0,
        },
        run: cmd_sweep,
    },
    CommandSpec {
        name: "serve",
        vocab: args::Vocabulary {
            value_options: &[
                "networks",
                "config",
                "mapping",
                "rob",
                "routing",
                "vcs",
                "router-depth",
                "engine",
                "rate",
                "arrivals",
                "duration",
                "seed",
                "batch",
                "queue",
                "instances",
                "burst-on",
                "burst-off",
                "threads",
                "out",
            ],
            flags: &["no-drain", "json", "help"],
            max_positionals: 0,
        },
        run: cmd_serve,
    },
    CommandSpec {
        name: "networks",
        vocab: args::Vocabulary {
            value_options: &[],
            flags: &["help"],
            max_positionals: 0,
        },
        run: cmd_networks,
    },
    CommandSpec {
        name: "config",
        vocab: args::Vocabulary {
            value_options: &["out"],
            flags: &["help"],
            max_positionals: 0,
        },
        run: cmd_config,
    },
];

fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == cmd.as_str()) else {
        let hint = match args::closest(cmd, COMMANDS.iter().map(|s| s.name)) {
            Some(s) => format!(" — did you mean `{s}`?"),
            None => String::new(),
        };
        return Err(format!("unknown command `{cmd}`{hint}\n{USAGE}"));
    };
    let args = Args::parse(&argv[1..], &spec.vocab)?;
    if args.flag("help") {
        print!("{USAGE}");
        return Ok(());
    }
    (spec.run)(&args)
}

fn load_arch(args: &Args) -> Result<ArchConfig, String> {
    let mut arch = match args.get("config") {
        Some(path) => ArchConfig::from_file(path).map_err(|e| e.to_string())?,
        None => ArchConfig::paper_default(),
    };
    if let Some(rob) = args.get_u32("rob")? {
        arch.resources.rob_size = rob;
    }
    if let Some(routing) = args.get("routing") {
        arch.noc.routing = pimsim_sweep::parse_routing(routing).map_err(|e| e.to_string())?;
    }
    if let Some(vcs) = args.get_u32("vcs")? {
        arch.noc.virtual_channels = vcs;
    }
    if let Some(depth) = args.get_u32("router-depth")? {
        arch.noc.router_pipeline_depth = depth;
    }
    if args.flag("functional") {
        arch.sim.functional = true;
    }
    if args.flag("trace") {
        arch.sim.trace = true;
    }
    arch.validate().map_err(|e| e.to_string())?;
    Ok(arch)
}

fn load_network(args: &Args) -> Result<Network, String> {
    let name = args
        .get("network")
        .ok_or("missing --network (try `pimsim networks`)")?;
    let size = args
        .get_u32("size")?
        .unwrap_or_else(|| pimsim_sweep::default_resolution(name));
    zoo::by_name(name, size).ok_or_else(|| format!("unknown network `{name}`"))
}

fn mapping_policy(args: &Args) -> Result<MappingPolicy, String> {
    pimsim_sweep::parse_mapping(args.get("mapping").unwrap_or("performance-first"))
        .map_err(|e| e.to_string())
}

fn engine_kind(args: &Args) -> Result<EngineKind, String> {
    let Some(v) = args.get("engine") else {
        return Ok(EngineKind::default());
    };
    pimsim_sweep::parse_engine(v).map_err(|e| {
        let names = EngineKind::ALL.map(EngineKind::name);
        match args::closest(v, names) {
            Some(s) => format!("{e} — did you mean `{s}`?"),
            None => e.to_string(),
        }
    })
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let net = load_network(args)?;
    let engine = engine_kind(args)?;
    if args.flag("baseline") {
        if args.get("engine").is_some() {
            return Err(
                "--engine selects the cycle-accurate run loop; it does not apply to --baseline"
                    .to_string(),
            );
        }
        if args.flag("schedule") {
            return Err(
                "--schedule reports run-loop counters; it does not apply to --baseline".to_string(),
            );
        }
        let report = BaselineSimulator::new(&arch)
            .run(&net)
            .map_err(|e| e.to_string())?;
        if args.flag("json") {
            println!(
                "{{\"simulator\":\"baseline\",\"network\":\"{}\",\"latency_ns\":{},\"energy_pj\":{},\"power_w\":{}}}",
                net.name,
                report.latency.as_ns_f64(),
                report.energy.as_pj(),
                report.avg_power_w()
            );
        } else {
            println!("baseline (MNSIM2.0-like) on {}:", net.name);
            println!("  latency : {}", report.latency);
            println!("  energy  : {}", report.energy);
            println!("  power   : {:.3} W", report.avg_power_w());
            println!("  layers  : {}", report.per_layer.len());
        }
        return Ok(());
    }

    let batch = args.get_u32("batch")?.unwrap_or(1);
    let policy = mapping_policy(args)?;
    let compiled = Compiler::new(&arch)
        .mapping(policy)
        .batch(batch)
        .compile(&net)
        .map_err(|e| e.to_string())?;
    let report = Simulator::new(&arch)
        .with_engine(engine.engine())
        .run(&compiled.program)
        .map_err(|e| e.to_string())?;
    let per_image = report.latency / batch as u64;
    // Opt-in so default JSON output stays byte-identical across engines
    // (and with pre-engine releases).
    let schedule = if args.flag("schedule") {
        let s = &report.schedule;
        format!(
            ",\"engine\":\"{engine}\",\"schedule\":{{\"events_dispatched\":{},\"events_placed\":{},\"regions_compiled\":{},\"regions_reused\":{},\"regions_fallback\":{}}}",
            s.events_dispatched,
            s.events_placed,
            s.regions_compiled,
            s.regions_reused,
            s.regions_fallback
        )
    } else {
        String::new()
    };
    if args.flag("json") {
        println!(
            "{{\"simulator\":\"cycle-accurate\",\"network\":\"{}\",\"mapping\":\"{}\",\"batch\":{},\"latency_ns\":{},\"latency_per_image_ns\":{},\"energy_pj\":{},\"power_w\":{},\"instructions\":{},\"events\":{}{schedule}}}",
            net.name,
            policy,
            batch,
            report.latency.as_ns_f64(),
            per_image.as_ns_f64(),
            report.energy.total().as_pj(),
            report.avg_power_w(),
            report.instructions,
            report.events
        );
    } else {
        println!("{} under {policy} (batch {batch}):", net.name);
        println!("  latency        : {}", report.latency);
        if batch > 1 {
            println!("  per image      : {per_image}");
        }
        println!("  energy         : {}", report.energy.total());
        println!(
            "    matrix {} / vector {} / transfer {} / static {}",
            report.energy.matrix,
            report.energy.vector,
            report.energy.transfer,
            report.energy.static_energy
        );
        println!("  power          : {:.3} W", report.avg_power_w());
        println!(
            "  instructions   : {} (matrix {}, vector {}, transfer {}, scalar {})",
            report.instructions,
            report.class_counts[0],
            report.class_counts[1],
            report.class_counts[2],
            report.class_counts[3]
        );
        println!("  kernel events  : {}", report.events);
        if args.flag("schedule") {
            let s = &report.schedule;
            println!("  engine         : {engine}");
            println!(
                "    dispatched {} / placed {} / regions: {} compiled, {} reused, {} fallback",
                s.events_dispatched,
                s.events_placed,
                s.regions_compiled,
                s.regions_reused,
                s.regions_fallback
            );
        }
        println!("  cores w/ work  : {}", compiled.placement.cores_used);
        if arch.sim.functional {
            let out = report.read_global(compiled.output.gaddr, compiled.output.elems.min(8));
            println!("  output head    : {out:?}");
        }
        if arch.sim.trace {
            println!("  trace (first 20 of {}):", report.trace.len());
            for t in report.trace.iter().take(20) {
                println!(
                    "    {:>12}  core{:<3} {}",
                    format!("{}", t.time),
                    t.core,
                    t.instr
                );
            }
        }
    }
    Ok(())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let net = load_network(args)?;
    let policy = mapping_policy(args)?;
    let batch = args.get_u32("batch")?.unwrap_or(1);
    let compiled = Compiler::new(&arch)
        .mapping(policy)
        .batch(batch)
        .compile(&net)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "compiled {}: {} instructions over {} cores",
        net.name,
        compiled.program.total_instructions(),
        compiled.placement.cores_used
    );
    if let Some(path) = args.get("out") {
        std::fs::write(path, compiled.program.to_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("asm") {
        std::fs::write(path, asm::disassemble(&compiled.program)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if args.get("out").is_none() && args.get("asm").is_none() {
        print!("{}", asm::disassemble(&compiled.program));
    }
    Ok(())
}

/// `pimsim check`: static dataflow + rendezvous verification of a program
/// (a `.s`/`.json` file, or a zoo network compiled on the spot) against
/// the architecture configuration, without simulating anything.
/// Validates `--format` for the analyzer commands.
fn report_format(args: &Args) -> Result<&str, String> {
    let format = args.get("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        let hint = match args::closest(format, ["text", "json"]) {
            Some(s) => format!(" — did you mean `{s}`?"),
            None => String::new(),
        };
        return Err(format!(
            "unknown format `{format}`: want text or json{hint}"
        ));
    }
    Ok(format)
}

/// Resolves the program `check`/`bound` operate on: a positional
/// `.s`/`.json` file, or a zoo network compiled on the spot. Returns the
/// program plus a human-readable label.
fn load_program(args: &Args, arch: &ArchConfig, cmd: &str) -> Result<(Program, String), String> {
    match (args.positional.first(), args.get("network")) {
        (Some(_), Some(_)) => Err("give a program file or --network, not both".to_string()),
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = if path.ends_with(".s") {
                asm::assemble(&text).map_err(|e| e.to_string())?
            } else {
                Program::from_json(&text).map_err(|e| e.to_string())?
            };
            Ok((program, path.clone()))
        }
        (None, Some(_)) => {
            let net = load_network(args)?;
            let policy = mapping_policy(args)?;
            let batch = args.get_u32("batch")?.unwrap_or(1);
            let compiled = Compiler::new(arch)
                .mapping(policy)
                .batch(batch)
                .compile(&net)
                .map_err(|e| e.to_string())?;
            Ok((compiled.program, format!("{} under {policy}", net.name)))
        }
        (None, None) => Err(format!(
            "usage: pimsim {cmd} <prog.json|prog.s> | pimsim {cmd} --network NAME"
        )),
    }
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let format = report_format(args)?;
    let (program, label) = load_program(args, &arch, "check")?;

    let analysis = pimsim_analyze::analyze(&program, &arch);
    if format == "json" {
        println!("{}", analysis.to_json());
    } else {
        for d in &analysis.diagnostics {
            println!("{d}");
        }
        println!(
            "{label}: {}; rendezvous: {} pair(s){}",
            analysis.summary(),
            analysis.rendezvous.pairs.len(),
            if analysis.rendezvous.complete {
                ", complete"
            } else {
                " (incomplete: program has data-dependent control flow or \
                 unmatched transfers)"
            }
        );
    }
    if analysis.has_errors() {
        return Err(format!("static analysis failed: {}", analysis.summary()));
    }
    if args.flag("deny-warnings") && analysis.warning_count() > 0 {
        return Err(format!(
            "static analysis produced warnings (denied by --deny-warnings): {}",
            analysis.summary()
        ));
    }
    Ok(())
}

fn cmd_bound(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let format = report_format(args)?;
    let (program, label) = load_program(args, &arch, "bound")?;

    let report = pimsim_analyze::bounds(&program, &arch);
    if format == "json" {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{label}: latency lower bound {:.3} ns ({} ps), source: {}{}",
            report.latency_lb_ns,
            report.latency_lb_ps,
            report.bound_source,
            if report.complete {
                ""
            } else {
                " (incomplete analysis: bound degrades to pacing terms)"
            }
        );
        if !report.critical_path.is_empty() {
            let shown = report.critical_path.len() as u32;
            if shown < report.critical_path_len {
                println!(
                    "critical path: {} hops, last {shown} shown:",
                    report.critical_path_len
                );
            } else {
                println!("critical path ({shown} hops):");
            }
            for h in &report.critical_path {
                println!(
                    "  core{} pc{:<5} +{} ps -> {} ps  {}",
                    h.core, h.pc, h.cost_ps, h.finish_ps, h.instr
                );
            }
        }
        if !report.cores.is_empty() {
            println!("per-core bounds:");
        }
        for c in &report.cores {
            println!(
                "  core{}: {} instr, busy >= {} ps, finish >= {} ps, \
                 utilization >= {:.1}%",
                c.core,
                c.instructions,
                c.busy_lb_ps,
                c.finish_lb_ps,
                c.utilization_lb * 100.0
            );
        }
        if !report.channels.is_empty() {
            println!("channel credit occupancy:");
            for ch in &report.channels {
                println!(
                    "  core{}->core{} tag={}: {} message(s), peak in-flight {}, \
                     peak/VC {}, min credits {}",
                    ch.sender,
                    ch.receiver,
                    ch.tag,
                    ch.messages,
                    ch.peak_in_flight,
                    ch.peak_per_vc,
                    ch.min_credits
                        .map_or_else(|| "-".to_string(), |c| c.to_string())
                );
            }
            if let Some(m) = report.min_credits_deadlock_free {
                println!(
                    "deadlock-free from {m} credit(s)/VC; no benefit past {} \
                     (configured: {})",
                    report.credit_knee, arch.noc.channel_credits
                );
            }
        }
    }
    if report.bound_source == "unanalyzable" {
        return Err(format!(
            "static analysis failed; no bound computed ({} diagnostic(s))",
            report.diagnostics.len()
        ));
    }
    Ok(())
}

fn cmd_asm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: pimsim asm <file.s> [--out prog.json]")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let program = asm::assemble(&text).map_err(|e| e.to_string())?;
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, program.to_json()).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{}", program.to_json()),
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: pimsim disasm <prog.json>")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let program = Program::from_json(&text).map_err(|e| e.to_string())?;
    print!("{}", asm::disassemble(&program));
    Ok(())
}

fn parse_on_off(v: &str) -> Result<bool, String> {
    match v {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(format!("--hazards expects on/off, got `{other}`")),
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let mut grid = match args.get("config") {
        Some(path) => SweepGrid::from_file(path).map_err(|e| e.to_string())?,
        None => SweepGrid::default(),
    };
    if let Some(v) = args.get_csv("networks") {
        grid.networks = v;
    }
    if let Some(v) = args.get_u32_csv("resolutions")? {
        grid.resolutions = v;
    }
    if let Some(v) = args.get_csv("mappings") {
        grid.mappings = v;
    }
    if let Some(v) = args.get_u32_csv("batches")? {
        grid.batches = v;
    }
    if let Some(v) = args.get_u32_csv("robs")? {
        grid.rob_sizes = v;
    }
    if let Some(v) = args.get_u32_csv("adcs")? {
        grid.adcs_per_xbar = v;
    }
    if let Some(v) = args.get_u32_csv("lanes")? {
        grid.vector_lanes = v;
    }
    if let Some(v) = args.get_u32_csv("flits")? {
        grid.flit_bytes = v;
    }
    if let Some(v) = args.get_csv("routings") {
        grid.routings = v;
    }
    if let Some(v) = args.get_u32_csv("vcs")? {
        grid.vcs = v;
    }
    if let Some(v) = args.get_u32_csv("router-depths")? {
        grid.router_depths = v;
    }
    if let Some(v) = args.get_csv("hazards") {
        grid.structure_hazard = v
            .iter()
            .map(|s| parse_on_off(s))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = args.get_csv("simulators") {
        grid.simulators = v;
    }
    if let Some(v) = args.get_csv("engines") {
        grid.engines = v;
    }
    if let Some(v) = args.get_f64_csv("arrival-rates")? {
        grid.arrival_rates = v;
    }
    if let Some(v) = args.get_csv("batch-policies") {
        grid.batch_policies = v;
    }
    if let Some(v) = args.get("serve-duration") {
        grid.serve_duration = Some(v.to_string());
    }
    if let Some(v) = args.get_u64("serve-seed")? {
        grid.serve_seed = Some(v);
    }
    let threads = match args.get_u32("threads")? {
        Some(t) => t.max(1) as usize,
        None => pimsim_sweep::default_threads(),
    };
    // Grid expansion probes every (network, resolution) pair and converts
    // zoo-builder panics into clean errors; silence the default panic hook
    // meanwhile so the user sees one diagnostic, not a backtrace.
    let scenarios = {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = grid.scenarios();
        std::panic::set_hook(hook);
        result.map_err(|e| e.to_string())?
    };
    eprintln!(
        "sweep: {} scenario(s) on {} thread(s)",
        scenarios.len(),
        threads
    );
    let start = std::time::Instant::now();
    let rows = run_scenarios(scenarios, threads).map_err(|e| e.to_string())?;
    let wall = start.elapsed();
    let json = results_to_json(&rows);
    if let Some(path) = args.get("out") {
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if args.flag("json") {
        println!("{json}");
    } else if args.get("out").is_none() {
        println!(
            "{:<48} {:>13} {:>12} {:>9}",
            "scenario", "latency/img", "energy", "power"
        );
        for row in &rows {
            println!(
                "{:<48} {:>13} {:>9.1} uJ {:>7.3} W",
                row.scenario.display_label(),
                format!("{}", row.latency_per_image()),
                row.energy_pj / 1e6,
                row.power_w
            );
        }
    }
    eprintln!(
        "sweep: {} point(s) in {:.2}s wall-clock",
        rows.len(),
        wall.as_secs_f64()
    );
    Ok(())
}

/// `pimsim serve`: the open-loop inference-serving simulation — seeded
/// request arrivals, a batching admission queue, and the cycle-accurate
/// simulator as the per-batch service-time model.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let names = args
        .get_csv("networks")
        .ok_or("missing --networks (try `pimsim networks`)")?;
    let mut networks = Vec::with_capacity(names.len());
    for item in &names {
        let (name, resolution) = match item.split_once('/') {
            Some((n, r)) => {
                let res = r.parse().map_err(|_| {
                    format!("--networks: `{item}` has a bad resolution (want e.g. `{n}/64`)")
                })?;
                (n.to_string(), res)
            }
            None => (item.clone(), pimsim_sweep::default_resolution(item)),
        };
        networks.push((name, resolution));
    }
    let mut config = pimsim_serve::ServeConfig::new(networks);
    config.arch = load_arch(args)?;
    config.mapping = mapping_policy(args)?;
    config.engine = engine_kind(args)?;
    if let Some(rate) = args.get_f64("rate")? {
        config.rate_rps = rate;
    }
    if let Some(v) = args.get("arrivals") {
        config.arrivals = v.parse().map_err(|e: pimsim_serve::ServeError| {
            let names = pimsim_serve::ArrivalProcess::ALL.map(|a| a.name());
            match args::closest(v, names) {
                Some(s) => format!("{e} — did you mean `{s}`?"),
                None => e.to_string(),
            }
        })?;
    }
    if let Some(v) = args.get("duration") {
        config.duration =
            pimsim_serve::parse_duration(v).map_err(|e| format!("--duration: {e}"))?;
    }
    if let Some(seed) = args.get_u64("seed")? {
        config.seed = seed;
    }
    if let Some(v) = args.get("batch") {
        config.batch = v
            .parse()
            .map_err(|e: pimsim_serve::ServeError| e.to_string())?;
    }
    if let Some(cap) = args.get_u64("queue")? {
        config.queue_cap = cap;
    }
    if let Some(n) = args.get_u32("instances")? {
        config.instances = n;
    }
    if let Some(v) = args.get("burst-on") {
        config.burst_on =
            pimsim_serve::parse_duration(v).map_err(|e| format!("--burst-on: {e}"))?;
    }
    if let Some(v) = args.get("burst-off") {
        config.burst_off =
            pimsim_serve::parse_duration(v).map_err(|e| format!("--burst-off: {e}"))?;
    }
    if args.flag("no-drain") {
        config.drain = false;
    }
    let threads = match args.get_u32("threads")? {
        Some(t) => t.max(1) as usize,
        None => pimsim_sweep::default_threads(),
    };
    let report = pimsim_serve::serve(&config, threads).map_err(|e| match &e {
        pimsim_serve::ServeError::UnknownNetwork(n) => {
            match args::closest(n, zoo::NAMES.iter().copied()) {
                Some(s) => format!("{e} — did you mean `{s}`?"),
                None => e.to_string(),
            }
        }
        _ => e.to_string(),
    })?;
    let json = report.to_json();
    if let Some(path) = args.get("out") {
        std::fs::write(path, &json).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if args.flag("json") {
        println!("{json}");
    } else if args.get("out").is_none() {
        print!("{}", report.render_text());
    }
    Ok(())
}

fn cmd_networks(_args: &Args) -> Result<(), String> {
    for name in zoo::NAMES {
        let default = pimsim_sweep::default_resolution(name);
        if let Some(net) = zoo::by_name(name, default) {
            println!(
                "{name:11} {:3} layers, {:5.2} GMACs @ {default}x{default}",
                net.nodes.len(),
                net.total_macs() as f64 / 1e9
            );
        }
    }
    Ok(())
}

fn cmd_config(args: &Args) -> Result<(), String> {
    let cfg = ArchConfig::paper_default();
    match args.get("out") {
        Some(path) => {
            cfg.to_file(path).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{}", cfg.to_json()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `--name` in the USAGE text, in order of appearance.
    fn usage_options() -> Vec<String> {
        let mut out = Vec::new();
        let mut rest = USAGE;
        while let Some(pos) = rest.find("--") {
            rest = &rest[pos + 2..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        out
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn engine_values_are_validated_with_suggestions() {
        // An unknown engine is rejected with the valid set...
        let err =
            dispatch(&argv(&["run", "--network", "tiny_mlp", "--engine", "jit"])).unwrap_err();
        assert!(err.contains("unknown engine `jit`"), "{err}");
        assert!(err.contains("want event or compiled"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
        // ...and a near-miss also gets a did-you-mean hint.
        let err = dispatch(&argv(&[
            "run",
            "--network",
            "tiny_mlp",
            "--engine",
            "compield",
        ]))
        .unwrap_err();
        assert!(err.contains("did you mean `compiled`?"), "{err}");
        let err =
            dispatch(&argv(&["run", "--network", "tiny_mlp", "--engine", "even"])).unwrap_err();
        assert!(err.contains("did you mean `event`?"), "{err}");
    }

    #[test]
    fn engine_option_duplicates_and_typos_are_rejected() {
        let err = dispatch(&argv(&[
            "run",
            "--network",
            "tiny_mlp",
            "--engine",
            "event",
            "--engine",
            "compiled",
        ]))
        .unwrap_err();
        assert!(err.contains("--engine given more than once"), "{err}");
        let err =
            dispatch(&argv(&["run", "--network", "tiny_mlp", "--engin", "event"])).unwrap_err();
        assert!(err.contains("unknown option --engin"), "{err}");
        assert!(err.contains("did you mean --engine"), "{err}");
    }

    #[test]
    fn engine_and_schedule_do_not_apply_to_the_baseline() {
        let err = dispatch(&argv(&[
            "run",
            "--network",
            "tiny_mlp",
            "--baseline",
            "--engine",
            "compiled",
        ]))
        .unwrap_err();
        assert!(err.contains("does not apply to --baseline"), "{err}");
        let err = dispatch(&argv(&[
            "run",
            "--network",
            "tiny_mlp",
            "--baseline",
            "--schedule",
        ]))
        .unwrap_err();
        assert!(err.contains("does not apply to --baseline"), "{err}");
    }

    #[test]
    fn usage_lists_every_command() {
        for spec in COMMANDS {
            assert!(
                USAGE.contains(spec.name),
                "USAGE does not mention `{}`",
                spec.name
            );
        }
    }

    #[test]
    fn command_typos_get_a_suggestion() {
        let err = dispatch(&argv(&["chekc"])).unwrap_err();
        assert!(err.contains("unknown command `chekc`"), "{err}");
        assert!(err.contains("did you mean `check`?"), "{err}");
    }

    #[test]
    fn check_rejects_typos_duplicates_and_unknown_formats() {
        let err = dispatch(&argv(&[
            "check",
            "--network",
            "tiny_mlp",
            "--formt",
            "json",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown option --formt"), "{err}");
        assert!(err.contains("did you mean --format"), "{err}");
        let err = dispatch(&argv(&[
            "check",
            "--network",
            "tiny_mlp",
            "--format",
            "text",
            "--format",
            "json",
        ]))
        .unwrap_err();
        assert!(err.contains("--format given more than once"), "{err}");
        let err = dispatch(&argv(&[
            "check",
            "--network",
            "tiny_mlp",
            "--format",
            "jsn",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown format `jsn`"), "{err}");
        assert!(err.contains("did you mean `json`?"), "{err}");
        // Options from other commands are rejected, not ignored.
        let err = dispatch(&argv(&[
            "check",
            "--network",
            "tiny_mlp",
            "--engine",
            "event",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown option --engine"), "{err}");
    }

    #[test]
    fn check_requires_exactly_one_program_source() {
        let err = dispatch(&argv(&["check"])).unwrap_err();
        assert!(err.contains("usage: pimsim check"), "{err}");
        let err = dispatch(&argv(&["check", "prog.json", "--network", "tiny_mlp"])).unwrap_err();
        assert!(err.contains("not both"), "{err}");
    }

    #[test]
    fn check_passes_clean_programs_and_fails_broken_ones() {
        let dir = std::env::temp_dir().join("pimsim-cli-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A clean pair of cores passes.
        let good = dir.join("good.s");
        std::fs::write(
            &good,
            ".core 0\nli r1, 0\nsend core1, [r1+0], 8, tag=1\nhalt\n\
             .core 1\nrecv core0, [r0+0], 8, tag=1\nhalt\n",
        )
        .unwrap();
        dispatch(&argv(&["check", good.to_str().unwrap()])).unwrap();
        // An unmatched recv is an error exit.
        let bad = dir.join("bad.s");
        std::fs::write(&bad, ".core 0\nrecv core1, [r0+0], 8, tag=7\nhalt\n").unwrap();
        let err = dispatch(&argv(&["check", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("static analysis failed"), "{err}");
        // A warning passes by default but fails under --deny-warnings.
        let warn = dir.join("warn.s");
        std::fs::write(&warn, ".core 0\nnop\n").unwrap();
        dispatch(&argv(&["check", warn.to_str().unwrap()])).unwrap();
        let err =
            dispatch(&argv(&["check", warn.to_str().unwrap(), "--deny-warnings"])).unwrap_err();
        assert!(err.contains("denied by --deny-warnings"), "{err}");
        // A compiled zoo network is analysis-clean under --deny-warnings.
        dispatch(&argv(&[
            "check",
            "--network",
            "tiny_cnn",
            "--deny-warnings",
        ]))
        .unwrap();
    }

    #[test]
    fn bound_reports_on_clean_programs_and_fails_unanalyzable_ones() {
        let dir = std::env::temp_dir().join("pimsim-cli-bound-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.s");
        std::fs::write(
            &good,
            ".core 0\nli r1, 0\nsend core1, [r1+0], 8, tag=1\nhalt\n\
             .core 1\nrecv core0, [r0+0], 8, tag=1\nhalt\n",
        )
        .unwrap();
        dispatch(&argv(&["bound", good.to_str().unwrap()])).unwrap();
        dispatch(&argv(&[
            "bound",
            good.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        // Program sources mirror `check`: exactly one of file / --network.
        let err = dispatch(&argv(&["bound"])).unwrap_err();
        assert!(err.contains("usage: pimsim bound"), "{err}");
        let err = dispatch(&argv(&[
            "bound",
            good.to_str().unwrap(),
            "--network",
            "tiny_mlp",
        ]))
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // A compiled zoo network gets a non-trivial bound.
        dispatch(&argv(&["bound", "--network", "tiny_mlp"])).unwrap();
        // A statically broken program has no bound and is an error exit.
        let bad = dir.join("bad.s");
        std::fs::write(&bad, ".core 0\nrecv core1, [r0+0], 8, tag=7\nhalt\n").unwrap();
        let err = dispatch(&argv(&["bound", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no bound computed"), "{err}");
        // `--deny-warnings` belongs to `check`, not `bound`.
        let err = dispatch(&argv(&[
            "bound",
            "--network",
            "tiny_mlp",
            "--deny-warnings",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown option --deny-warnings"), "{err}");
    }

    #[test]
    fn serve_validates_its_options() {
        let err = dispatch(&argv(&["serve"])).unwrap_err();
        assert!(err.contains("missing --networks"), "{err}");
        let err = dispatch(&argv(&[
            "serve",
            "--networks",
            "tiny_mlp",
            "--arrivals",
            "poison",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown arrival process `poison`"), "{err}");
        assert!(err.contains("did you mean `poisson`?"), "{err}");
        let err = dispatch(&argv(&[
            "serve",
            "--networks",
            "tiny_mlp",
            "--batch",
            "4@50us",
        ]))
        .unwrap_err();
        assert!(err.contains("bad batch policy"), "{err}");
        let err = dispatch(&argv(&["serve", "--networks", "tiny_mlp/x"])).unwrap_err();
        assert!(err.contains("bad resolution"), "{err}");
        // An unknown network is caught before any simulation, with a hint.
        let err = dispatch(&argv(&["serve", "--networks", "tiny_mpl"])).unwrap_err();
        assert!(err.contains("unknown network `tiny_mpl`"), "{err}");
        assert!(err.contains("did you mean `tiny_mlp`?"), "{err}");
        // Durations need a unit.
        let err = dispatch(&argv(&[
            "serve",
            "--networks",
            "tiny_mlp",
            "--duration",
            "10",
        ]))
        .unwrap_err();
        assert!(err.contains("--duration"), "{err}");
        // `run`'s flags don't leak into `serve`.
        let err = dispatch(&argv(&["serve", "--networks", "tiny_mlp", "--baseline"])).unwrap_err();
        assert!(err.contains("unknown option --baseline"), "{err}");
    }

    #[test]
    fn serve_runs_end_to_end() {
        let dir = std::env::temp_dir().join("pimsim-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let arch = dir.join("small.json");
        ArchConfig::small_test().to_file(&arch).unwrap();
        let out = dir.join("serve.json");
        dispatch(&argv(&[
            "serve",
            "--networks",
            "tiny_mlp",
            "--config",
            arch.to_str().unwrap(),
            "--rate",
            "100000",
            "--duration",
            "200us",
            "--batch",
            "2/20us",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"p99_latency_ns\""), "{text}");
        assert!(text.contains("\"throughput_rps\""), "{text}");
        assert!(text.contains("\"network\": \"tiny_mlp\""), "{text}");
    }

    /// The CLI reference in docs/cli.md must document every subcommand
    /// section-by-section, and each section's set of `--option` mentions
    /// must equal that subcommand's actual vocabulary — no missing
    /// options, no stale ones.
    #[test]
    fn cli_reference_matches_the_command_table() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/cli.md");
        let text = std::fs::read_to_string(path).expect("docs/cli.md exists");
        for spec in COMMANDS {
            let heading = format!("## pimsim {}", spec.name);
            let start = text
                .find(&heading)
                .unwrap_or_else(|| panic!("docs/cli.md has no `{heading}` section"));
            let body = &text[start + heading.len()..];
            let body = match body.find("\n## ") {
                Some(end) => &body[..end],
                None => body,
            };
            let mut documented = std::collections::BTreeSet::new();
            let mut rest = body;
            while let Some(pos) = rest.find("--") {
                rest = &rest[pos + 2..];
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                    .collect();
                // Skip table rules (`|---|`) and empty matches; keep
                // real option names.
                if !name.is_empty() && !name.starts_with('-') {
                    documented.insert(name);
                }
            }
            let mut expected: std::collections::BTreeSet<String> = spec
                .vocab
                .value_options
                .iter()
                .chain(spec.vocab.flags)
                .map(|s| s.to_string())
                .collect();
            expected.remove("help"); // documented once, in the intro
            assert_eq!(
                documented, expected,
                "docs/cli.md section `{heading}` disagrees with the command's vocabulary"
            );
        }
    }

    #[test]
    fn usage_and_vocabularies_agree() {
        let mut accepted = std::collections::BTreeSet::new();
        for spec in COMMANDS {
            accepted.extend(spec.vocab.value_options.iter().copied());
            accepted.extend(spec.vocab.flags.iter().copied());
        }
        // Everything the help text advertises is accepted somewhere...
        for name in usage_options() {
            if name == "help" {
                continue; // `pimsim --help` is handled before parsing
            }
            assert!(
                accepted.contains(name.as_str()),
                "USAGE advertises --{name} but no command accepts it"
            );
        }
        // ...and everything accepted is documented.
        for name in accepted {
            if name == "help" {
                continue;
            }
            assert!(
                USAGE.contains(&format!("--{name}")),
                "--{name} is accepted but undocumented in USAGE"
            );
        }
    }
}

//! `pimsim` — command-line front end for the PIMSIM-NN framework.
//!
//! ```text
//! pimsim run      --network resnet18 [--size 64] [--mapping performance-first]
//!                 [--rob N] [--batch N] [--config arch.json] [--functional]
//!                 [--baseline] [--json]
//! pimsim compile  --network vgg8 [--size 32] [--mapping ...] [--out prog.json]
//!                 [--asm prog.s]
//! pimsim asm      <file.s> [--out prog.json]
//! pimsim disasm   <prog.json>
//! pimsim networks
//! pimsim config   [--out arch.json]
//! ```

use std::process::ExitCode;

use pimsim_arch::ArchConfig;
use pimsim_baseline::BaselineSimulator;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::Simulator;
use pimsim_isa::{asm, Program};
use pimsim_nn::{zoo, Network};

mod args;
use args::Args;

const USAGE: &str = "usage: pimsim <run|compile|asm|disasm|networks|config> [options]
  run       compile a zoo network and simulate it (add --baseline for the
            MNSIM2.0-like behaviour-level model)
  compile   compile a network and write the program (JSON and/or assembly)
  asm       assemble a .s file into a program JSON
  disasm    print the assembly of a program JSON
  networks  list zoo networks
  config    print (or write) the default architecture configuration

common options:
  --network NAME      zoo network (see `pimsim networks`)
  --size N            input resolution (default 64; vgg8 default 32)
  --config FILE       architecture configuration JSON (default: paper chip)
  --mapping POLICY    performance-first | utilization-first
  --rob N             re-order buffer size override
  --batch N           inferences compiled back to back (default 1)
  --functional        run functionally (data + timing)
  --trace             print the first instruction completions
  --json              machine-readable report
  --out FILE          output path
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "compile" => cmd_compile(&args),
        "asm" => cmd_asm(&args),
        "disasm" => cmd_disasm(&args),
        "networks" => cmd_networks(),
        "config" => cmd_config(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_arch(args: &Args) -> Result<ArchConfig, String> {
    let mut arch = match args.get("config") {
        Some(path) => ArchConfig::from_file(path).map_err(|e| e.to_string())?,
        None => ArchConfig::paper_default(),
    };
    if let Some(rob) = args.get_u32("rob")? {
        arch.resources.rob_size = rob;
    }
    if args.flag("functional") {
        arch.sim.functional = true;
    }
    if args.flag("trace") {
        arch.sim.trace = true;
    }
    arch.validate().map_err(|e| e.to_string())?;
    Ok(arch)
}

fn load_network(args: &Args) -> Result<Network, String> {
    let name = args
        .get("network")
        .ok_or("missing --network (try `pimsim networks`)")?;
    let default_size = if name.starts_with("vgg") { 32 } else { 64 };
    let size = args.get_u32("size")?.unwrap_or(default_size);
    zoo::by_name(name, size).ok_or_else(|| format!("unknown network `{name}`"))
}

fn mapping_policy(args: &Args) -> Result<MappingPolicy, String> {
    match args.get("mapping").unwrap_or("performance-first") {
        "performance-first" => Ok(MappingPolicy::PerformanceFirst),
        "utilization-first" => Ok(MappingPolicy::UtilizationFirst),
        other => Err(format!("unknown mapping policy `{other}`")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let net = load_network(args)?;
    if args.flag("baseline") {
        let report = BaselineSimulator::new(&arch)
            .run(&net)
            .map_err(|e| e.to_string())?;
        if args.flag("json") {
            println!(
                "{{\"simulator\":\"baseline\",\"network\":\"{}\",\"latency_ns\":{},\"energy_pj\":{},\"power_w\":{}}}",
                net.name,
                report.latency.as_ns_f64(),
                report.energy.as_pj(),
                report.avg_power_w()
            );
        } else {
            println!("baseline (MNSIM2.0-like) on {}:", net.name);
            println!("  latency : {}", report.latency);
            println!("  energy  : {}", report.energy);
            println!("  power   : {:.3} W", report.avg_power_w());
            println!("  layers  : {}", report.per_layer.len());
        }
        return Ok(());
    }

    let batch = args.get_u32("batch")?.unwrap_or(1);
    let policy = mapping_policy(args)?;
    let compiled = Compiler::new(&arch)
        .mapping(policy)
        .batch(batch)
        .compile(&net)
        .map_err(|e| e.to_string())?;
    let report = Simulator::new(&arch)
        .run(&compiled.program)
        .map_err(|e| e.to_string())?;
    let per_image = report.latency / batch as u64;
    if args.flag("json") {
        println!(
            "{{\"simulator\":\"cycle-accurate\",\"network\":\"{}\",\"mapping\":\"{}\",\"batch\":{},\"latency_ns\":{},\"latency_per_image_ns\":{},\"energy_pj\":{},\"power_w\":{},\"instructions\":{},\"events\":{}}}",
            net.name,
            policy,
            batch,
            report.latency.as_ns_f64(),
            per_image.as_ns_f64(),
            report.energy.total().as_pj(),
            report.avg_power_w(),
            report.instructions,
            report.events
        );
    } else {
        println!("{} under {policy} (batch {batch}):", net.name);
        println!("  latency        : {}", report.latency);
        if batch > 1 {
            println!("  per image      : {per_image}");
        }
        println!("  energy         : {}", report.energy.total());
        println!(
            "    matrix {} / vector {} / transfer {} / static {}",
            report.energy.matrix,
            report.energy.vector,
            report.energy.transfer,
            report.energy.static_energy
        );
        println!("  power          : {:.3} W", report.avg_power_w());
        println!(
            "  instructions   : {} (matrix {}, vector {}, transfer {}, scalar {})",
            report.instructions,
            report.class_counts[0],
            report.class_counts[1],
            report.class_counts[2],
            report.class_counts[3]
        );
        println!("  kernel events  : {}", report.events);
        println!("  cores w/ work  : {}", compiled.placement.cores_used);
        if arch.sim.functional {
            let out = report.read_global(compiled.output.gaddr, compiled.output.elems.min(8));
            println!("  output head    : {out:?}");
        }
        if arch.sim.trace {
            println!("  trace (first 20 of {}):", report.trace.len());
            for t in report.trace.iter().take(20) {
                println!(
                    "    {:>12}  core{:<3} {}",
                    format!("{}", t.time),
                    t.core,
                    t.instr
                );
            }
        }
    }
    Ok(())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    let arch = load_arch(args)?;
    let net = load_network(args)?;
    let policy = mapping_policy(args)?;
    let batch = args.get_u32("batch")?.unwrap_or(1);
    let compiled = Compiler::new(&arch)
        .mapping(policy)
        .batch(batch)
        .compile(&net)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "compiled {}: {} instructions over {} cores",
        net.name,
        compiled.program.total_instructions(),
        compiled.placement.cores_used
    );
    if let Some(path) = args.get("out") {
        std::fs::write(path, compiled.program.to_json()).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("asm") {
        std::fs::write(path, asm::disassemble(&compiled.program)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if args.get("out").is_none() && args.get("asm").is_none() {
        print!("{}", asm::disassemble(&compiled.program));
    }
    Ok(())
}

fn cmd_asm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: pimsim asm <file.s> [--out prog.json]")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let program = asm::assemble(&text).map_err(|e| e.to_string())?;
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, program.to_json()).map_err(|e| e.to_string())?;
            eprintln!("wrote {out}");
        }
        None => print!("{}", program.to_json()),
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: pimsim disasm <prog.json>")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let program = Program::from_json(&text).map_err(|e| e.to_string())?;
    print!("{}", asm::disassemble(&program));
    Ok(())
}

fn cmd_networks() -> Result<(), String> {
    for name in zoo::NAMES {
        let default = if name.starts_with("vgg") { 32 } else { 64 };
        if let Some(net) = zoo::by_name(name, default) {
            println!(
                "{name:11} {:3} layers, {:5.2} GMACs @ {default}x{default}",
                net.nodes.len(),
                net.total_macs() as f64 / 1e9
            );
        }
    }
    Ok(())
}

fn cmd_config(args: &Args) -> Result<(), String> {
    let cfg = ArchConfig::paper_default();
    match args.get("out") {
        Some(path) => {
            cfg.to_file(path).map_err(|e| e.to_string())?;
            eprintln!("wrote {path}");
        }
        None => println!("{}", cfg.to_json()),
    }
    Ok(())
}

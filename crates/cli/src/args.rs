//! Minimal `--key value` / `--key=value` / `--flag` argument parsing (no
//! external deps), strict about the option vocabulary: unknown options are
//! rejected with a "did you mean" suggestion instead of being silently
//! absorbed as flags.

use std::collections::BTreeMap;

/// Parsed command-line arguments: `--key value` options, `--flag` booleans
/// and positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    /// Arguments without a leading `--`.
    pub positional: Vec<String>,
}

/// One subcommand's option vocabulary: which `--name`s take a value and
/// which are boolean flags. Anything else starting with `--` is an error,
/// so a typo — or another subcommand's option (`sweep --rob` instead of
/// `sweep --robs`) — is caught instead of being silently absorbed.
#[derive(Debug, Clone, Copy)]
pub struct Vocabulary {
    /// Option names that take a value.
    pub value_options: &'static [&'static str],
    /// Boolean flag names.
    pub flags: &'static [&'static str],
    /// How many positional (non-`--`) arguments the command accepts;
    /// extras are an error rather than being silently dropped.
    pub max_positionals: usize,
}

/// Edit distance with unit costs, for "did you mean" suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row.push(subst.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate, if any is close enough to be a plausible typo.
/// Used for option names and for closed option-value sets alike.
pub fn closest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .into_iter()
        .map(|known| (edit_distance(name, known), known))
        .min()
        .filter(|(d, known)| *d <= 2.max(known.len() / 3))
        .map(|(_, known)| known)
}

/// The closest name in `vocab`, if any is close enough to be a plausible
/// typo.
fn suggestion(name: &str, vocab: &Vocabulary) -> Option<&'static str> {
    closest(name, vocab.value_options.iter().chain(vocab.flags).copied())
}

impl Args {
    /// Parses raw arguments against one subcommand's vocabulary.
    ///
    /// # Errors
    ///
    /// Returns a message when an option is not in the vocabulary (with a
    /// "did you mean" hint), when a value option is missing its value, or
    /// when a value option is given twice.
    pub fn parse(argv: &[String], vocab: &Vocabulary) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(body) = a.strip_prefix("--") else {
                if args.positional.len() >= vocab.max_positionals {
                    return Err(format!(
                        "unexpected argument `{a}` (this command takes {} positional argument{})",
                        vocab.max_positionals,
                        if vocab.max_positionals == 1 { "" } else { "s" }
                    ));
                }
                args.positional.push(a.clone());
                continue;
            };
            let (name, inline_value) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (body, None),
            };
            if vocab.value_options.contains(&name) {
                let v = match inline_value {
                    Some(v) => v.to_string(),
                    None => it
                        .next()
                        .ok_or_else(|| format!("option --{name} needs a value"))?
                        .clone(),
                };
                if args.options.insert(name.to_string(), v).is_some() {
                    return Err(format!("option --{name} given more than once"));
                }
            } else if vocab.flags.contains(&name) {
                if inline_value.is_some() {
                    return Err(format!("--{name} is a flag and takes no value"));
                }
                args.flags.push(name.to_string());
            } else {
                let hint = match suggestion(name, vocab) {
                    Some(s) => format!(" (did you mean --{s}?)"),
                    None => String::new(),
                };
                return Err(format!("unknown option --{name}{hint}"));
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `u32`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a number.
    pub fn get_u32(&self, name: &str) -> Result<Option<u32>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// The value of `--name` parsed as `u64`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a number.
    pub fn get_u64(&self, name: &str) -> Result<Option<u64>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// The value of `--name` parsed as `f64`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a number.
    pub fn get_f64(&self, name: &str) -> Result<Option<f64>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// The value of `--name` as a comma-separated list of `f64`.
    ///
    /// # Errors
    ///
    /// Returns a message when any item is not a number.
    pub fn get_f64_csv(&self, name: &str) -> Result<Option<Vec<f64>>, String> {
        match self.get_csv(name) {
            None => Ok(None),
            Some(items) => items
                .iter()
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("--{name} expects numbers, got `{v}`"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some),
        }
    }

    /// The value of `--name` split on commas (empty items dropped).
    pub fn get_csv(&self, name: &str) -> Option<Vec<String>> {
        self.get(name).map(|v| {
            v.split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    /// The value of `--name` as a comma-separated list of `u32`.
    ///
    /// # Errors
    ///
    /// Returns a message when any item is not a number.
    pub fn get_u32_csv(&self, name: &str) -> Result<Option<Vec<u32>>, String> {
        match self.get_csv(name) {
            None => Ok(None),
            Some(items) => items
                .iter()
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("--{name} expects numbers, got `{v}`"))
                })
                .collect::<Result<Vec<u32>, String>>()
                .map(Some),
        }
    }

    /// `true` if `--name` was given as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A run-like vocabulary plus the sweep CSV axes, for the helpers.
    const VOCAB: Vocabulary = Vocabulary {
        value_options: &["network", "rob", "batch", "networks", "robs", "batches"],
        flags: &["json", "baseline"],
        max_positionals: 1,
    };

    fn parse(parts: &[&str]) -> Args {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Args::parse(&v, &VOCAB).unwrap()
    }

    fn parse_err(parts: &[&str]) -> String {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Args::parse(&v, &VOCAB).unwrap_err()
    }

    #[test]
    fn options_flags_positionals() {
        let a = parse(&["--network", "vgg8", "--json", "file.s", "--rob", "8"]);
        assert_eq!(a.get("network"), Some("vgg8"));
        assert!(a.flag("json"));
        assert!(!a.flag("baseline"));
        assert_eq!(a.positional, vec!["file.s"]);
        assert_eq!(a.get_u32("rob").unwrap(), Some(8));
        assert_eq!(a.get_u32("batch").unwrap(), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let v = vec!["--network".to_string()];
        assert!(Args::parse(&v, &VOCAB).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["--rob", "eight"]);
        assert!(a.get_u32("rob").is_err());
    }

    #[test]
    fn unknown_option_is_rejected_with_suggestion() {
        // Regression: `--netwrok vgg8` used to silently become a flag
        // plus a positional argument.
        let msg = parse_err(&["--netwrok", "vgg8"]);
        assert!(msg.contains("unknown option --netwrok"), "{msg}");
        assert!(msg.contains("did you mean --network"), "{msg}");
        let msg = parse_err(&["--jsno"]);
        assert!(msg.contains("did you mean --json"), "{msg}");
        // Nothing close: no suggestion offered.
        let msg = parse_err(&["--frobnicate"]);
        assert!(msg.contains("unknown option --frobnicate"), "{msg}");
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn other_subcommands_options_are_rejected() {
        // `sweep --rob 4` must not parse against a sweep vocabulary that
        // only knows --robs: the near-miss singular form is suggested.
        const SWEEP_ONLY: Vocabulary = Vocabulary {
            value_options: &["networks", "robs"],
            flags: &["json"],
            max_positionals: 0,
        };
        let v: Vec<String> = ["--rob", "4"].iter().map(|s| s.to_string()).collect();
        let msg = Args::parse(&v, &SWEEP_ONLY).unwrap_err();
        assert!(msg.contains("unknown option --rob"), "{msg}");
        assert!(msg.contains("did you mean --robs"), "{msg}");
    }

    #[test]
    fn stray_positionals_are_rejected() {
        // `sweep --networks vgg8 results.json` (forgotten --out) must not
        // silently drop the filename.
        const NO_POSITIONALS: Vocabulary = Vocabulary {
            value_options: &["networks"],
            flags: &[],
            max_positionals: 0,
        };
        let v: Vec<String> = ["--networks", "vgg8", "results.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let msg = Args::parse(&v, &NO_POSITIONALS).unwrap_err();
        assert!(msg.contains("unexpected argument `results.json`"), "{msg}");
        // Within the allowed count, positionals still work.
        let a = parse(&["file.s", "--rob", "2"]);
        assert_eq!(a.positional, vec!["file.s"]);
        let msg = parse_err(&["file.s", "extra.s"]);
        assert!(msg.contains("unexpected argument `extra.s`"), "{msg}");
    }

    #[test]
    fn key_equals_value_form() {
        let a = parse(&["--network=vgg8", "--rob=16"]);
        assert_eq!(a.get("network"), Some("vgg8"));
        assert_eq!(a.get_u32("rob").unwrap(), Some(16));
        assert!(parse_err(&["--json=yes"]).contains("takes no value"));
    }

    #[test]
    fn duplicate_value_option_is_an_error() {
        let msg = parse_err(&["--network", "vgg8", "--network", "lenet"]);
        assert!(msg.contains("more than once"), "{msg}");
    }

    #[test]
    fn csv_helpers() {
        let a = parse(&["--networks", "vgg8,lenet", "--robs", "1,4,8"]);
        assert_eq!(
            a.get_csv("networks").unwrap(),
            vec!["vgg8".to_string(), "lenet".to_string()]
        );
        assert_eq!(a.get_u32_csv("robs").unwrap().unwrap(), vec![1, 4, 8]);
        assert_eq!(a.get_u32_csv("batches").unwrap(), None);
        let a = parse(&["--robs", "1,x"]);
        assert!(a.get_u32_csv("robs").is_err());
    }

    #[test]
    fn numeric_helpers() {
        let a = parse(&["--rob", "1e5", "--batch", "9007199254740993"]);
        assert_eq!(a.get_f64("rob").unwrap(), Some(1e5));
        assert_eq!(a.get_u64("batch").unwrap(), Some(9007199254740993));
        assert_eq!(a.get_f64("network").unwrap(), None);
        assert_eq!(a.get_u64("network").unwrap(), None);
        let a = parse(&["--rob", "fast", "--robs", "1.5,x"]);
        assert!(a.get_f64("rob").is_err());
        assert!(a.get_u64("rob").is_err());
        assert!(a.get_f64_csv("robs").is_err());
        let a = parse(&["--robs", "0.5,2e4"]);
        assert_eq!(a.get_f64_csv("robs").unwrap().unwrap(), vec![0.5, 2e4]);
    }
}

//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::BTreeMap;

/// Parsed command-line arguments: `--key value` options, `--flag` booleans
/// and positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    /// Arguments without a leading `--`.
    pub positional: Vec<String>,
}

/// Option names that take a value; everything else with `--` is a flag.
const VALUE_OPTIONS: &[&str] = &[
    "network", "size", "config", "mapping", "rob", "batch", "out", "asm",
];

impl Args {
    /// Parses raw arguments.
    ///
    /// # Errors
    ///
    /// Returns a message when a value option is missing its value.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if VALUE_OPTIONS.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("option --{name} needs a value"))?;
                    args.options.insert(name.to_string(), v.clone());
                } else {
                    args.flags.push(name.to_string());
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// The value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `u32`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a number.
    pub fn get_u32(&self, name: &str) -> Result<Option<u32>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// `true` if `--name` was given as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn options_flags_positionals() {
        let a = parse(&["--network", "vgg8", "--json", "file.s", "--rob", "8"]);
        assert_eq!(a.get("network"), Some("vgg8"));
        assert!(a.flag("json"));
        assert!(!a.flag("baseline"));
        assert_eq!(a.positional, vec!["file.s"]);
        assert_eq!(a.get_u32("rob").unwrap(), Some(8));
        assert_eq!(a.get_u32("batch").unwrap(), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let v = vec!["--network".to_string()];
        assert!(Args::parse(&v).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["--rob", "eight"]);
        assert!(a.get_u32("rob").is_err());
    }
}

//! The serving determinism contract, end to end: for a fixed seed the
//! rendered report is byte-identical at any warm-pool thread count, and
//! the accounting invariant holds whatever the traffic shape.

use proptest::prelude::*;

use pimsim_arch::ArchConfig;
use pimsim_event::SimTime;
use pimsim_serve::{serve, ArrivalProcess, BatchPolicy, ServeConfig};

fn small_config() -> ServeConfig {
    let mut config = ServeConfig::new(vec![("tiny_mlp".to_string(), 64)]);
    config.arch = ArchConfig::small_test();
    config.duration = SimTime::from_us(200);
    config.rate_rps = 100_000.0;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, any thread count: the JSON is byte-identical — the
    /// CI determinism gate in test form.
    #[test]
    fn report_is_byte_identical_at_any_thread_count(
        seed in 0u64..1_000,
        threads in 1usize..8,
    ) {
        let mut config = small_config();
        config.seed = seed;
        let reference = serve(&config, 1).unwrap().to_json();
        let parallel = serve(&config, threads).unwrap().to_json();
        prop_assert_eq!(reference, parallel);
    }

    /// Every generated request is finished, dropped, or left in queue —
    /// none invented, none lost — across arrival processes, queue caps,
    /// batch policies, and drain modes.
    #[test]
    fn accounting_invariant_holds_for_any_traffic_shape(
        seed in 0u64..10_000,
        arrivals_idx in 0usize..ArrivalProcess::ALL.len(),
        rate in 20_000.0f64..400_000.0,
        queue_cap in 1u64..32,
        batch_max in 1u32..6,
        drain in any::<bool>(),
    ) {
        let mut config = small_config();
        config.seed = seed;
        config.arrivals = ArrivalProcess::ALL[arrivals_idx];
        config.rate_rps = rate;
        config.queue_cap = queue_cap;
        config.batch = BatchPolicy { max_size: batch_max, timeout: SimTime::from_us(20) };
        config.drain = drain;
        let report = serve(&config, 2).unwrap();
        prop_assert_eq!(
            report.generated,
            report.finished + report.dropped + report.in_queue
        );
        for net in &report.per_network {
            prop_assert_eq!(
                net.generated,
                net.finished + net.dropped + net.in_queue
            );
        }
        if drain {
            prop_assert_eq!(report.in_queue, 0);
        }
        prop_assert!(report.max_queue_depth <= queue_cap);
    }
}

/// A pinned regression for the tail-latency pipeline on a small zoo
/// network: seeds, rates and policies are fixed, so these exact numbers
/// must reproduce forever. If an intentional change to the arrival
/// generators, the queueing engine, or the percentile maths shifts them,
/// re-pin deliberately.
#[test]
fn tail_latency_is_pinned() {
    let config = small_config();
    let report = serve(&config, 2).unwrap();
    let net = &report.per_network[0];
    // The ordering invariants first, so a failure reads meaningfully.
    assert!(net.p50_latency_ns <= net.p95_latency_ns);
    assert!(net.p95_latency_ns <= net.p99_latency_ns);
    assert!(net.p99_latency_ns <= net.max_latency_ns);
    assert!(net.service_latency_ns <= net.p50_latency_ns);
    // The pinned values.
    let pinned = format!(
        "{} {} {} {:.3} {:.3} {:.3}",
        report.generated,
        report.finished,
        report.dropped,
        net.p50_latency_ns,
        net.p95_latency_ns,
        net.p99_latency_ns,
    );
    let rerun = serve(&config, 4).unwrap();
    let net2 = &rerun.per_network[0];
    assert_eq!(
        pinned,
        format!(
            "{} {} {} {:.3} {:.3} {:.3}",
            rerun.generated,
            rerun.finished,
            rerun.dropped,
            net2.p50_latency_ns,
            net2.p95_latency_ns,
            net2.p99_latency_ns,
        )
    );
    insta_pin(&pinned);
}

/// Asserts against the literal pinned string (kept out of the test body
/// so the value is easy to find and update).
fn insta_pin(actual: &str) {
    const PINNED: &str = "15 15 0 17811.699 54247.620 54247.620";
    assert_eq!(actual, PINNED, "pinned serving tail-latency regression");
}

//! Deterministic open-loop request streams.
//!
//! Each served network draws inter-arrival times from its own seeded
//! substream, so adding a network to the workload never perturbs the
//! arrival times of the others, and the merged stream is a pure function
//! of `(networks, process, rate, seed, duration)` — the foundation of the
//! serving layer's byte-identical-at-any-thread-count contract.

use rand::{rngs::StdRng, Rng, SeedableRng};

use pimsim_event::SimTime;

use crate::config::{ArrivalProcess, ServeConfig};
use crate::ServeError;

/// One inference request in the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Position in the merged stream (ids are dense and arrival-ordered).
    pub id: u64,
    /// Index into [`ServeConfig::networks`] of the requested network.
    pub net: usize,
    /// When the request arrives at the front-end.
    pub arrival: SimTime,
}

/// Hard cap on the generated stream, so an over-enthusiastic
/// rate×duration product fails fast instead of exhausting memory.
const MAX_REQUESTS: usize = 4_000_000;

/// Mixes the run seed with a network index into an independent substream
/// seed (SplitMix64's golden-ratio increment keeps nearby indices far
/// apart in seed space).
fn substream_seed(seed: u64, net: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(net as u64 + 1)
}

/// One exponential inter-arrival draw for a Poisson process at `rate`
/// events per second, as simulated time (inverse-CDF transform).
fn exponential(rng: &mut StdRng, rate: f64) -> SimTime {
    let u: f64 = rng.gen_range(0.0..1.0);
    SimTime::from_ns_f64(-(1.0 - u).ln() / rate * 1e9)
}

/// Generates the full request stream for `config`, merged across networks
/// and ordered by `(arrival, network index)`, with dense arrival-ordered
/// ids.
///
/// # Errors
///
/// Returns [`ServeError::Config`] when the rate×duration product would
/// exceed the 4-million-request safety cap.
pub fn generate_requests(config: &ServeConfig) -> Result<Vec<Request>, ServeError> {
    let nets = config.networks.len();
    let per_net_rate = config.rate_rps / nets as f64;
    let mut merged: Vec<Request> = Vec::new();
    for net in 0..nets {
        let mut rng = StdRng::seed_from_u64(substream_seed(config.seed, net));
        let arrivals = match config.arrivals {
            ArrivalProcess::Poisson => poisson(&mut rng, per_net_rate, config.duration),
            ArrivalProcess::Fixed => fixed(&mut rng, per_net_rate, config.duration),
            ArrivalProcess::Bursty => bursty(
                &mut rng,
                per_net_rate,
                config.duration,
                config.burst_on,
                config.burst_off,
            ),
        };
        if merged.len() + arrivals.len() > MAX_REQUESTS {
            return Err(ServeError::Config(format!(
                "workload exceeds {MAX_REQUESTS} requests; lower the rate or duration"
            )));
        }
        merged.extend(arrivals.into_iter().map(|arrival| Request {
            id: 0, // assigned after the merge
            net,
            arrival,
        }));
    }
    // Per-network streams are already time-ordered; the merge orders by
    // arrival and breaks ties by network index (sort_by is stable, and
    // within one network generation order is time order).
    merged.sort_by_key(|r| (r.arrival, r.net));
    for (id, request) in merged.iter_mut().enumerate() {
        request.id = id as u64;
    }
    Ok(merged)
}

/// Poisson process: i.i.d. exponential inter-arrival times.
fn poisson(rng: &mut StdRng, rate: f64, duration: SimTime) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += exponential(rng, rate);
        if t >= duration || out.len() >= MAX_REQUESTS {
            return out;
        }
        out.push(t);
    }
}

/// Fixed-rate trace: arrivals exactly one period apart; the only
/// randomness is a per-substream phase offset in `[0, period)` so that
/// multiple networks don't all arrive on the same instant.
fn fixed(rng: &mut StdRng, rate: f64, duration: SimTime) -> Vec<SimTime> {
    let period_ns = 1e9 / rate;
    let phase: f64 = rng.gen_range(0.0..1.0);
    let mut out = Vec::new();
    for k in 0..MAX_REQUESTS {
        let t = SimTime::from_ns_f64((phase + k as f64) * period_ns);
        if t >= duration {
            return out;
        }
        out.push(t);
    }
    out
}

/// Bursty on/off traffic: a deterministic square wave of `on`/`off`
/// windows; `on` windows carry Poisson traffic boosted so the long-run
/// average still matches `rate`, `off` windows are silent.
fn bursty(
    rng: &mut StdRng,
    rate: f64,
    duration: SimTime,
    on: SimTime,
    off: SimTime,
) -> Vec<SimTime> {
    let period = on + off;
    let boosted = rate * period.as_secs_f64() / on.as_secs_f64();
    let mut out = Vec::new();
    let mut window_start = SimTime::ZERO;
    while window_start < duration && out.len() < MAX_REQUESTS {
        let window_end = (window_start + on).min(duration);
        let mut t = window_start;
        loop {
            t += exponential(rng, boosted);
            if t >= window_end || out.len() >= MAX_REQUESTS {
                break;
            }
            out.push(t);
        }
        window_start += period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(arrivals: ArrivalProcess) -> ServeConfig {
        let mut c = ServeConfig::new(vec![
            ("tiny_mlp".to_string(), 64),
            ("tiny_cnn".to_string(), 64),
        ]);
        c.arrivals = arrivals;
        c.rate_rps = 100_000.0;
        c.duration = SimTime::from_ms(2);
        c
    }

    #[test]
    fn streams_are_seed_deterministic() {
        for arrivals in ArrivalProcess::ALL {
            let c = config(arrivals);
            let a = generate_requests(&c).unwrap();
            let b = generate_requests(&c).unwrap();
            assert_eq!(a, b, "{arrivals} stream must reproduce for equal seeds");
            let mut other = c.clone();
            other.seed = c.seed + 1;
            if arrivals != ArrivalProcess::Fixed {
                assert_ne!(
                    generate_requests(&other).unwrap(),
                    a,
                    "{arrivals} stream should move with the seed"
                );
            }
        }
    }

    #[test]
    fn streams_are_ordered_with_dense_ids() {
        for arrivals in ArrivalProcess::ALL {
            let reqs = generate_requests(&config(arrivals)).unwrap();
            assert!(!reqs.is_empty());
            for (i, pair) in reqs.windows(2).enumerate() {
                assert!(
                    (pair[0].arrival, pair[0].net) <= (pair[1].arrival, pair[1].net),
                    "{arrivals}: out of order at {i}"
                );
            }
            for (i, r) in reqs.iter().enumerate() {
                assert_eq!(r.id, i as u64);
                assert!(r.arrival < SimTime::from_ms(2));
                assert!(r.net < 2);
            }
        }
    }

    #[test]
    fn rates_land_near_the_request_budget() {
        // 100k req/s over 2 ms ≈ 200 requests; Poisson and bursty wander,
        // fixed is exact up to the phase offset.
        for arrivals in ArrivalProcess::ALL {
            let n = generate_requests(&config(arrivals)).unwrap().len() as f64;
            assert!(
                (120.0..=280.0).contains(&n),
                "{arrivals}: got {n} requests, expected ≈200"
            );
        }
    }

    #[test]
    fn adding_a_network_preserves_other_substreams() {
        let one = {
            let mut c = config(ArrivalProcess::Poisson);
            c.networks.truncate(1);
            c.rate_rps = 50_000.0; // same 50k per-network share as the pair
            generate_requests(&c).unwrap()
        };
        let two = generate_requests(&config(ArrivalProcess::Poisson)).unwrap();
        let net0: Vec<SimTime> = two
            .iter()
            .filter(|r| r.net == 0)
            .map(|r| r.arrival)
            .collect();
        let solo: Vec<SimTime> = one.iter().map(|r| r.arrival).collect();
        assert_eq!(net0, solo);
    }

    #[test]
    fn runaway_workloads_are_rejected() {
        let mut c = config(ArrivalProcess::Fixed);
        c.rate_rps = 1e12;
        assert!(matches!(generate_requests(&c), Err(ServeError::Config(_))));
    }

    #[test]
    fn bursty_off_windows_are_silent() {
        let mut c = config(ArrivalProcess::Bursty);
        c.burst_on = SimTime::from_us(200);
        c.burst_off = SimTime::from_us(300);
        for r in generate_requests(&c).unwrap() {
            let phase = r.arrival.as_ps() % SimTime::from_us(500).as_ps();
            assert!(
                phase < SimTime::from_us(200).as_ps(),
                "arrival {} falls in an off window",
                r.arrival
            );
        }
    }
}

//! The queueing/batching front-end and dispatcher.
//!
//! A single-threaded virtual-time simulation: arrivals, batch-timeout
//! wake-ups, and instance completions pop off one event heap ordered by
//! `(time, sequence number)`, so the outcome is a pure function of the
//! request stream and the service model — no wall-clock, no threads, no
//! nondeterminism.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pimsim_event::SimTime;

use crate::config::ServeConfig;
use crate::service::ServiceModel;
use crate::workload::Request;

/// What the queueing simulation hands to the report builder.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SimOutcome {
    /// Requests completed, per network.
    pub finished: Vec<u64>,
    /// Requests dropped at the full queue, per network.
    pub dropped: Vec<u64>,
    /// Requests still queued when the simulation stopped, per network
    /// (always zero in drain mode).
    pub in_queue: Vec<u64>,
    /// Batches dispatched, per network.
    pub batches: Vec<u64>,
    /// Per-network request latencies (completion − arrival), picoseconds,
    /// in dispatch order.
    pub latencies_ps: Vec<Vec<u64>>,
    /// Total service energy across all dispatched batches, picojoules.
    pub energy_pj: f64,
    /// When the last dispatched batch completes (at least the arrival
    /// horizon, even on an idle run).
    pub makespan: SimTime,
    /// `(time, queued total)` after every event, deduplicated per instant.
    pub depth_samples: Vec<(SimTime, u64)>,
    /// The deepest the queue ever got.
    pub max_depth: u64,
}

/// Heap entry: `seq` is unique per event, so ordering is total and the
/// pop order never depends on how ties would compare `kind`s.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// A request (by index into the stream) reaches the front-end.
    Arrival(usize),
    /// A batch-timeout wake-up for a queue head; stale once that head
    /// has been dispatched.
    Flush,
    /// An instance finishes its batch and becomes free.
    Free,
}

/// Plays `requests` through the bounded queueing front-end and the
/// batching dispatcher, using `model` for per-batch service times.
pub(crate) fn simulate(
    config: &ServeConfig,
    requests: &[Request],
    model: &ServiceModel,
) -> SimOutcome {
    let nets = config.networks.len();
    let timeout = config.batch.timeout;
    let batch_max = config.batch.max_size;

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::with_capacity(requests.len() * 2);
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<Reverse<Ev>>, time: SimTime, kind: EvKind| {
        heap.push(Reverse(Ev { time, seq, kind }));
        seq += 1;
    };
    for (i, r) in requests.iter().enumerate() {
        push(&mut heap, r.arrival, EvKind::Arrival(i));
    }

    // Per-network FIFO of admitted requests: (request id, arrival time).
    let mut queues: Vec<VecDeque<(u64, SimTime)>> = vec![VecDeque::new(); nets];
    let mut queued_total = 0u64;
    let mut free = config.instances;
    let mut arrivals_left = requests.len();

    let mut out = SimOutcome {
        finished: vec![0; nets],
        dropped: vec![0; nets],
        in_queue: vec![0; nets],
        batches: vec![0; nets],
        latencies_ps: vec![Vec::new(); nets],
        energy_pj: 0.0,
        makespan: config.duration,
        depth_samples: Vec::new(),
        max_depth: 0,
    };

    while let Some(Reverse(ev)) = heap.pop() {
        let now = ev.time;
        match ev.kind {
            EvKind::Arrival(i) => {
                arrivals_left -= 1;
                let r = &requests[i];
                if queued_total >= config.queue_cap {
                    out.dropped[r.net] += 1;
                } else {
                    queues[r.net].push_back((r.id, r.arrival));
                    queued_total += 1;
                    if queues[r.net].len() == 1 {
                        // This request is its queue's head: wake the
                        // dispatcher when its patience runs out.
                        push(&mut heap, now + timeout, EvKind::Flush);
                    }
                }
            }
            // Flush and Free carry no payload: ripeness is recomputed
            // from queue state below, so stale wake-ups are harmless.
            EvKind::Flush => {}
            EvKind::Free => free += 1,
        }

        // Dispatch as long as instances are free and some queue is ripe.
        // In drain mode every non-empty queue is ripe once arrivals end;
        // without drain, dispatching stops at the horizon.
        let drain_active = config.drain && arrivals_left == 0;
        let horizon_closed = !config.drain && now >= config.duration;
        while free > 0 && !horizon_closed {
            let mut best: Option<(SimTime, usize)> = None;
            for (net, queue) in queues.iter().enumerate() {
                let Some(&(_, head_arrival)) = queue.front() else {
                    continue;
                };
                let ripe = queue.len() as u32 >= batch_max
                    || now >= head_arrival + timeout
                    || drain_active;
                if ripe && best.is_none_or(|(t, _)| head_arrival < t) {
                    best = Some((head_arrival, net));
                }
            }
            let Some((_, net)) = best else { break };
            let k = (queues[net].len() as u32).min(batch_max);
            let point = model.get(net, k);
            let completion = now + point.latency;
            for _ in 0..k {
                let (_, arrival) = queues[net].pop_front().expect("batch under-filled");
                out.latencies_ps[net].push((completion - arrival).as_ps());
                out.finished[net] += 1;
                queued_total -= 1;
            }
            out.batches[net] += 1;
            out.energy_pj += point.energy_pj;
            out.makespan = out.makespan.max(completion);
            free -= 1;
            push(&mut heap, completion, EvKind::Free);
            if let Some(&(_, head_arrival)) = queues[net].front() {
                // The new head inherits no wake-up; give it one (clamped
                // to now when its patience already ran out).
                push(&mut heap, (head_arrival + timeout).max(now), EvKind::Flush);
            }
        }

        out.max_depth = out.max_depth.max(queued_total);
        match out.depth_samples.last_mut() {
            Some(last) if last.0 == now => last.1 = queued_total,
            _ => out.depth_samples.push((now, queued_total)),
        }
    }

    for (net, queue) in queues.iter().enumerate() {
        out.in_queue[net] = queue.len() as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchPolicy;
    use crate::workload::generate_requests;
    use pimsim_arch::ArchConfig;

    fn tiny_config() -> ServeConfig {
        let mut c = ServeConfig::new(vec![
            ("tiny_mlp".to_string(), 64),
            ("tiny_cnn".to_string(), 64),
        ]);
        c.arch = ArchConfig::small_test();
        c.rate_rps = 200_000.0;
        c.duration = SimTime::from_us(500);
        c.batch = BatchPolicy {
            max_size: 2,
            timeout: SimTime::from_us(20),
        };
        c
    }

    fn run(c: &ServeConfig) -> (Vec<Request>, SimOutcome) {
        let model = ServiceModel::warm(c, 2).unwrap();
        let requests = generate_requests(c).unwrap();
        let outcome = simulate(c, &requests, &model);
        (requests, outcome)
    }

    fn totals(outcome: &SimOutcome) -> (u64, u64, u64) {
        (
            outcome.finished.iter().sum(),
            outcome.dropped.iter().sum(),
            outcome.in_queue.iter().sum(),
        )
    }

    #[test]
    fn every_request_is_accounted_for() {
        let c = tiny_config();
        let (requests, outcome) = run(&c);
        let (finished, dropped, in_queue) = totals(&outcome);
        assert_eq!(finished + dropped + in_queue, requests.len() as u64);
        assert_eq!(in_queue, 0, "drain mode must empty the queues");
        assert!(finished > 0);
        assert!(outcome.makespan >= c.duration);
        assert!(outcome.energy_pj > 0.0);
    }

    #[test]
    fn no_drain_leaves_the_horizon_tail_queued() {
        let mut c = tiny_config();
        c.drain = false;
        // Swamp a single slow instance so the queue is non-empty at the
        // horizon.
        c.rate_rps = 2_000_000.0;
        c.queue_cap = 1_000_000;
        let (requests, outcome) = run(&c);
        let (finished, dropped, in_queue) = totals(&outcome);
        assert_eq!(finished + dropped + in_queue, requests.len() as u64);
        assert!(
            in_queue > 0,
            "an overloaded no-drain run should strand requests"
        );
        assert_eq!(outcome.makespan, c.duration.max(outcome.makespan));
    }

    #[test]
    fn a_tiny_queue_cap_drops_bursts() {
        let mut c = tiny_config();
        c.queue_cap = 1;
        c.rate_rps = 2_000_000.0;
        let (requests, outcome) = run(&c);
        let (finished, dropped, in_queue) = totals(&outcome);
        assert_eq!(finished + dropped + in_queue, requests.len() as u64);
        assert!(dropped > 0, "cap 1 under overload must drop");
        assert!(outcome.max_depth <= 1);
    }

    #[test]
    fn batches_respect_the_size_cap_and_count_requests() {
        let c = tiny_config();
        let (_, outcome) = run(&c);
        for net in 0..2 {
            assert!(outcome.batches[net] * 2 >= outcome.finished[net]);
            assert!(outcome.batches[net] <= outcome.finished[net]);
            assert_eq!(
                outcome.latencies_ps[net].len() as u64,
                outcome.finished[net]
            );
            for &l in &outcome.latencies_ps[net] {
                assert!(l > 0, "a served request takes positive time");
            }
        }
    }

    #[test]
    fn more_instances_never_hurt_the_tail() {
        let c1 = tiny_config();
        let mut c4 = tiny_config();
        c4.instances = 4;
        let (_, one) = run(&c1);
        let (_, four) = run(&c4);
        let worst = |o: &SimOutcome| o.latencies_ps.iter().flatten().copied().max().unwrap_or(0);
        assert!(worst(&four) <= worst(&one));
        assert!(four.makespan <= one.makespan);
    }

    #[test]
    fn outcome_reproduces_exactly() {
        let c = tiny_config();
        let (_, a) = run(&c);
        let (_, b) = run(&c);
        assert_eq!(a, b);
    }
}

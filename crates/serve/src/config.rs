//! Serving-run configuration: arrival processes, batching policies, and
//! the knobs of the queueing front-end.

use std::fmt;

use pimsim_compiler::MappingPolicy;
use pimsim_core::EngineKind;
use pimsim_event::SimTime;

use pimsim_arch::ArchConfig;

use crate::ServeError;

/// How request arrivals are generated over simulated time.
///
/// Every process is **deterministic given the seed**: the same
/// `(process, rate, seed, duration)` always produces the same request
/// stream, byte for byte, whatever thread count evaluates it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless traffic: exponential inter-arrival times with mean
    /// `1/rate` (a Poisson process), the standard open-loop model.
    Poisson,
    /// A fixed-rate trace: inter-arrival times of exactly `1/rate`
    /// (rounded to the picosecond grid), no randomness beyond the seed's
    /// per-network phase offset.
    Fixed,
    /// On/off bursts: a deterministic square wave alternating `on`/`off`
    /// windows ([`ServeConfig::burst_on`] / [`ServeConfig::burst_off`]).
    /// During an `on` window arrivals are Poisson at
    /// `rate * (on + off) / on`, so the long-run average rate still
    /// matches `rate`; `off` windows are silent.
    Bursty,
}

impl ArrivalProcess {
    /// Every selectable process, in CLI/reporting order.
    pub const ALL: [ArrivalProcess; 3] = [
        ArrivalProcess::Poisson,
        ArrivalProcess::Fixed,
        ArrivalProcess::Bursty,
    ];

    /// The process's short name (`poisson` / `fixed` / `bursty`).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Fixed => "fixed",
            ArrivalProcess::Bursty => "bursty",
        }
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ArrivalProcess {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, ServeError> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "fixed" => Ok(ArrivalProcess::Fixed),
            "bursty" => Ok(ArrivalProcess::Bursty),
            other => Err(ServeError::UnknownArrivals(other.to_string())),
        }
    }
}

/// Dynamic batch formation policy for the queueing front-end.
///
/// A network's queue becomes *ripe* for dispatch when it holds
/// `max_size` requests **or** its oldest request has waited `timeout`;
/// a ripe queue launches a batch of up to `max_size` requests the next
/// time an instance is free. `max_size == 1` disables batching; a zero
/// `timeout` dispatches every request as soon as an instance frees.
///
/// The canonical string form is `N/Tunit` (`4/50us`: batches of up to 4,
/// 50 µs timeout) or a bare `N` (default timeout); it is CSV-safe so the
/// sweep engine can carry policies as a comma-separated axis.
///
/// ```rust
/// use pimsim_serve::BatchPolicy;
/// let p: BatchPolicy = "4/50us".parse().unwrap();
/// assert_eq!(p.max_size, 4);
/// assert_eq!(p.timeout.as_ns_f64(), 50_000.0);
/// assert_eq!(p.to_string(), "4/50us");
/// assert_eq!("1".parse::<BatchPolicy>().unwrap().max_size, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single instance dispatch may carry (≥ 1).
    pub max_size: u32,
    /// Longest a head-of-queue request may wait before its queue becomes
    /// ripe even when not full.
    pub timeout: SimTime,
}

impl BatchPolicy {
    /// The default batching timeout (50 µs).
    pub const DEFAULT_TIMEOUT: SimTime = SimTime::from_us(50);
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_size: 4,
            timeout: BatchPolicy::DEFAULT_TIMEOUT,
        }
    }
}

impl fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.max_size, format_duration(self.timeout))
    }
}

impl std::str::FromStr for BatchPolicy {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self, ServeError> {
        let bad = || ServeError::BadBatchPolicy(s.to_string());
        let (size, timeout) = match s.split_once('/') {
            Some((size, timeout)) => (size, Some(timeout)),
            None => (s, None),
        };
        let max_size: u32 = size.parse().map_err(|_| bad())?;
        if max_size == 0 {
            return Err(bad());
        }
        let timeout = match timeout {
            Some(t) => parse_duration(t).map_err(|_| bad())?,
            None => BatchPolicy::DEFAULT_TIMEOUT,
        };
        Ok(BatchPolicy { max_size, timeout })
    }
}

/// Parses a human-readable duration with an explicit unit — `500ns`,
/// `50us`, `10ms`, `1s` — into a [`SimTime`]. Fractional values are fine
/// (`2.5ms`); the unit is required so a bare number can never be
/// misread.
///
/// # Errors
///
/// Returns a message naming the accepted units when the text does not
/// parse.
pub fn parse_duration(text: &str) -> Result<SimTime, String> {
    let (scale_ps, digits) = if let Some(d) = text.strip_suffix("ns") {
        (1e3, d)
    } else if let Some(d) = text.strip_suffix("us") {
        (1e6, d)
    } else if let Some(d) = text.strip_suffix("ms") {
        (1e9, d)
    } else if let Some(d) = text.strip_suffix('s') {
        (1e12, d)
    } else {
        return Err(format!(
            "duration `{text}` needs a unit: ns, us, ms or s (e.g. `10ms`)"
        ));
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("duration `{text}` is not a number with a unit (e.g. `10ms`)"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration `{text}` must be finite and non-negative"));
    }
    Ok(SimTime::from_ps((value * scale_ps).round() as u64))
}

/// Renders a [`SimTime`] in the same `Nunit` syntax [`parse_duration`]
/// accepts, picking the largest unit that divides it exactly.
pub fn format_duration(t: SimTime) -> String {
    let ps = t.as_ps();
    for (scale, unit) in [
        (1_000_000_000_000, "s"),
        (1_000_000_000, "ms"),
        (1_000_000, "us"),
        (1_000, "ns"),
    ] {
        if ps >= scale && ps.is_multiple_of(scale) {
            return format!("{}{unit}", ps / scale);
        }
    }
    if ps == 0 {
        return "0ns".to_string();
    }
    // Sub-nanosecond remainders: fall back to fractional nanoseconds.
    format!("{}ns", ps as f64 / 1e3)
}

/// One serving-run configuration: the workload (networks + arrival
/// process), the queueing front-end, and the simulated accelerator the
/// requests are served on.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Networks requests arrive for, as `(zoo name, input resolution)`;
    /// the aggregate arrival rate is split evenly across them, each with
    /// its own independent seeded substream.
    pub networks: Vec<(String, u32)>,
    /// Arrival process shape.
    pub arrivals: ArrivalProcess,
    /// Aggregate arrival rate, requests per simulated second.
    pub rate_rps: f64,
    /// Arrival horizon: requests are generated in `[0, duration)`.
    pub duration: SimTime,
    /// RNG seed; equal seeds reproduce the run byte-for-byte.
    pub seed: u64,
    /// Batch formation policy.
    pub batch: BatchPolicy,
    /// Bound on the number of queued (admitted, not yet dispatched)
    /// requests across all networks; arrivals beyond it are dropped.
    pub queue_cap: u64,
    /// Identical accelerator instances serving batches concurrently.
    pub instances: u32,
    /// `true` (default): after the last arrival the queues drain to
    /// empty. `false`: dispatch stops at the horizon and whatever is
    /// still queued is reported as `in_queue`.
    pub drain: bool,
    /// `on` window of the [`ArrivalProcess::Bursty`] square wave.
    pub burst_on: SimTime,
    /// `off` window of the [`ArrivalProcess::Bursty`] square wave.
    pub burst_off: SimTime,
    /// Mapping policy the per-instance service model compiles with.
    pub mapping: MappingPolicy,
    /// Run-loop engine the service model simulates with (the engines are
    /// byte-identical, so this never changes a reported number).
    pub engine: EngineKind,
    /// The accelerator instance architecture.
    pub arch: ArchConfig,
}

impl ServeConfig {
    /// A configuration over `networks` (at each network's `resolution`)
    /// with the documented defaults: Poisson arrivals at 50 000 req/s
    /// for 10 ms, seed 42, batches of up to 4 with a 50 µs timeout, a
    /// 64-request queue, one instance, drain-at-end, and the paper-chip
    /// architecture.
    pub fn new(networks: Vec<(String, u32)>) -> ServeConfig {
        ServeConfig {
            networks,
            arrivals: ArrivalProcess::Poisson,
            rate_rps: 50_000.0,
            duration: SimTime::from_ms(10),
            seed: 42,
            batch: BatchPolicy::default(),
            queue_cap: 64,
            instances: 1,
            drain: true,
            burst_on: SimTime::from_us(500),
            burst_off: SimTime::from_us(500),
            mapping: MappingPolicy::PerformanceFirst,
            engine: EngineKind::default(),
            arch: ArchConfig::paper_default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] on an empty network list, a
    /// non-positive rate or duration, zero instances or batch size, or a
    /// degenerate bursty window; architecture validation failures
    /// surface as [`ServeError::Arch`].
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.networks.is_empty() {
            return Err(ServeError::Config("no networks to serve".to_string()));
        }
        if !self.rate_rps.is_finite() || self.rate_rps <= 0.0 {
            return Err(ServeError::Config(format!(
                "arrival rate must be positive, got {}",
                self.rate_rps
            )));
        }
        if self.duration.is_zero() {
            return Err(ServeError::Config("duration must be positive".to_string()));
        }
        if self.instances == 0 {
            return Err(ServeError::Config(
                "at least one instance is required".to_string(),
            ));
        }
        if self.batch.max_size == 0 {
            return Err(ServeError::Config("batch size must be ≥ 1".to_string()));
        }
        if self.arrivals == ArrivalProcess::Bursty && self.burst_on.is_zero() {
            return Err(ServeError::Config(
                "bursty arrivals need a non-zero on-window".to_string(),
            ));
        }
        self.arch
            .validate()
            .map_err(|e| ServeError::Arch(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_policy_parses_and_prints_canonically() {
        let p: BatchPolicy = "8/2ms".parse().unwrap();
        assert_eq!(p.max_size, 8);
        assert_eq!(p.timeout, SimTime::from_ms(2));
        assert_eq!(p.to_string(), "8/2ms");
        let bare: BatchPolicy = "16".parse().unwrap();
        assert_eq!(bare.max_size, 16);
        assert_eq!(bare.timeout, BatchPolicy::DEFAULT_TIMEOUT);
        assert_eq!(BatchPolicy::default().to_string(), "4/50us");
        // Round-trips through Display.
        for text in ["1/0ns", "4/50us", "32/1s", "2/750ns"] {
            let p: BatchPolicy = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn bad_batch_policies_are_rejected() {
        for text in [
            "",
            "0",
            "0/1ms",
            "four",
            "4/",
            "4/10",
            "4/10parsecs",
            "4/50us/9",
        ] {
            assert!(
                text.parse::<BatchPolicy>().is_err(),
                "`{text}` should not parse"
            );
        }
    }

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(parse_duration("500ns").unwrap(), SimTime::from_ns(500));
        assert_eq!(parse_duration("50us").unwrap(), SimTime::from_us(50));
        assert_eq!(parse_duration("10ms").unwrap(), SimTime::from_ms(10));
        assert_eq!(
            parse_duration("1s").unwrap(),
            SimTime::from_ps(1_000_000_000_000)
        );
        assert_eq!(
            parse_duration("2.5us").unwrap(),
            SimTime::from_ps(2_500_000)
        );
        for bad in ["10", "ms", "-1ms", "infs", "1 minute"] {
            assert!(parse_duration(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn durations_format_with_the_largest_exact_unit() {
        assert_eq!(format_duration(SimTime::from_ms(10)), "10ms");
        assert_eq!(format_duration(SimTime::from_us(1500)), "1500us");
        assert_eq!(format_duration(SimTime::from_ps(0)), "0ns");
        assert_eq!(format_duration(SimTime::from_ps(2_500)), "2.5ns");
        assert_eq!(format_duration(SimTime::from_ps(1_000_000_000_000)), "1s");
    }

    #[test]
    fn arrival_processes_parse_and_print() {
        for p in ArrivalProcess::ALL {
            assert_eq!(p.name().parse::<ArrivalProcess>().unwrap(), p);
        }
        assert!(matches!(
            "poison".parse::<ArrivalProcess>(),
            Err(ServeError::UnknownArrivals(_))
        ));
    }

    #[test]
    fn config_validation_catches_degenerate_knobs() {
        let nets = vec![("tiny_mlp".to_string(), 64)];
        assert!(ServeConfig::new(nets.clone()).validate().is_ok());
        let mut c = ServeConfig::new(Vec::new());
        assert!(c.validate().is_err());
        c = ServeConfig::new(nets.clone());
        c.rate_rps = 0.0;
        assert!(c.validate().is_err());
        c = ServeConfig::new(nets.clone());
        c.duration = SimTime::ZERO;
        assert!(c.validate().is_err());
        c = ServeConfig::new(nets.clone());
        c.instances = 0;
        assert!(c.validate().is_err());
        c = ServeConfig::new(nets.clone());
        c.batch.max_size = 0;
        assert!(c.validate().is_err());
        c = ServeConfig::new(nets);
        c.arrivals = ArrivalProcess::Bursty;
        c.burst_on = SimTime::ZERO;
        assert!(c.validate().is_err());
    }
}

//! Open-loop inference serving on top of the PIMSIM-NN machine model.
//!
//! Every other entry point in the workspace answers "how fast is *one*
//! program on this chip?". This crate answers the question the ROADMAP's
//! north star actually poses: what happens when requests keep arriving
//! whether or not the accelerator is ready — the **open-loop** regime that
//! serving systems live in. It combines three pieces:
//!
//! - **Arrival generators** ([`ArrivalProcess`]): Poisson, fixed-rate, and
//!   bursty on/off request streams, each deterministic given the seed, with
//!   an independent substream per served network.
//! - A **queueing/batching front-end** ([`BatchPolicy`], queue cap): a
//!   bounded queue with drop accounting and dynamic batch formation under a
//!   size/timeout policy.
//! - A **dispatcher** over one or more simulated accelerator instances,
//!   using the cycle-level [`Simulator`](pimsim_core::Simulator) as the
//!   service-time model via a per-`(network, batch)` latency/energy cache —
//!   repeated requests never re-simulate.
//!
//! The result is a [`ServeReport`]: throughput, p50/p95/p99 tail latency,
//! drop counts per network, and queue depth over time. Reports honor the
//! workspace determinism contract — byte-identical JSON for a fixed seed at
//! any thread count.
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//! use pimsim_event::SimTime;
//! use pimsim_serve::{serve, ServeConfig};
//!
//! let mut config = ServeConfig::new(vec![("tiny_mlp".to_string(), 64)]);
//! config.arch = ArchConfig::small_test();
//! config.rate_rps = 100_000.0;
//! config.duration = SimTime::from_us(200);
//!
//! let report = serve(&config, 2).unwrap();
//! // The front-end never loses a request: every arrival is accounted for.
//! assert_eq!(
//!     report.generated,
//!     report.finished + report.dropped + report.in_queue
//! );
//! assert!(report.to_json().contains("p99_latency_ns"));
//! ```

mod config;
mod engine;
mod report;
mod service;
mod workload;

pub use config::{format_duration, parse_duration, ArrivalProcess, BatchPolicy, ServeConfig};
pub use report::{NetworkServeStats, QueueSample, ServeReport};
pub use service::{ServiceModel, ServicePoint};
pub use workload::{generate_requests, Request};

use std::fmt;

/// Everything that can go wrong while configuring or running a serving
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A degenerate configuration (empty workload, zero rate, ...).
    Config(String),
    /// An arrival-process name that is not `poisson`/`fixed`/`bursty`.
    UnknownArrivals(String),
    /// A batch policy that is not `N` or `N/Tunit`.
    BadBatchPolicy(String),
    /// A network name the zoo does not know.
    UnknownNetwork(String),
    /// The instance architecture failed validation.
    Arch(String),
    /// Compiling a network for the service model failed.
    Compile(String),
    /// Simulating a service-time point failed.
    Sim(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
            ServeError::UnknownArrivals(name) => {
                write!(
                    f,
                    "unknown arrival process `{name}` (poisson, fixed, bursty)"
                )
            }
            ServeError::BadBatchPolicy(text) => write!(
                f,
                "bad batch policy `{text}`: expected `N` or `N/T` with a unit, e.g. `4/50us`"
            ),
            ServeError::UnknownNetwork(name) => write!(f, "unknown network `{name}`"),
            ServeError::Arch(msg) => write!(f, "architecture error: {msg}"),
            ServeError::Compile(msg) => write!(f, "compile error: {msg}"),
            ServeError::Sim(msg) => write!(f, "simulation error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Runs one full serving simulation: warms the service model on `threads`
/// worker threads, generates the request stream, plays it through the
/// queueing front-end, and assembles the report.
///
/// `threads` only controls how the per-`(network, batch)` service cache is
/// warmed; the report is byte-identical whatever value is passed.
///
/// # Errors
///
/// Returns a [`ServeError`] when the configuration is degenerate or any
/// service-time point fails to compile or simulate.
pub fn serve(config: &ServeConfig, threads: usize) -> Result<ServeReport, ServeError> {
    config.validate()?;
    let model = ServiceModel::warm(config, threads)?;
    let requests = generate_requests(config)?;
    let outcome = engine::simulate(config, &requests, &model);
    Ok(ServeReport::assemble(config, &requests, &model, outcome))
}

//! The per-instance service-time model.
//!
//! Every accelerator instance is identical, and serving the same network
//! at the same batch size always costs the same (the cycle-level simulator
//! is deterministic), so the queueing engine never re-simulates: it looks
//! service times up in a cache keyed by `(network, batch size)`. Warming
//! that cache is the only parallel part of a serving run — each key's
//! result lands in its own slot, so the model (and everything derived from
//! it) is independent of the worker-thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pimsim_compiler::Compiler;
use pimsim_core::Simulator;
use pimsim_event::SimTime;
use pimsim_nn::zoo;

use crate::config::ServeConfig;
use crate::ServeError;

/// The cost of serving one batch: what one instance is busy with while a
/// batch is in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServicePoint {
    /// End-to-end latency of the batch on one instance.
    pub latency: SimTime,
    /// Energy the batch consumes, picojoules.
    pub energy_pj: f64,
    /// Dynamic instructions executed for the batch.
    pub instructions: u64,
    /// Kernel events processed for the batch.
    pub events: u64,
}

/// The warmed `(network, batch size)` → [`ServicePoint`] cache.
#[derive(Debug)]
pub struct ServiceModel {
    /// Row-major: `points[net * batch_max + (k - 1)]`.
    points: Vec<ServicePoint>,
    batch_max: u32,
}

impl ServiceModel {
    /// Compiles and simulates every `(network, batch size 1..=max)` pair
    /// on a pool of `threads` worker threads and returns the cache.
    ///
    /// Results land in per-key slots (the same pattern as the sweep worker
    /// pool), so the model is identical whatever `threads` is; on failure
    /// the error of the smallest-indexed key is returned, deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownNetwork`], [`ServeError::Config`] (a
    /// network that cannot be built at its resolution),
    /// [`ServeError::Compile`], or [`ServeError::Sim`].
    pub fn warm(config: &ServeConfig, threads: usize) -> Result<ServiceModel, ServeError> {
        let batch_max = config.batch.max_size;
        let n = config.networks.len() * batch_max as usize;
        let cursor = AtomicUsize::new(0);
        let first_failed = AtomicUsize::new(usize::MAX);
        let slots: Vec<Mutex<Option<Result<ServicePoint, ServeError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let workers = threads.clamp(1, n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if i > first_failed.load(Ordering::Relaxed) {
                        continue;
                    }
                    let net = i / batch_max as usize;
                    let k = (i % batch_max as usize) as u32 + 1;
                    let outcome = measure(config, net, k);
                    if outcome.is_err() {
                        first_failed.fetch_min(i, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("service slot poisoned") = Some(outcome);
                });
            }
        });

        let mut points = Vec::with_capacity(n);
        for slot in slots {
            match slot.into_inner().expect("service slot poisoned") {
                Some(Ok(point)) => points.push(point),
                Some(Err(e)) => return Err(e),
                None => unreachable!("skipped slot below the first failure"),
            }
        }
        Ok(ServiceModel { points, batch_max })
    }

    /// The cost of serving network `net` (an index into
    /// [`ServeConfig::networks`]) at batch size `k`.
    ///
    /// # Panics
    ///
    /// Panics when `net` or `k` is outside the warmed range.
    pub fn get(&self, net: usize, k: u32) -> &ServicePoint {
        assert!(k >= 1 && k <= self.batch_max, "batch size {k} not warmed");
        &self.points[net * self.batch_max as usize + (k as usize - 1)]
    }

    /// The largest warmed batch size.
    pub fn batch_max(&self) -> u32 {
        self.batch_max
    }
}

/// Compiles and simulates one `(network, batch size)` key.
fn measure(config: &ServeConfig, net: usize, k: u32) -> Result<ServicePoint, ServeError> {
    let (name, resolution) = &config.networks[net];
    // The zoo builders panic on degenerate resolutions; surface that as
    // this key's error instead of unwinding a worker thread.
    let network = std::panic::catch_unwind(|| zoo::by_name(name, *resolution))
        .map_err(|_| {
            ServeError::Config(format!(
                "network `{name}` cannot be built at resolution {resolution}"
            ))
        })?
        .ok_or_else(|| ServeError::UnknownNetwork(name.clone()))?;
    let compiled = Compiler::new(&config.arch)
        .mapping(config.mapping)
        .batch(k)
        .compile(&network)
        .map_err(|e| ServeError::Compile(format!("{name} @ batch {k}: {e}")))?;
    let report = Simulator::new(&config.arch)
        .with_engine(config.engine.engine())
        .run(&compiled.program)
        .map_err(|e| ServeError::Sim(format!("{name} @ batch {k}: {e}")))?;
    Ok(ServicePoint {
        latency: report.latency,
        energy_pj: report.energy.total().as_pj(),
        instructions: report.instructions,
        events: report.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;

    fn tiny_config() -> ServeConfig {
        let mut c = ServeConfig::new(vec![
            ("tiny_mlp".to_string(), 64),
            ("tiny_cnn".to_string(), 64),
        ]);
        c.arch = ArchConfig::small_test();
        c.batch.max_size = 2;
        c
    }

    #[test]
    fn model_is_thread_count_independent() {
        let c = tiny_config();
        let solo = ServiceModel::warm(&c, 1).unwrap();
        let pool = ServiceModel::warm(&c, 4).unwrap();
        for net in 0..2 {
            for k in 1..=2 {
                let a = solo.get(net, k);
                let b = pool.get(net, k);
                assert_eq!(a.latency, b.latency);
                assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits());
                assert_eq!(a.instructions, b.instructions);
                assert_eq!(a.events, b.events);
            }
        }
    }

    #[test]
    fn bigger_batches_cost_no_less_time() {
        let c = tiny_config();
        let model = ServiceModel::warm(&c, 2).unwrap();
        for net in 0..2 {
            assert!(model.get(net, 2).latency >= model.get(net, 1).latency);
            assert!(model.get(net, 1).latency > SimTime::ZERO);
        }
        assert_eq!(model.batch_max(), 2);
    }

    #[test]
    fn unknown_networks_fail_deterministically() {
        let mut c = tiny_config();
        c.networks[1].0 = "not_a_network".to_string();
        let err = ServiceModel::warm(&c, 4).unwrap_err();
        assert_eq!(err, ServeError::UnknownNetwork("not_a_network".to_string()));
    }
}

//! The serving report: what an open-loop run is summarised into.

use serde::Serialize;

use pimsim_event::SimTime;

use crate::config::ServeConfig;
use crate::engine::SimOutcome;
use crate::service::ServiceModel;
use crate::workload::Request;

/// One `(time, depth)` point of the queue-depth-over-time trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueueSample {
    /// Simulated time, nanoseconds.
    pub t_ns: f64,
    /// Admitted-but-not-yet-dispatched requests at that instant.
    pub depth: u64,
}

/// Per-network serving statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NetworkServeStats {
    /// Zoo network name.
    pub network: String,
    /// Input resolution the network was built at.
    pub resolution: u32,
    /// Requests that arrived for this network.
    pub generated: u64,
    /// Requests served to completion.
    pub finished: u64,
    /// Requests dropped at the full queue.
    pub dropped: u64,
    /// Requests still queued when the run stopped (zero in drain mode).
    pub in_queue: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean dispatched batch size (`finished / batches`).
    pub mean_batch: f64,
    /// The raw batch-of-1 service latency from the cache, nanoseconds —
    /// the floor any request latency sits on.
    pub service_latency_ns: f64,
    /// Median request latency (arrival → completion), nanoseconds.
    pub p50_latency_ns: f64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_latency_ns: f64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_latency_ns: f64,
    /// Mean request latency, nanoseconds.
    pub mean_latency_ns: f64,
    /// Worst request latency, nanoseconds.
    pub max_latency_ns: f64,
}

/// The full report of one open-loop serving run.
///
/// Everything here is a pure function of the [`ServeConfig`], so for a
/// fixed seed the JSON rendering is byte-identical at any thread count —
/// the same determinism contract the sweep engine honors.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeReport {
    /// Arrival process name (`poisson` / `fixed` / `bursty`).
    pub arrivals: String,
    /// Aggregate offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Arrival horizon, nanoseconds.
    pub duration_ns: f64,
    /// The RNG seed the run used.
    pub seed: u64,
    /// Batch policy in canonical `N/Tunit` form.
    pub batch: String,
    /// Queue bound (admitted, not yet dispatched, across all networks).
    pub queue_cap: u64,
    /// Simulated accelerator instances.
    pub instances: u32,
    /// Whether queues drained after the last arrival.
    pub drain: bool,
    /// Mapping policy of the per-instance service model.
    pub mapping: String,
    /// Run-loop engine of the per-instance service model.
    pub engine: String,
    /// Requests generated across all networks.
    pub generated: u64,
    /// Requests served to completion.
    pub finished: u64,
    /// Requests dropped at the full queue.
    pub dropped: u64,
    /// Requests still queued when the run stopped.
    pub in_queue: u64,
    /// Achieved goodput: `finished / makespan`, requests per second.
    pub throughput_rps: f64,
    /// When the last batch completed (at least the arrival horizon),
    /// nanoseconds.
    pub makespan_ns: f64,
    /// Total service energy, picojoules.
    pub energy_pj: f64,
    /// `energy / makespan`, watts.
    pub avg_power_w: f64,
    /// The deepest the queue ever got.
    pub max_queue_depth: u64,
    /// Queue depth over time, downsampled to at most 64 points.
    pub queue_depth: Vec<QueueSample>,
    /// Per-network statistics, in workload order.
    pub per_network: Vec<NetworkServeStats>,
}

/// Nearest-rank percentile (`q` in `[0, 1]`) of an ascending-sorted
/// latency list, in nanoseconds; 0 for an empty list.
fn percentile_ns(sorted_ps: &[u64], q: f64) -> f64 {
    if sorted_ps.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted_ps.len() as f64).ceil() as usize;
    sorted_ps[rank.clamp(1, sorted_ps.len()) - 1] as f64 / 1e3
}

/// Keeps at most `cap` evenly spaced samples (always retaining the last).
fn downsample(samples: &[(SimTime, u64)], cap: usize) -> Vec<QueueSample> {
    let stride = samples.len().div_ceil(cap).max(1);
    let mut out: Vec<QueueSample> = samples
        .iter()
        .step_by(stride)
        .map(|&(t, depth)| QueueSample {
            t_ns: t.as_ns_f64(),
            depth,
        })
        .collect();
    if let Some(&(t, depth)) = samples.last() {
        let last = QueueSample {
            t_ns: t.as_ns_f64(),
            depth,
        };
        if out.last() != Some(&last) {
            out.push(last);
        }
    }
    out
}

impl ServeReport {
    /// Builds the report from a finished queueing simulation.
    pub(crate) fn assemble(
        config: &ServeConfig,
        requests: &[Request],
        model: &ServiceModel,
        outcome: SimOutcome,
    ) -> ServeReport {
        let mut per_network = Vec::with_capacity(config.networks.len());
        for (net, (name, resolution)) in config.networks.iter().enumerate() {
            let generated = requests.iter().filter(|r| r.net == net).count() as u64;
            let mut sorted = outcome.latencies_ps[net].clone();
            sorted.sort_unstable();
            let mean_ns = if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1e3
            };
            let batches = outcome.batches[net];
            per_network.push(NetworkServeStats {
                network: name.clone(),
                resolution: *resolution,
                generated,
                finished: outcome.finished[net],
                dropped: outcome.dropped[net],
                in_queue: outcome.in_queue[net],
                batches,
                mean_batch: if batches == 0 {
                    0.0
                } else {
                    outcome.finished[net] as f64 / batches as f64
                },
                service_latency_ns: model.get(net, 1).latency.as_ns_f64(),
                p50_latency_ns: percentile_ns(&sorted, 0.50),
                p95_latency_ns: percentile_ns(&sorted, 0.95),
                p99_latency_ns: percentile_ns(&sorted, 0.99),
                mean_latency_ns: mean_ns,
                max_latency_ns: sorted.last().map_or(0.0, |&ps| ps as f64 / 1e3),
            });
        }
        let finished: u64 = outcome.finished.iter().sum();
        let makespan_s = outcome.makespan.as_secs_f64();
        ServeReport {
            arrivals: config.arrivals.name().to_string(),
            rate_rps: config.rate_rps,
            duration_ns: config.duration.as_ns_f64(),
            seed: config.seed,
            batch: config.batch.to_string(),
            queue_cap: config.queue_cap,
            instances: config.instances,
            drain: config.drain,
            mapping: config.mapping.to_string(),
            engine: config.engine.name().to_string(),
            generated: requests.len() as u64,
            finished,
            dropped: outcome.dropped.iter().sum(),
            in_queue: outcome.in_queue.iter().sum(),
            throughput_rps: finished as f64 / makespan_s,
            makespan_ns: outcome.makespan.as_ns_f64(),
            energy_pj: outcome.energy_pj,
            avg_power_w: outcome.energy_pj * 1e-12 / makespan_s,
            max_queue_depth: outcome.max_depth,
            queue_depth: downsample(&outcome.depth_samples, 64),
            per_network,
        }
    }

    /// Renders the report as pretty JSON. Equal reports render to equal
    /// bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Renders the report as the aligned text block `pimsim serve` prints.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: {} arrivals @ {:.0} req/s for {}, batch {}, queue {}, {} instance{}{}",
            self.arrivals,
            self.rate_rps,
            SimTime::from_ns_f64(self.duration_ns),
            self.batch,
            self.queue_cap,
            self.instances,
            if self.instances == 1 { "" } else { "s" },
            if self.drain { "" } else { ", no drain" },
        );
        let _ = writeln!(
            out,
            "  generated {}  finished {}  dropped {}  in-queue {}",
            self.generated, self.finished, self.dropped, self.in_queue
        );
        let _ = writeln!(
            out,
            "  throughput {:.1} req/s  makespan {}  energy {:.3} uJ  avg power {:.3} W",
            self.throughput_rps,
            SimTime::from_ns_f64(self.makespan_ns),
            self.energy_pj / 1e6,
            self.avg_power_w
        );
        let _ = writeln!(out, "  peak queue depth {}", self.max_queue_depth);
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>6} {:>5} {:>9} {:>12} {:>12} {:>12}",
            "network", "served", "drops", "batch", "p50", "p95", "p99", "max"
        );
        for n in &self.per_network {
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>6} {:>5.2} {:>9} {:>12} {:>12} {:>12}",
                n.network,
                n.finished,
                n.dropped,
                n.mean_batch,
                format!("{}", SimTime::from_ns_f64(n.p50_latency_ns)),
                format!("{}", SimTime::from_ns_f64(n.p95_latency_ns)),
                format!("{}", SimTime::from_ns_f64(n.p99_latency_ns)),
                format!("{}", SimTime::from_ns_f64(n.max_latency_ns)),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_ns(&sorted, 0.50), 50.0);
        assert_eq!(percentile_ns(&sorted, 0.95), 95.0);
        assert_eq!(percentile_ns(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ns(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ns(&[5_000], 0.99), 5.0);
        assert_eq!(percentile_ns(&[], 0.5), 0.0);
    }

    #[test]
    fn downsampling_keeps_ends_and_caps_length() {
        let samples: Vec<(SimTime, u64)> = (0..1000).map(|i| (SimTime::from_ns(i), i)).collect();
        let ds = downsample(&samples, 64);
        assert!(ds.len() <= 65);
        assert_eq!(ds.first().unwrap().t_ns, 0.0);
        assert_eq!(ds.last().unwrap().depth, 999);
        let tiny = downsample(&samples[..3], 64);
        assert_eq!(tiny.len(), 3);
        assert!(downsample(&[], 64).is_empty());
    }
}

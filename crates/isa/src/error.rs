//! Error types for the ISA crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing, encoding, parsing or validating
/// instructions and programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register index outside `0..32`.
    InvalidRegister(u8),
    /// An immediate/operand field does not fit its encoding field.
    FieldRange {
        /// Which field overflowed.
        field: &'static str,
        /// The offending value.
        value: i64,
        /// Smallest encodable value.
        min: i64,
        /// Largest encodable value.
        max: i64,
    },
    /// A binary word whose opcode byte is unknown.
    UnknownOpcode(u8),
    /// Assembly text could not be parsed. `line` is 1-based (0 = unknown).
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A program failed structural validation.
    Validate {
        /// Core whose program is invalid.
        core: u16,
        /// Offending instruction index, if applicable.
        pc: Option<u32>,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(i) => write!(f, "invalid register index {i} (valid: 0..32)"),
            IsaError::FieldRange {
                field,
                value,
                min,
                max,
            } => write!(
                f,
                "{field} value {value} outside encodable range [{min}, {max}]"
            ),
            IsaError::UnknownOpcode(op) => write!(f, "unknown opcode byte {op:#04x}"),
            IsaError::Parse { line, msg } if *line > 0 => {
                write!(f, "parse error at line {line}: {msg}")
            }
            IsaError::Parse { msg, .. } => write!(f, "parse error: {msg}"),
            IsaError::Validate { core, pc, msg } => match pc {
                Some(pc) => write!(f, "invalid program for core {core} at pc {pc}: {msg}"),
                None => write!(f, "invalid program for core {core}: {msg}"),
            },
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IsaError::FieldRange {
            field: "len",
            value: 1 << 30,
            min: 0,
            max: 262143,
        };
        let text = e.to_string();
        assert!(text.contains("len"));
        assert!(text.contains("262143"));

        let p = IsaError::Parse {
            line: 7,
            msg: "bad token".into(),
        };
        assert!(p.to_string().contains("line 7"));

        let v = IsaError::Validate {
            core: 3,
            pc: Some(9),
            msg: "branch target out of range".into(),
        };
        assert!(v.to_string().contains("core 3"));
        assert!(v.to_string().contains("pc 9"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn Error + Send + Sync> = Box::new(IsaError::UnknownOpcode(0xff));
        assert!(e.to_string().contains("0xff"));
    }
}

//! Textual assembler and disassembler.
//!
//! The assembly syntax is exactly what [`Instruction`]'s `Display` impl
//! prints, plus:
//!
//! * `;` / `#` line comments,
//! * `label:` definitions and label operands for `jmp`/branches,
//! * `li rd, imm` sugar for `addi rd, r0, imm`,
//! * directives: `.core N` (select the core being assembled), `.group ID
//!   in=N out=M xbars=0,1,2` (define a crossbar group), `.init START
//!   v0,v1,...` (preload local memory).
//!
//! ```rust
//! use pimsim_isa::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble(r#"
//!     .core 0
//!     .group 0 in=4 out=4 xbars=0
//!     li   r1, 3
//! loop:
//!     mvm  g0, [r2+0], [r3+0], 4
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! "#)?;
//! assert_eq!(program.cores[0].instrs.len(), 5);
//! let text = asm::disassemble(&program);
//! let again = asm::assemble(&text)?;
//! assert_eq!(again.cores[0].instrs, program.cores[0].instrs);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::IsaError;
use crate::group::GroupConfig;
use crate::instr::{
    Addr, BranchCond, CoreId, GroupId, Instruction, PoolOp, SBinOp, SImmOp, VBinOp, VImmOp, VUnOp,
};
use crate::program::{CoreProgram, Program, ProgramMeta};
use crate::reg::Reg;

/// A branch/jump target that may still be symbolic.
#[derive(Debug, Clone)]
enum Target {
    Absolute(u32),
    Label(String),
}

fn perr(line: usize, msg: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Splits an operand list on top-level commas (no nesting in this syntax).
fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

struct Operands<'a> {
    items: Vec<String>,
    next: usize,
    line: usize,
    mnemonic: &'a str,
}

impl<'a> Operands<'a> {
    fn new(mnemonic: &'a str, rest: &str, line: usize) -> Self {
        Operands {
            items: split_operands(rest),
            next: 0,
            line,
            mnemonic,
        }
    }

    fn take(&mut self) -> Result<String, IsaError> {
        let item = self.items.get(self.next).cloned().ok_or_else(|| {
            perr(
                self.line,
                format!("`{}` is missing operand {}", self.mnemonic, self.next + 1),
            )
        })?;
        self.next += 1;
        Ok(item)
    }

    fn finish(self) -> Result<(), IsaError> {
        if self.next != self.items.len() {
            return Err(perr(
                self.line,
                format!(
                    "`{}` has {} extra operand(s)",
                    self.mnemonic,
                    self.items.len() - self.next
                ),
            ));
        }
        Ok(())
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        tok.parse()
            .map_err(|_| perr(line, format!("expected register, got `{tok}`")))
    }

    fn int(&mut self) -> Result<i64, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        parse_int(&tok).ok_or_else(|| perr(line, format!("expected integer, got `{tok}`")))
    }

    fn u32(&mut self) -> Result<u32, IsaError> {
        let line = self.line;
        let v = self.int()?;
        u32::try_from(v).map_err(|_| perr(line, format!("expected unsigned value, got {v}")))
    }

    fn i32(&mut self) -> Result<i32, IsaError> {
        let line = self.line;
        let v = self.int()?;
        i32::try_from(v).map_err(|_| perr(line, format!("immediate {v} does not fit 32 bits")))
    }

    fn addr(&mut self) -> Result<Addr, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        parse_addr(&tok, false)
            .ok_or_else(|| perr(line, format!("expected address like [r1+8], got `{tok}`")))
    }

    fn gaddr(&mut self) -> Result<Addr, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        parse_addr(&tok, true).ok_or_else(|| {
            perr(
                line,
                format!("expected global address like g[r1+8], got `{tok}`"),
            )
        })
    }

    fn core(&mut self) -> Result<CoreId, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        let digits = tok.strip_prefix("core").unwrap_or(&tok);
        let id: u16 = digits
            .parse()
            .map_err(|_| perr(line, format!("expected core id, got `{tok}`")))?;
        Ok(CoreId(id))
    }

    fn group(&mut self) -> Result<GroupId, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        let digits = tok
            .strip_prefix('g')
            .ok_or_else(|| perr(line, format!("expected group like g3, got `{tok}`")))?;
        let id: u16 = digits
            .parse()
            .map_err(|_| perr(line, format!("expected group like g3, got `{tok}`")))?;
        Ok(GroupId(id))
    }

    /// Parses `key=value` returning the integer value.
    fn kv_int(&mut self, key: &str) -> Result<i64, IsaError> {
        let line = self.line;
        let tok = self.take()?;
        let val = tok
            .strip_prefix(key)
            .and_then(|r| r.strip_prefix('='))
            .ok_or_else(|| perr(line, format!("expected `{key}=<value>`, got `{tok}`")))?;
        parse_int(val).ok_or_else(|| perr(line, format!("bad integer in `{tok}`")))
    }

    fn kv_u32(&mut self, key: &str) -> Result<u32, IsaError> {
        let line = self.line;
        let v = self.kv_int(key)?;
        u32::try_from(v).map_err(|_| perr(line, format!("`{key}` must be unsigned, got {v}")))
    }

    fn kv_i32(&mut self, key: &str) -> Result<i32, IsaError> {
        let line = self.line;
        let v = self.kv_int(key)?;
        i32::try_from(v).map_err(|_| perr(line, format!("`{key}` value {v} does not fit")))
    }

    fn kv_u16(&mut self, key: &str) -> Result<u16, IsaError> {
        let line = self.line;
        let v = self.kv_int(key)?;
        u16::try_from(v).map_err(|_| perr(line, format!("`{key}` value {v} does not fit u16")))
    }

    /// Parses `win=WxH`.
    fn kv_window(&mut self) -> Result<(u32, u32), IsaError> {
        let line = self.line;
        let tok = self.take()?;
        let val = tok
            .strip_prefix("win=")
            .ok_or_else(|| perr(line, format!("expected `win=WxH`, got `{tok}`")))?;
        let (w, h) = val
            .split_once('x')
            .ok_or_else(|| perr(line, format!("expected `win=WxH`, got `{tok}`")))?;
        let w: u32 = w
            .parse()
            .map_err(|_| perr(line, format!("bad window `{tok}`")))?;
        let h: u32 = h
            .parse()
            .map_err(|_| perr(line, format!("bad window `{tok}`")))?;
        Ok((w, h))
    }

    /// Parses a branch target: a number or a label name.
    fn target(&mut self) -> Result<Target, IsaError> {
        let tok = self.take()?;
        if let Some(v) = parse_int(&tok) {
            let line = self.line;
            let t = u32::try_from(v)
                .map_err(|_| perr(line, format!("branch target {v} out of range")))?;
            Ok(Target::Absolute(t))
        } else {
            Ok(Target::Label(tok))
        }
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        s.parse().ok()
    }
}

/// Parses `[rN+OFF]`, `[rN-OFF]`, `[rN]`; with `global`, requires `g` prefix.
fn parse_addr(tok: &str, global: bool) -> Option<Addr> {
    let tok = if global { tok.strip_prefix('g')? } else { tok };
    let inner = tok.strip_prefix('[')?.strip_suffix(']')?;
    let (reg_part, off) = if let Some(i) = inner.find('+') {
        (&inner[..i], parse_int(&inner[i + 1..])?)
    } else if let Some(i) = inner.rfind('-') {
        if i == 0 {
            return None;
        }
        (&inner[..i], -parse_int(&inner[i + 1..])?)
    } else {
        (inner, 0)
    };
    let base: Reg = reg_part.trim().parse().ok()?;
    Addr::new(base, i32::try_from(off).ok()?).ok()
}

/// Parses one instruction in canonical syntax. Branch/jump targets must be
/// numeric here; use [`assemble`] for label support.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] describing the first problem found.
pub fn parse_instruction(text: &str) -> Result<Instruction, IsaError> {
    let (instr, _) = parse_instruction_inner(text, 0)?;
    match instr {
        Parsed::Instr(i) => Ok(i),
        Parsed::NeedsLabel(_, _) => Err(perr(
            0,
            "label targets are only supported inside full programs",
        )),
    }
}

enum Parsed {
    Instr(Instruction),
    /// Branch awaiting label resolution: (builder, label).
    NeedsLabel(Box<dyn FnOnce(u32) -> Instruction>, String),
}

fn parse_instruction_inner(text: &str, line: usize) -> Result<(Parsed, ()), IsaError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r),
        None => (text, ""),
    };
    let mut ops = Operands::new(mnemonic, rest, line);
    use Instruction::*;
    let instr = match mnemonic {
        "nop" => Nop,
        "halt" => Halt,
        "jmp" => match ops.target()? {
            Target::Absolute(t) => Jump { target: t },
            Target::Label(l) => {
                ops.finish()?;
                return Ok((
                    Parsed::NeedsLabel(Box::new(move |t| Jump { target: t }), l),
                    (),
                ));
            }
        },
        "beq" | "bne" | "blt" | "bge" => {
            let cond = match mnemonic {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            let rs1 = ops.reg()?;
            let rs2 = ops.reg()?;
            match ops.target()? {
                Target::Absolute(t) => Branch {
                    cond,
                    rs1,
                    rs2,
                    target: t,
                },
                Target::Label(l) => {
                    ops.finish()?;
                    return Ok((
                        Parsed::NeedsLabel(
                            Box::new(move |t| Branch {
                                cond,
                                rs1,
                                rs2,
                                target: t,
                            }),
                            l,
                        ),
                        (),
                    ));
                }
            }
        }
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "slt" | "sll" | "srl" => {
            let op = match mnemonic {
                "add" => SBinOp::Add,
                "sub" => SBinOp::Sub,
                "mul" => SBinOp::Mul,
                "and" => SBinOp::And,
                "or" => SBinOp::Or,
                "xor" => SBinOp::Xor,
                "slt" => SBinOp::Slt,
                "sll" => SBinOp::Sll,
                _ => SBinOp::Srl,
            };
            SBin {
                op,
                rd: ops.reg()?,
                rs1: ops.reg()?,
                rs2: ops.reg()?,
            }
        }
        "addi" | "muli" | "slli" | "srli" | "andi" | "ori" | "slti" => {
            let op = match mnemonic {
                "addi" => SImmOp::Add,
                "muli" => SImmOp::Mul,
                "slli" => SImmOp::Sll,
                "srli" => SImmOp::Srl,
                "andi" => SImmOp::And,
                "ori" => SImmOp::Or,
                _ => SImmOp::Slt,
            };
            SImm {
                op,
                rd: ops.reg()?,
                rs1: ops.reg()?,
                imm: ops.i32()?,
            }
        }
        "li" => SImm {
            op: SImmOp::Add,
            rd: ops.reg()?,
            rs1: Reg::R0,
            imm: ops.i32()?,
        },
        "mvm" => Mvm {
            group: ops.group()?,
            dst: ops.addr()?,
            src: ops.addr()?,
            len: ops.u32()?,
        },
        "vadd" | "vsub" | "vmul" | "vmax" | "vmin" => {
            let op = match mnemonic {
                "vadd" => VBinOp::Add,
                "vsub" => VBinOp::Sub,
                "vmul" => VBinOp::Mul,
                "vmax" => VBinOp::Max,
                _ => VBinOp::Min,
            };
            VBin {
                op,
                dst: ops.addr()?,
                a: ops.addr()?,
                b: ops.addr()?,
                len: ops.u32()?,
            }
        }
        "vaddi" | "vmuli" | "vsrai" => {
            let op = match mnemonic {
                "vaddi" => VImmOp::Add,
                "vmuli" => VImmOp::Mul,
                _ => VImmOp::Sra,
            };
            VImm {
                op,
                dst: ops.addr()?,
                src: ops.addr()?,
                imm: ops.i32()?,
                len: ops.u32()?,
            }
        }
        "vrelu" | "vsigmoid" | "vtanh" | "vcopy" | "vneg" | "vabs" => {
            let op = match mnemonic {
                "vrelu" => VUnOp::Relu,
                "vsigmoid" => VUnOp::Sigmoid,
                "vtanh" => VUnOp::Tanh,
                "vcopy" => VUnOp::Copy,
                "vneg" => VUnOp::Neg,
                _ => VUnOp::Abs,
            };
            VUn {
                op,
                dst: ops.addr()?,
                src: ops.addr()?,
                len: ops.u32()?,
            }
        }
        "vfill" => VFill {
            dst: ops.addr()?,
            value: ops.i32()?,
            len: ops.u32()?,
        },
        "vcopy2d" => VCopy2d {
            dst: ops.addr()?,
            src: ops.addr()?,
            block_len: ops.kv_u32("block")?,
            blocks: ops.kv_u32("blocks")?,
            src_stride: ops.kv_i32("sstride")?,
            dst_stride: ops.kv_i32("dstride")?,
        },
        "vpool.max" | "vpool.avg" => {
            let op = if mnemonic == "vpool.max" {
                PoolOp::Max
            } else {
                PoolOp::Avg
            };
            let dst = ops.addr()?;
            let src = ops.addr()?;
            let channels = ops.kv_u32("ch")?;
            let (win_w, win_h) = ops.kv_window()?;
            let row_stride = ops.kv_i32("rstride")?;
            VPool {
                op,
                dst,
                src,
                channels,
                win_w,
                win_h,
                row_stride,
            }
        }
        "send" => Send {
            peer: ops.core()?,
            src: ops.addr()?,
            len: ops.u32()?,
            tag: ops.kv_u16("tag")?,
        },
        "recv" => Recv {
            peer: ops.core()?,
            dst: ops.addr()?,
            len: ops.u32()?,
            tag: ops.kv_u16("tag")?,
        },
        "recv2d" => Recv2d {
            peer: ops.core()?,
            dst: ops.addr()?,
            block_len: ops.kv_u32("block")?,
            blocks: ops.kv_u32("blocks")?,
            dst_stride: ops.kv_i32("dstride")?,
            tag: ops.kv_u16("tag")?,
        },
        "gload" => GLoad {
            dst: ops.addr()?,
            gaddr: ops.gaddr()?,
            len: ops.u32()?,
        },
        "gstore" => GStore {
            gaddr: ops.gaddr()?,
            src: ops.addr()?,
            len: ops.u32()?,
        },
        other => return Err(perr(line, format!("unknown mnemonic `{other}`"))),
    };
    ops.finish()?;
    Ok((Parsed::Instr(instr), ()))
}

/// Assembles a full multi-core program.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a 1-based line number on the first
/// syntax problem, or an undefined-label error at the end of assembly.
pub fn assemble(text: &str) -> Result<Program, IsaError> {
    /// A forward-reference patch: `(instruction slot, patcher, label, line)`.
    type Fixup = (usize, Box<dyn FnOnce(u32) -> Instruction>, String, usize);
    #[derive(Default)]
    struct CoreBuild {
        instrs: Vec<Instruction>,
        groups: Vec<GroupConfig>,
        local_init: Vec<(u32, Vec<i32>)>,
        labels: BTreeMap<String, u32>,
        fixups: Vec<Fixup>,
    }

    let mut cores: BTreeMap<u16, CoreBuild> = BTreeMap::new();
    let mut current: u16 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Strip comments.
        let mut line = raw;
        for marker in [';', '#'] {
            if let Some(i) = line.find(marker) {
                line = &line[..i];
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix(".core") {
            current = rest
                .trim()
                .parse()
                .map_err(|_| perr(lineno, format!("bad `.core` directive `{line}`")))?;
            cores.entry(current).or_default();
            continue;
        }
        if let Some(rest) = line.strip_prefix(".group") {
            // .group ID in=N out=M xbars=a,b,c
            let core = cores.entry(current).or_default();
            let mut parts = rest.split_whitespace();
            let id: u16 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| perr(lineno, "`.group` needs a numeric id"))?;
            let mut input_len = None;
            let mut output_len = None;
            let mut xbars = None;
            for p in parts {
                if let Some(v) = p.strip_prefix("in=") {
                    input_len = v.parse::<u32>().ok();
                } else if let Some(v) = p.strip_prefix("out=") {
                    output_len = v.parse::<u32>().ok();
                } else if let Some(v) = p.strip_prefix("xbars=") {
                    let ids: Option<Vec<u32>> = v.split(',').map(|x| x.parse().ok()).collect();
                    xbars = ids;
                } else {
                    return Err(perr(lineno, format!("unknown `.group` field `{p}`")));
                }
            }
            let (Some(i), Some(o), Some(x)) = (input_len, output_len, xbars) else {
                return Err(perr(lineno, "`.group` needs in=, out= and xbars="));
            };
            if core.groups.len() != id as usize {
                return Err(perr(
                    lineno,
                    format!(
                        "group ids must be dense and in order; expected {}, got {id}",
                        core.groups.len()
                    ),
                ));
            }
            core.groups.push(GroupConfig::new(GroupId(id), i, o, x));
            continue;
        }
        if let Some(rest) = line.strip_prefix(".init") {
            let core = cores.entry(current).or_default();
            let (start, values) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| perr(lineno, "`.init` needs a start and values"))?;
            let start: u32 = parse_int(start)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| perr(lineno, "bad `.init` start address"))?;
            let values: Option<Vec<i32>> = values
                .split(',')
                .map(|v| parse_int(v).and_then(|x| i32::try_from(x).ok()))
                .collect();
            let values = values.ok_or_else(|| perr(lineno, "bad `.init` value list"))?;
            core.local_init.push((start, values));
            continue;
        }
        if line.starts_with('.') {
            return Err(perr(lineno, format!("unknown directive `{line}`")));
        }

        let core = cores.entry(current).or_default();
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.chars().any(|c| c.is_whitespace()) {
                return Err(perr(lineno, format!("bad label `{line}`")));
            }
            let pc = core.instrs.len() as u32;
            if core.labels.insert(label.to_string(), pc).is_some() {
                return Err(perr(lineno, format!("duplicate label `{label}`")));
            }
            continue;
        }

        match parse_instruction_inner(line, lineno)? {
            (Parsed::Instr(i), ()) => core.instrs.push(i),
            (Parsed::NeedsLabel(build, label), ()) => {
                let at = core.instrs.len();
                core.instrs.push(Instruction::Nop); // placeholder
                core.fixups.push((at, build, label, lineno));
            }
        }
    }

    // Resolve label fixups and build the program.
    let max_core = cores
        .keys()
        .next_back()
        .map(|&c| c as usize + 1)
        .unwrap_or(0);
    let mut program = Program::with_cores(max_core);
    program.meta = ProgramMeta {
        name: "assembled".into(),
        mapping: String::new(),
        notes: String::new(),
    };
    for (cid, build) in cores {
        let CoreBuild {
            mut instrs,
            groups,
            local_init,
            labels,
            fixups,
        } = build;
        for (at, make, label, lineno) in fixups {
            let target = *labels
                .get(&label)
                .ok_or_else(|| perr(lineno, format!("undefined label `{label}`")))?;
            instrs[at] = make(target);
        }
        program.cores[cid as usize] = CoreProgram {
            instrs,
            groups,
            local_init,
            labels,
            instr_tags: Vec::new(),
        };
    }
    Ok(program)
}

/// Disassembles a program back to assembly text. Group weight matrices are
/// not representable in assembly and are noted in a comment; everything else
/// (including labels) re-assembles to an identical program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    if !program.meta.name.is_empty() {
        let _ = writeln!(out, "; program: {}", program.meta.name);
    }
    if !program.meta.mapping.is_empty() {
        let _ = writeln!(out, "; mapping: {}", program.meta.mapping);
    }
    for (cid, core) in program.cores.iter().enumerate() {
        if core.is_empty() && core.groups.is_empty() && core.local_init.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n.core {cid}");
        for g in &core.groups {
            let xbars: Vec<String> = g.xbar_ids.iter().map(|x| x.to_string()).collect();
            let _ = writeln!(
                out,
                ".group {} in={} out={} xbars={}{}",
                g.id.0,
                g.input_len,
                g.output_len,
                xbars.join(","),
                if g.weights.is_some() {
                    " ; weights elided"
                } else {
                    ""
                }
            );
        }
        for (start, values) in &core.local_init {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, ".init {start} {}", vals.join(","));
        }
        // Invert labels: pc -> names.
        let mut by_pc: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &pc) in &core.labels {
            by_pc.entry(pc).or_default().push(name);
        }
        for (pc, instr) in core.instrs.iter().enumerate() {
            if let Some(names) = by_pc.get(&(pc as u32)) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "    {instr}");
        }
        if let Some(names) = by_pc.get(&(core.instrs.len() as u32)) {
            for n in names {
                let _ = writeln!(out, "{n}:");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_instructions() {
        let i = parse_instruction("vadd [r1+0], [r2+8], [r3-8], 64").unwrap();
        assert_eq!(i.to_string(), "vadd [r1+0], [r2+8], [r3-8], 64");

        let i = parse_instruction("mvm g2, [r1+0], [r2+0], 128").unwrap();
        assert!(matches!(
            i,
            Instruction::Mvm {
                group: GroupId(2),
                len: 128,
                ..
            }
        ));

        let i = parse_instruction("send core3, [r1+0], 16, tag=9").unwrap();
        assert!(matches!(
            i,
            Instruction::Send {
                peer: CoreId(3),
                tag: 9,
                ..
            }
        ));

        let i = parse_instruction("vpool.max [r1+0], [r2+0], ch=64, win=3x3, rstride=448").unwrap();
        assert!(matches!(
            i,
            Instruction::VPool {
                op: PoolOp::Max,
                channels: 64,
                win_w: 3,
                win_h: 3,
                ..
            }
        ));

        let i = parse_instruction("gload [r1+0], g[r2+4096], 64").unwrap();
        assert!(matches!(i, Instruction::GLoad { len: 64, .. }));
    }

    #[test]
    fn li_is_sugar_for_addi() {
        let a = parse_instruction("li r5, 42").unwrap();
        let b = parse_instruction("addi r5, r0, 42").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bare_addr_defaults_offset_zero() {
        let i = parse_instruction("vcopy [r1], [r2], 4").unwrap();
        assert_eq!(i.to_string(), "vcopy [r1+0], [r2+0], 4");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_instruction("frobnicate r1, r2").is_err());
        assert!(parse_instruction("add r1, r2").is_err()); // missing operand
        assert!(parse_instruction("add r1, r2, r3, r4").is_err()); // extra
        assert!(parse_instruction("vadd [r1+0], [r2+0], [q3+0], 4").is_err());
        assert!(parse_instruction("send core1, [r1], zork, tag=1").is_err());
    }

    #[test]
    fn assemble_with_labels_and_directives() {
        let p = assemble(
            r#"
            ; two-core ping-pong
            .core 0
            .init 0 1,2,3,4
            li r1, 4
        again:
            send core1, [r0+0], 4, tag=1
            addi r1, r1, -1
            bne r1, r0, again
            halt
            .core 1
            recv core0, [r0+0], 4, tag=1
            halt
        "#,
        )
        .unwrap();
        assert_eq!(p.cores.len(), 2);
        assert_eq!(p.cores[0].instrs.len(), 5);
        assert_eq!(p.cores[0].labels["again"], 1);
        match &p.cores[0].instrs[3] {
            Instruction::Branch { target, .. } => assert_eq!(*target, 1),
            other => panic!("expected branch, got {other}"),
        }
        assert_eq!(p.cores[0].local_init, vec![(0, vec![1, 2, 3, 4])]);
    }

    #[test]
    fn undefined_label_reported() {
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.to_string().contains("undefined label"));
    }

    #[test]
    fn duplicate_label_reported() {
        let e = assemble("a:\na:\nnop").unwrap_err();
        assert!(e.to_string().contains("duplicate label"));
    }

    #[test]
    fn group_directive_builds_table() {
        let p = assemble(".group 0 in=128 out=256 xbars=0,1\n.group 1 in=64 out=64 xbars=2\nnop")
            .unwrap();
        assert_eq!(p.cores[0].groups.len(), 2);
        assert_eq!(p.cores[0].groups[0].xbar_ids, vec![0, 1]);
        assert_eq!(p.cores[0].groups[1].input_len, 64);
    }

    #[test]
    fn group_ids_must_be_dense() {
        assert!(assemble(".group 1 in=1 out=1 xbars=0").is_err());
    }

    #[test]
    fn disassemble_reassembles_identically() {
        let src = r#"
            .core 0
            .group 0 in=16 out=8 xbars=0,1,2
            .init 64 -1,0,1
            li r1, 3
        loop:
            mvm g0, [r2+0], [r3+0], 16
            vrelu [r2+0], [r2+0], 8
            send core2, [r2+0], 8, tag=3
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            .core 2
            recv core0, [r4+0], 8, tag=3
            gstore g[r5+0], [r4+0], 8
            halt
        "#;
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.cores.len(), p2.cores.len());
        for (a, b) in p1.cores.iter().zip(&p2.cores) {
            assert_eq!(a.instrs, b.instrs);
            assert_eq!(a.groups, b.groups);
            assert_eq!(a.local_init, b.local_init);
            assert_eq!(a.labels, b.labels);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n\n   ; note\nnop # trailing\n").unwrap();
        assert_eq!(p.cores[0].instrs, vec![Instruction::Nop]);
    }
}

#![warn(missing_docs)]

//! The PIMSIM-NN instruction set architecture.
//!
//! The ISA (paper §II, detailed in arXiv:2308.06449) targets neural networks
//! running on crossbar-based processing-in-memory accelerators. It assumes an
//! abstract machine: cores and a global memory connected by an
//! interconnection; each core contains crossbars, a local memory, a scalar
//! register file, and four execution units matching the four instruction
//! classes:
//!
//! * **Matrix** ([`Instruction::Mvm`]) — run a crossbar *group* (all
//!   crossbars holding slices of one weight matrix that consume the same
//!   input vector) to perform a matrix-vector multiplication.
//! * **Vector** — element-wise SIMD operations on local memory: arithmetic,
//!   activations, fills, strided 2-D copies (`VCOPY2D`, which implements
//!   im2col assembly, channel concat and pooling gathers), and fused pooling
//!   macro-ops.
//! * **Transfer** — *synchronized* (rendezvous) core-to-core `SEND`/`RECV`
//!   plus global-memory `GLOAD`/`GSTORE`. A `SEND` completes only when the
//!   matching `RECV` has been posted; this is the paper's synchronous
//!   communication design point.
//! * **Scalar** — register ALU ops, immediates, branches and jumps used for
//!   loop control and address arithmetic; memory operands of the other
//!   classes are addressed as `register + immediate offset`, so compiled
//!   programs are compact loops rather than unrolled traces.
//!
//! The crate provides the instruction definitions, a fixed-width 128-bit
//! binary encoding ([`encode`]/[`decode`]), a textual assembler and
//! disassembler ([`asm`]), crossbar group descriptors ([`GroupConfig`]) and
//! the [`Program`] container (per-core instruction streams + group
//! configuration + local-memory images) consumed by the simulator.
//!
//! # Example
//!
//! ```rust
//! use pimsim_isa::{Addr, Instruction, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instr = Instruction::Mvm {
//!     group: 3.into(),
//!     dst: Addr::new(Reg::R2, 16)?,
//!     src: Addr::new(Reg::R0, 128)?,
//!     len: 128,
//! };
//! // Canonical assembly text:
//! assert_eq!(instr.to_string(), "mvm g3, [r2+16], [r0+128], 128");
//! // 128-bit binary round-trip:
//! let word = pimsim_isa::encode(&instr)?;
//! assert_eq!(pimsim_isa::decode(word)?, instr);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod cost;
mod encode;
mod error;
mod group;
mod instr;
mod program;
mod reg;

pub use cost::VectorShape;
pub use encode::{decode, encode, encode_program_words};
pub use error::IsaError;
pub use group::{GroupConfig, WeightMatrix};
pub use instr::limits;
pub use instr::{
    Addr, BranchCond, CoreId, GroupId, InstrClass, Instruction, PoolOp, SBinOp, SImmOp, VBinOp,
    VImmOp, VUnOp,
};
pub use program::{CoreProgram, Program, ProgramLimits, ProgramMeta};
pub use reg::Reg;

/// Result alias for fallible ISA operations.
pub type Result<T> = std::result::Result<T, IsaError>;

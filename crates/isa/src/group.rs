//! Crossbar group descriptors — the ISA's *group mechanism*.
//!
//! A weight matrix generally spans many crossbars. Crossbars that belong to
//! the same matrix **and consume the same input vector** form a *group*
//! (paper §II): one `MVM` instruction fires the whole group and all of its
//! crossbars operate in parallel. A matrix tiled into R row-blocks × C
//! col-blocks therefore becomes R groups of C crossbars each; the groups'
//! partial outputs are reduced with vector adds.

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::instr::GroupId;

/// A dense row-major signed-8-bit weight matrix slice held by one group.
///
/// Weight values only matter to the simulator's *functional* mode; the
/// timing/energy model depends solely on the dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightMatrix {
    rows: u32,
    cols: u32,
    data: Vec<i8>,
}

impl WeightMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Validate`] if `data.len() != rows * cols`.
    pub fn new(rows: u32, cols: u32, data: Vec<i8>) -> Result<WeightMatrix, IsaError> {
        if data.len() != (rows as usize) * (cols as usize) {
            return Err(IsaError::Validate {
                core: 0,
                pc: None,
                msg: format!(
                    "weight matrix data length {} does not match {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(WeightMatrix { rows, cols, data })
    }

    /// An all-zero matrix.
    pub fn zeros(rows: u32, cols: u32) -> WeightMatrix {
        WeightMatrix {
            rows,
            cols,
            data: vec![0; rows as usize * cols as usize],
        }
    }

    /// Row count (input dimension).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Column count (output dimension).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: u32, col: u32) -> i8 {
        assert!(
            row < self.rows && col < self.cols,
            "weight index out of bounds"
        );
        self.data[row as usize * self.cols as usize + col as usize]
    }

    /// Sets the weight at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: u32, col: u32, w: i8) {
        assert!(
            row < self.rows && col < self.cols,
            "weight index out of bounds"
        );
        self.data[row as usize * self.cols as usize + col as usize] = w;
    }

    /// Row-major raw data.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Computes `out[j] = Σ_i input[i] * w[i][j]` with 64-bit accumulation,
    /// saturating each output to `i32`. This is the functional-mode MVM.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn mvm(&self, input: &[i32]) -> Vec<i32> {
        assert_eq!(
            input.len(),
            self.rows as usize,
            "mvm input length does not match matrix rows"
        );
        let cols = self.cols as usize;
        let mut acc = vec![0i64; cols];
        for (i, &x) in input.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.data[i * cols..(i + 1) * cols];
            for (a, &w) in acc.iter_mut().zip(row) {
                *a += x as i64 * w as i64;
            }
        }
        acc.into_iter()
            .map(|v| v.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
            .collect()
    }
}

/// Configuration of one crossbar group — the contents of a core's *mapping
/// register* for that group.
///
/// `xbar_ids` lists the physical crossbars (indices within the core's matrix
/// execution unit) that fire together; they must be disjoint across groups.
/// `input_len`/`output_len` give the logical slice dimensions; the timing
/// model derives ADC serialization from `output_len` and the crossbar count,
/// and the structure-hazard rule (paper Fig. 4 discussion) serializes
/// back-to-back `MVM`s that touch the same physical crossbars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// Group id referenced by `MVM` instructions.
    pub id: GroupId,
    /// Logical input length (rows of the held slice).
    pub input_len: u32,
    /// Logical output length (columns of the held slice).
    pub output_len: u32,
    /// Physical crossbar indices within the core that fire in parallel.
    pub xbar_ids: Vec<u32>,
    /// Weight slice for functional simulation (`input_len × output_len`).
    /// `None` runs timing-only.
    pub weights: Option<WeightMatrix>,
}

impl GroupConfig {
    /// Creates a timing-only group configuration.
    pub fn new(id: GroupId, input_len: u32, output_len: u32, xbar_ids: Vec<u32>) -> GroupConfig {
        GroupConfig {
            id,
            input_len,
            output_len,
            xbar_ids,
            weights: None,
        }
    }

    /// Attaches functional weights.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Validate`] if the weight dimensions do not match
    /// `input_len × output_len`.
    pub fn with_weights(mut self, weights: WeightMatrix) -> Result<GroupConfig, IsaError> {
        if weights.rows() != self.input_len || weights.cols() != self.output_len {
            return Err(IsaError::Validate {
                core: 0,
                pc: None,
                msg: format!(
                    "group {} weights are {}x{}, expected {}x{}",
                    self.id,
                    weights.rows(),
                    weights.cols(),
                    self.input_len,
                    self.output_len
                ),
            });
        }
        self.weights = Some(weights);
        Ok(self)
    }

    /// Number of physical crossbars in the group.
    pub fn xbar_count(&self) -> usize {
        self.xbar_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_matrix_shape_checked() {
        assert!(WeightMatrix::new(2, 3, vec![0; 6]).is_ok());
        assert!(WeightMatrix::new(2, 3, vec![0; 5]).is_err());
    }

    #[test]
    fn weight_matrix_accessors() {
        let mut m = WeightMatrix::zeros(2, 2);
        m.set(1, 0, -7);
        assert_eq!(m.get(1, 0), -7);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.data().len(), 4);
    }

    #[test]
    fn mvm_computes_dot_products() {
        // [1 2]   [5]   [1*5+2*6]   [17]
        // [3 4] x [6] = [3*5+4*6] = [39]  (column-major outputs)
        let m = WeightMatrix::new(2, 2, vec![1, 3, 2, 4]).unwrap();
        // rows are inputs: w[i][j]; data row-major: w00=1 w01=3 w10=2 w11=4
        // out[j] = sum_i in[i]*w[i][j]; in=[5,6]
        // out[0] = 5*1 + 6*2 = 17 ; out[1] = 5*3 + 6*4 = 39
        assert_eq!(m.mvm(&[5, 6]), vec![17, 39]);
    }

    #[test]
    fn mvm_saturates() {
        let m = WeightMatrix::new(1, 1, vec![127]).unwrap();
        assert_eq!(m.mvm(&[i32::MAX]), vec![i32::MAX]);
        assert_eq!(m.mvm(&[i32::MIN]), vec![i32::MIN]);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn mvm_length_mismatch_panics() {
        let m = WeightMatrix::zeros(2, 2);
        let _ = m.mvm(&[1]);
    }

    #[test]
    fn group_weight_dims_validated() {
        let g = GroupConfig::new(GroupId(0), 2, 2, vec![0]);
        assert!(g.clone().with_weights(WeightMatrix::zeros(2, 2)).is_ok());
        assert!(g.with_weights(WeightMatrix::zeros(3, 2)).is_err());
    }
}

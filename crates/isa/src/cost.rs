//! Shared per-instruction cost classification.
//!
//! The simulator's `DefaultTiming` and the static bound analyzer in
//! `pimsim-analyze` both need to know, for every vector instruction, how
//! many elements the vector unit touches and how many local-memory reads
//! and writes it performs — the `(len, reads, writes)` triple fed to
//! `CostModel::vector_cost`. Keeping that classification in one place
//! means the two cannot drift: a new vector op priced here is priced the
//! same way in both the event-driven machine and the analytic bound.

use crate::instr::Instruction;

/// The operand shape `CostModel::vector_cost` is priced on: how many
/// elements the vector unit processes and how many local-memory read and
/// write streams the operation performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorShape {
    /// Elements processed by the vector unit.
    pub len: u32,
    /// Local-memory read streams (operand vectors read).
    pub reads: u32,
    /// Local-memory write streams (operand vectors written).
    pub writes: u32,
}

impl VectorShape {
    /// A two-source element-wise operation (`vadd` and friends):
    /// two reads, one write.
    pub fn binary(len: u32) -> VectorShape {
        VectorShape {
            len,
            reads: 2,
            writes: 1,
        }
    }

    /// A one-source element-wise operation (`vrelu`, `vaddi`, …):
    /// one read, one write.
    pub fn unary(len: u32) -> VectorShape {
        VectorShape {
            len,
            reads: 1,
            writes: 1,
        }
    }

    /// A fill: no reads, one write.
    pub fn fill(len: u32) -> VectorShape {
        VectorShape {
            len,
            reads: 0,
            writes: 1,
        }
    }

    /// A strided 2-D copy moving `blocks` blocks of `block_len` elements:
    /// one read and one write over the total moved element count.
    pub fn copy2d(block_len: u32, blocks: u32) -> VectorShape {
        VectorShape {
            len: block_len.saturating_mul(blocks),
            reads: 1,
            writes: 1,
        }
    }

    /// A fused pooling macro-op reducing a `win_w × win_h` window of
    /// `channels`-length pixels: one read and one write over the window's
    /// total element count.
    pub fn pool(channels: u32, win_w: u32, win_h: u32) -> VectorShape {
        VectorShape {
            len: channels.saturating_mul(win_w).saturating_mul(win_h),
            reads: 1,
            writes: 1,
        }
    }
}

impl Instruction {
    /// The [`VectorShape`] this instruction presents to the vector unit,
    /// or `None` for non-vector-class instructions. This is the exact
    /// shape the simulator's timing model prices, shared so the static
    /// bound analyzer cannot drift from it.
    pub fn vector_shape(&self) -> Option<VectorShape> {
        match self {
            Instruction::VBin { len, .. } => Some(VectorShape::binary(*len)),
            Instruction::VImm { len, .. } | Instruction::VUn { len, .. } => {
                Some(VectorShape::unary(*len))
            }
            Instruction::VFill { len, .. } => Some(VectorShape::fill(*len)),
            Instruction::VCopy2d {
                block_len, blocks, ..
            } => Some(VectorShape::copy2d(*block_len, *blocks)),
            Instruction::VPool {
                channels,
                win_w,
                win_h,
                ..
            } => Some(VectorShape::pool(*channels, *win_w, *win_h)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Addr, PoolOp, VBinOp, VImmOp, VUnOp};
    use crate::reg::Reg;

    fn addr(off: i32) -> Addr {
        Addr::new(Reg::R1, off).unwrap()
    }

    #[test]
    fn shapes_match_operand_counts() {
        let vbin = Instruction::VBin {
            op: VBinOp::Add,
            dst: addr(0),
            a: addr(8),
            b: addr(16),
            len: 64,
        };
        assert_eq!(vbin.vector_shape(), Some(VectorShape::binary(64)));

        let vimm = Instruction::VImm {
            op: VImmOp::Mul,
            dst: addr(0),
            src: addr(8),
            imm: 3,
            len: 32,
        };
        assert_eq!(vimm.vector_shape(), Some(VectorShape::unary(32)));

        let vun = Instruction::VUn {
            op: VUnOp::Relu,
            dst: addr(0),
            src: addr(8),
            len: 32,
        };
        assert_eq!(vun.vector_shape(), Some(VectorShape::unary(32)));

        let vfill = Instruction::VFill {
            dst: addr(0),
            value: 0,
            len: 16,
        };
        assert_eq!(vfill.vector_shape(), Some(VectorShape::fill(16)));

        let copy = Instruction::VCopy2d {
            dst: addr(0),
            src: addr(8),
            block_len: 3,
            blocks: 5,
            src_stride: 7,
            dst_stride: 3,
        };
        let shape = copy.vector_shape().unwrap();
        assert_eq!((shape.len, shape.reads, shape.writes), (15, 1, 1));

        let pool = Instruction::VPool {
            op: PoolOp::Max,
            dst: addr(0),
            src: addr(8),
            channels: 4,
            win_w: 2,
            win_h: 3,
            row_stride: 12,
        };
        let shape = pool.vector_shape().unwrap();
        assert_eq!((shape.len, shape.reads, shape.writes), (24, 1, 1));
    }

    #[test]
    fn non_vector_instructions_have_no_shape() {
        assert_eq!(Instruction::Halt.vector_shape(), None);
        assert_eq!(Instruction::Nop.vector_shape(), None);
        let mvm = Instruction::Mvm {
            group: 0.into(),
            dst: addr(0),
            src: addr(8),
            len: 4,
        };
        assert_eq!(mvm.vector_shape(), None);
        let send = Instruction::Send {
            peer: 1.into(),
            src: addr(0),
            len: 4,
            tag: 0,
        };
        assert_eq!(send.vector_shape(), None);
    }
}

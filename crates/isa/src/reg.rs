//! The scalar register file model.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;

/// One of the 32 scalar registers, `r0`–`r31`.
///
/// `r0` always reads as zero and writes to it are discarded, RISC-style;
/// the simulator enforces this, the type only names the register.
///
/// ```rust
/// use pimsim_isa::Reg;
/// let r: Reg = "r17".parse()?;
/// assert_eq!(r.index(), 17);
/// assert_eq!(r.to_string(), "r17");
/// # Ok::<(), pimsim_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "u8", into = "u8")]
pub struct Reg(u8);

/// Number of architectural scalar registers.
pub const NUM_REGS: usize = 32;

impl Reg {
    /// The hardwired-zero register.
    pub const R0: Reg = Reg(0);
    /// General-purpose register `r1`.
    pub const R1: Reg = Reg(1);
    /// General-purpose register `r2`.
    pub const R2: Reg = Reg(2);
    /// General-purpose register `r3`.
    pub const R3: Reg = Reg(3);
    /// General-purpose register `r4`.
    pub const R4: Reg = Reg(4);
    /// General-purpose register `r5`.
    pub const R5: Reg = Reg(5);
    /// General-purpose register `r6`.
    pub const R6: Reg = Reg(6);
    /// General-purpose register `r7`.
    pub const R7: Reg = Reg(7);
    /// General-purpose register `r8`.
    pub const R8: Reg = Reg(8);

    /// Creates a register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index >= 32`.
    pub fn new(index: u8) -> Result<Reg, IsaError> {
        if (index as usize) < NUM_REGS {
            Ok(Reg(index))
        } else {
            Err(IsaError::InvalidRegister(index))
        }
    }

    /// The register index, `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// `true` for the hardwired-zero register `r0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl TryFrom<u8> for Reg {
    type Error = IsaError;
    fn try_from(v: u8) -> Result<Reg, IsaError> {
        Reg::new(v)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Reg, IsaError> {
        let bad = || IsaError::Parse {
            line: 0,
            msg: format!("invalid register name `{s}`"),
        };
        if s == "zero" {
            return Ok(Reg::R0);
        }
        let rest = s.strip_prefix('r').ok_or_else(bad)?;
        let idx: u8 = rest.parse().map_err(|_| bad())?;
        Reg::new(idx).map_err(|_| bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Reg::new(0).is_ok());
        assert!(Reg::new(31).is_ok());
        assert!(matches!(Reg::new(32), Err(IsaError::InvalidRegister(32))));
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for r in Reg::all() {
            let text = r.to_string();
            let back: Reg = text.parse().unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn parse_alias_and_errors() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::R0);
        assert!("r32".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
        assert!("r-1".parse::<Reg>().is_err());
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
    }
}

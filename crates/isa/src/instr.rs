//! Instruction definitions, operand types and canonical assembly formatting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::reg::Reg;

/// Encoding field-width limits. The binary format packs every instruction
/// into a fixed 128-bit word; these constants bound the immediate fields and
/// are enforced at construction/encoding time so the compiler fails loudly
/// instead of emitting unencodable programs.
pub mod limits {
    /// Signed bits for a local/global address offset (`register + offset`).
    pub const ADDR_OFFSET_BITS: u32 = 22;
    /// Unsigned bits for vector/transfer element counts.
    pub const LEN_BITS: u32 = 18;
    /// Unsigned bits for a crossbar group id.
    pub const GROUP_BITS: u32 = 12;
    /// Unsigned bits for a core id.
    pub const CORE_BITS: u32 = 12;
    /// Unsigned bits for a transfer tag.
    pub const TAG_BITS: u32 = 16;
    /// Unsigned bits for 2-D copy block length / block count.
    pub const BLOCK_BITS: u32 = 14;
    /// Signed bits for 2-D copy strides (in elements).
    pub const STRIDE_BITS: u32 = 18;
    /// Signed bits for vector immediates.
    pub const VIMM_BITS: u32 = 24;
    /// Unsigned bits for branch/jump targets (instruction index).
    pub const TARGET_BITS: u32 = 26;
    /// Unsigned bits for pooling window edge lengths.
    pub const WIN_BITS: u32 = 6;
    /// Unsigned bits for pooling channel counts.
    pub const CHAN_BITS: u32 = 14;

    /// Largest encodable unsigned value for `bits` bits.
    pub const fn umax(bits: u32) -> u64 {
        (1u64 << bits) - 1
    }
    /// Largest encodable signed value for `bits` bits.
    pub const fn smax(bits: u32) -> i64 {
        (1i64 << (bits - 1)) - 1
    }
    /// Smallest encodable signed value for `bits` bits.
    pub const fn smin(bits: u32) -> i64 {
        -(1i64 << (bits - 1))
    }
}

/// Identifies a core on the chip (row-major index into the mesh).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The core index as a usize, for indexing per-core tables.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a crossbar group within one core's matrix execution unit.
///
/// Crossbars that hold slices of the same weight matrix *and* consume the
/// same input vector form one group and run in parallel (paper §II).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct GroupId(pub u16);

impl GroupId {
    /// The group index as a usize, for indexing group tables.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for GroupId {
    fn from(v: u16) -> Self {
        GroupId(v)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A memory operand: `base register + signed element offset`.
///
/// Local and global memories are addressed in 32-bit elements. The offset
/// must fit the encoding's [`limits::ADDR_OFFSET_BITS`]-bit signed field.
///
/// ```rust
/// use pimsim_isa::{Addr, Reg};
/// let a = Addr::new(Reg::R3, -8)?;
/// assert_eq!(a.to_string(), "[r3-8]");
/// # Ok::<(), pimsim_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr {
    base: Reg,
    offset: i32,
}

impl Addr {
    /// Creates an address operand.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldRange`] if `offset` exceeds the signed
    /// 22-bit encoding field.
    pub fn new(base: Reg, offset: i32) -> Result<Addr, IsaError> {
        let (lo, hi) = (
            limits::smin(limits::ADDR_OFFSET_BITS),
            limits::smax(limits::ADDR_OFFSET_BITS),
        );
        if (offset as i64) < lo || (offset as i64) > hi {
            return Err(IsaError::FieldRange {
                field: "addr offset",
                value: offset as i64,
                min: lo,
                max: hi,
            });
        }
        Ok(Addr { base, offset })
    }

    /// An absolute address (base `r0`, which reads as zero).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FieldRange`] if `offset` exceeds the offset field.
    pub fn abs(offset: u32) -> Result<Addr, IsaError> {
        let off = i32::try_from(offset).map_err(|_| IsaError::FieldRange {
            field: "addr offset",
            value: offset as i64,
            min: 0,
            max: limits::smax(limits::ADDR_OFFSET_BITS),
        })?;
        Addr::new(Reg::R0, off)
    }

    /// The base register.
    pub fn base(self) -> Reg {
        self.base
    }

    /// The signed element offset.
    pub fn offset(self) -> i32 {
        self.offset
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset >= 0 {
            write!(f, "[{}+{}]", self.base, self.offset)
        } else {
            write!(f, "[{}{}]", self.base, self.offset)
        }
    }
}

/// Two-operand vector arithmetic operations (element-wise, on local memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VBinOp {
    /// Element-wise addition (used for partial-sum reduction and residual add).
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication (Hadamard; used for scale/batch-norm folding).
    Mul,
    /// Element-wise maximum (building block of max pooling).
    Max,
    /// Element-wise minimum.
    Min,
}

impl VBinOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            VBinOp::Add => "vadd",
            VBinOp::Sub => "vsub",
            VBinOp::Mul => "vmul",
            VBinOp::Max => "vmax",
            VBinOp::Min => "vmin",
        }
    }
}

/// Vector-immediate operations: `dst[i] = src[i] op imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VImmOp {
    /// Add a scalar immediate to every element.
    Add,
    /// Multiply every element by a scalar immediate.
    Mul,
    /// Arithmetic shift right by `imm` bits (fixed-point requantization).
    Sra,
}

impl VImmOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            VImmOp::Add => "vaddi",
            VImmOp::Mul => "vmuli",
            VImmOp::Sra => "vsrai",
        }
    }
}

/// One-operand vector operations: `dst[i] = f(src[i])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VUnOp {
    /// Rectified linear unit.
    Relu,
    /// Sigmoid via lookup table (functional model uses a fixed-point LUT).
    Sigmoid,
    /// Hyperbolic tangent via lookup table.
    Tanh,
    /// Plain element copy.
    Copy,
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
}

impl VUnOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            VUnOp::Relu => "vrelu",
            VUnOp::Sigmoid => "vsigmoid",
            VUnOp::Tanh => "vtanh",
            VUnOp::Copy => "vcopy",
            VUnOp::Neg => "vneg",
            VUnOp::Abs => "vabs",
        }
    }
}

/// Pooling reduction kind for the fused [`Instruction::VPool`] macro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolOp {
    /// Max pooling.
    Max,
    /// Average pooling (integer mean, rounded toward zero).
    Avg,
}

impl PoolOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PoolOp::Max => "vpool.max",
            PoolOp::Avg => "vpool.avg",
        }
    }
}

/// Three-register scalar ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 32 bits).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Set-if-less-than (signed): `rd = (rs1 < rs2) as i32`.
    Slt,
    /// Logical shift left by `rs2 & 31`.
    Sll,
    /// Logical shift right by `rs2 & 31`.
    Srl,
}

impl SBinOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SBinOp::Add => "add",
            SBinOp::Sub => "sub",
            SBinOp::Mul => "mul",
            SBinOp::And => "and",
            SBinOp::Or => "or",
            SBinOp::Xor => "xor",
            SBinOp::Slt => "slt",
            SBinOp::Sll => "sll",
            SBinOp::Srl => "srl",
        }
    }
}

/// Register-immediate scalar operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SImmOp {
    /// `rd = rs1 + imm` (with `rs1 = r0` this is `li`).
    Add,
    /// `rd = rs1 * imm`.
    Mul,
    /// `rd = rs1 << imm`.
    Sll,
    /// `rd = rs1 >> imm` (logical).
    Srl,
    /// `rd = rs1 & imm`.
    And,
    /// `rd = rs1 | imm`.
    Or,
    /// `rd = (rs1 < imm) as i32` (signed).
    Slt,
}

impl SImmOp {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SImmOp::Add => "addi",
            SImmOp::Mul => "muli",
            SImmOp::Sll => "slli",
            SImmOp::Srl => "srli",
            SImmOp::And => "andi",
            SImmOp::Or => "ori",
            SImmOp::Slt => "slti",
        }
    }
}

/// Branch comparison conditions (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
}

impl BranchCond {
    /// Canonical mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }
}

/// The four instruction classes of the ISA (paper §II). Each class is served
/// by a dedicated execution unit inside the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Crossbar matrix-vector multiplication.
    Matrix,
    /// Element-wise SIMD on local memory.
    Vector,
    /// Core-to-core and global-memory data movement.
    Transfer,
    /// Register ALU, branches, control.
    Scalar,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Matrix => "matrix",
            InstrClass::Vector => "vector",
            InstrClass::Transfer => "transfer",
            InstrClass::Scalar => "scalar",
        };
        f.write_str(s)
    }
}

/// One machine instruction.
///
/// The `Display` impl renders the canonical assembly syntax accepted by
/// [`crate::asm::parse_instruction`]; `Display` → parse is a lossless
/// round-trip (property-tested).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    // ------------------------------------------------------ matrix class --
    /// Run crossbar group `group`: read `len` input elements from local
    /// memory at `src`, produce the group's `output_len` partial sums at
    /// `dst`. `len` must equal the group's configured `input_len`.
    Mvm {
        /// Which crossbar group to fire.
        group: GroupId,
        /// Local-memory destination of the output vector.
        dst: Addr,
        /// Local-memory source of the input vector.
        src: Addr,
        /// Input vector length in elements.
        len: u32,
    },

    // ------------------------------------------------------ vector class --
    /// `dst[i] = a[i] op b[i]` for `i in 0..len`.
    VBin {
        /// The arithmetic operation.
        op: VBinOp,
        /// Destination vector.
        dst: Addr,
        /// First source vector.
        a: Addr,
        /// Second source vector.
        b: Addr,
        /// Element count.
        len: u32,
    },
    /// `dst[i] = src[i] op imm`.
    VImm {
        /// The operation.
        op: VImmOp,
        /// Destination vector.
        dst: Addr,
        /// Source vector.
        src: Addr,
        /// Scalar immediate.
        imm: i32,
        /// Element count.
        len: u32,
    },
    /// `dst[i] = f(src[i])`.
    VUn {
        /// The unary function.
        op: VUnOp,
        /// Destination vector.
        dst: Addr,
        /// Source vector.
        src: Addr,
        /// Element count.
        len: u32,
    },
    /// `dst[i] = value` for `i in 0..len`.
    VFill {
        /// Destination vector.
        dst: Addr,
        /// Fill value.
        value: i32,
        /// Element count.
        len: u32,
    },
    /// Strided 2-D copy: `blocks` blocks of `block_len` elements;
    /// block `k` moves `src + k*src_stride .. +block_len` to
    /// `dst + k*dst_stride ..`. Implements im2col window assembly, channel
    /// concat and pooling gathers — the layout capability the paper notes
    /// MNSIM2.0 lacks.
    VCopy2d {
        /// Destination base.
        dst: Addr,
        /// Source base.
        src: Addr,
        /// Elements per block.
        block_len: u32,
        /// Number of blocks.
        blocks: u32,
        /// Source stride between consecutive blocks (elements, signed).
        src_stride: i32,
        /// Destination stride between consecutive blocks (elements, signed).
        dst_stride: i32,
    },
    /// Fused pooling macro-op over an NHWC window: reduces a `win_w × win_h`
    /// spatial window of `channels`-length pixel vectors into one pixel.
    /// Window pixel `(wy, wx)` starts at `src + wy*row_stride + wx*channels`.
    VPool {
        /// Max or average reduction.
        op: PoolOp,
        /// Destination pixel vector (`channels` elements).
        dst: Addr,
        /// Top-left window pixel.
        src: Addr,
        /// Channel count (elements per pixel).
        channels: u32,
        /// Window width in pixels.
        win_w: u32,
        /// Window height in pixels.
        win_h: u32,
        /// Elements between vertically adjacent window pixels.
        row_stride: i32,
    },

    // ---------------------------------------------------- transfer class --
    /// Synchronized send: block until the peer posts the matching
    /// `recv` (same `tag`, opposite direction), then move `len` elements
    /// from local `src` to the peer.
    Send {
        /// Destination core.
        peer: CoreId,
        /// Local-memory source.
        src: Addr,
        /// Element count.
        len: u32,
        /// Rendezvous tag (must match the peer's `recv`).
        tag: u16,
    },
    /// Synchronized receive: block until data tagged `tag` from `peer`
    /// arrives; store `len` elements at local `dst`.
    Recv {
        /// Source core.
        peer: CoreId,
        /// Local-memory destination.
        dst: Addr,
        /// Element count.
        len: u32,
        /// Rendezvous tag.
        tag: u16,
    },
    /// Synchronized receive with strided placement: like `recv`, but the
    /// payload is split into `blocks` blocks of `block_len` placed
    /// `dst_stride` apart (used to interleave channel-concat inputs).
    Recv2d {
        /// Source core.
        peer: CoreId,
        /// Local-memory destination base.
        dst: Addr,
        /// Elements per block.
        block_len: u32,
        /// Number of blocks.
        blocks: u32,
        /// Destination stride between blocks (elements, signed).
        dst_stride: i32,
        /// Rendezvous tag.
        tag: u16,
    },
    /// Load `len` elements from global memory at `gaddr` into local `dst`.
    GLoad {
        /// Local-memory destination.
        dst: Addr,
        /// Global-memory source.
        gaddr: Addr,
        /// Element count.
        len: u32,
    },
    /// Store `len` elements from local `src` to global memory at `gaddr`.
    GStore {
        /// Global-memory destination.
        gaddr: Addr,
        /// Local-memory source.
        src: Addr,
        /// Element count.
        len: u32,
    },

    // ------------------------------------------------------ scalar class --
    /// `rd = rs1 op rs2`.
    SBin {
        /// The ALU operation.
        op: SBinOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `rd = rs1 op imm`.
    SImm {
        /// The ALU operation.
        op: SImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// 32-bit immediate.
        imm: i32,
    },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Absolute instruction index to jump to when the condition holds.
        target: u32,
    },
    /// Unconditional jump to absolute instruction index `target`.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// Stop this core's program.
    Halt,
    /// No operation.
    Nop,
}

impl Instruction {
    /// The instruction's class, which selects the execution unit.
    pub fn class(&self) -> InstrClass {
        use Instruction::*;
        match self {
            Mvm { .. } => InstrClass::Matrix,
            VBin { .. }
            | VImm { .. }
            | VUn { .. }
            | VFill { .. }
            | VCopy2d { .. }
            | VPool { .. } => InstrClass::Vector,
            Send { .. } | Recv { .. } | Recv2d { .. } | GLoad { .. } | GStore { .. } => {
                InstrClass::Transfer
            }
            SBin { .. } | SImm { .. } | Branch { .. } | Jump { .. } | Halt | Nop => {
                InstrClass::Scalar
            }
        }
    }

    /// `true` for instructions that may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Jump { .. } | Instruction::Halt
        )
    }

    /// `true` for instructions that end a basic block: conditional
    /// branches, unconditional jumps, and `halt`. This is the block-cut
    /// classification used by control-flow-graph construction.
    pub fn is_terminator(&self) -> bool {
        self.is_control()
    }

    /// The static control-flow target (an absolute instruction index),
    /// for branches and jumps; `None` for every other instruction.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instruction::Branch { target, .. } | Instruction::Jump { target } => Some(*target),
            _ => None,
        }
    }

    /// The scalar register this instruction writes, if any. Only the
    /// scalar ALU classes write registers; note a returned `r0` is
    /// architecturally discarded.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Instruction::SBin { rd, .. } | Instruction::SImm { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Appends every scalar register this instruction reads — ALU and
    /// branch operands plus the base register of every memory operand —
    /// to `out` (duplicates possible, in operand order).
    pub fn uses_regs(&self, out: &mut Vec<Reg>) {
        use Instruction::*;
        match self {
            Mvm { dst, src, .. } => out.extend([dst.base(), src.base()]),
            VBin { dst, a, b, .. } => out.extend([dst.base(), a.base(), b.base()]),
            VImm { dst, src, .. } | VUn { dst, src, .. } | VCopy2d { dst, src, .. } => {
                out.extend([dst.base(), src.base()])
            }
            VPool { dst, src, .. } => out.extend([dst.base(), src.base()]),
            VFill { dst, .. } => out.push(dst.base()),
            Send { src, .. } => out.push(src.base()),
            Recv { dst, .. } | Recv2d { dst, .. } => out.push(dst.base()),
            GLoad { dst, gaddr, .. } => out.extend([dst.base(), gaddr.base()]),
            GStore { gaddr, src, .. } => out.extend([gaddr.base(), src.base()]),
            SBin { rs1, rs2, .. } | Branch { rs1, rs2, .. } => out.extend([*rs1, *rs2]),
            SImm { rs1, .. } => out.push(*rs1),
            Jump { .. } | Halt | Nop => {}
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Mvm {
                group,
                dst,
                src,
                len,
            } => write!(f, "mvm {group}, {dst}, {src}, {len}"),
            VBin {
                op,
                dst,
                a,
                b,
                len,
            } => write!(f, "{} {dst}, {a}, {b}, {len}", op.mnemonic()),
            VImm {
                op,
                dst,
                src,
                imm,
                len,
            } => write!(f, "{} {dst}, {src}, {imm}, {len}", op.mnemonic()),
            VUn { op, dst, src, len } => write!(f, "{} {dst}, {src}, {len}", op.mnemonic()),
            VFill { dst, value, len } => write!(f, "vfill {dst}, {value}, {len}"),
            VCopy2d {
                dst,
                src,
                block_len,
                blocks,
                src_stride,
                dst_stride,
            } => write!(
                f,
                "vcopy2d {dst}, {src}, block={block_len}, blocks={blocks}, sstride={src_stride}, dstride={dst_stride}"
            ),
            VPool {
                op,
                dst,
                src,
                channels,
                win_w,
                win_h,
                row_stride,
            } => write!(
                f,
                "{} {dst}, {src}, ch={channels}, win={win_w}x{win_h}, rstride={row_stride}",
                op.mnemonic()
            ),
            Send {
                peer,
                src,
                len,
                tag,
            } => write!(f, "send {peer}, {src}, {len}, tag={tag}"),
            Recv {
                peer,
                dst,
                len,
                tag,
            } => write!(f, "recv {peer}, {dst}, {len}, tag={tag}"),
            Recv2d {
                peer,
                dst,
                block_len,
                blocks,
                dst_stride,
                tag,
            } => write!(
                f,
                "recv2d {peer}, {dst}, block={block_len}, blocks={blocks}, dstride={dst_stride}, tag={tag}"
            ),
            GLoad { dst, gaddr, len } => write!(f, "gload {dst}, g{gaddr}, {len}"),
            GStore { gaddr, src, len } => write!(f, "gstore g{gaddr}, {src}, {len}"),
            SBin { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            SImm { op, rd, rs1, imm } => write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic()),
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{} {rs1}, {rs2}, {target}", cond.mnemonic()),
            Jump { target } => write!(f, "jmp {target}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(base: Reg, off: i32) -> Addr {
        Addr::new(base, off).unwrap()
    }

    #[test]
    fn classes_cover_all_variants() {
        assert_eq!(
            Instruction::Mvm {
                group: 0.into(),
                dst: addr(Reg::R1, 0),
                src: addr(Reg::R2, 0),
                len: 4
            }
            .class(),
            InstrClass::Matrix
        );
        assert_eq!(
            Instruction::VFill {
                dst: addr(Reg::R1, 0),
                value: 0,
                len: 1
            }
            .class(),
            InstrClass::Vector
        );
        assert_eq!(
            Instruction::Send {
                peer: 1.into(),
                src: addr(Reg::R0, 0),
                len: 1,
                tag: 0
            }
            .class(),
            InstrClass::Transfer
        );
        assert_eq!(Instruction::Halt.class(), InstrClass::Scalar);
        assert!(Instruction::Halt.is_control());
        assert!(!Instruction::Nop.is_control());
    }

    #[test]
    fn addr_offset_range_enforced() {
        assert!(Addr::new(Reg::R1, limits::smax(limits::ADDR_OFFSET_BITS) as i32).is_ok());
        assert!(Addr::new(Reg::R1, limits::smax(limits::ADDR_OFFSET_BITS) as i32 + 1).is_err());
        assert!(Addr::new(Reg::R1, limits::smin(limits::ADDR_OFFSET_BITS) as i32).is_ok());
        assert!(Addr::new(Reg::R1, limits::smin(limits::ADDR_OFFSET_BITS) as i32 - 1).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(addr(Reg::R2, 5).to_string(), "[r2+5]");
        assert_eq!(addr(Reg::R2, -5).to_string(), "[r2-5]");
        let i = Instruction::VBin {
            op: VBinOp::Add,
            dst: addr(Reg::R1, 0),
            a: addr(Reg::R2, 8),
            b: addr(Reg::R3, -8),
            len: 64,
        };
        assert_eq!(i.to_string(), "vadd [r1+0], [r2+8], [r3-8], 64");
        let s = Instruction::Branch {
            cond: BranchCond::Lt,
            rs1: Reg::R4,
            rs2: Reg::R5,
            target: 12,
        };
        assert_eq!(s.to_string(), "blt r4, r5, 12");
        let g = Instruction::GStore {
            gaddr: addr(Reg::R7, 100),
            src: addr(Reg::R0, 3),
            len: 9,
        };
        assert_eq!(g.to_string(), "gstore g[r7+100], [r0+3], 9");
    }

    #[test]
    fn ids_display() {
        assert_eq!(CoreId(7).to_string(), "core7");
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(CoreId(3).as_usize(), 3);
    }

    #[test]
    fn terminators_and_branch_targets() {
        let br = Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::R1,
            rs2: Reg::R2,
            target: 7,
        };
        let jmp = Instruction::Jump { target: 3 };
        assert!(br.is_terminator());
        assert!(jmp.is_terminator());
        assert!(Instruction::Halt.is_terminator());
        assert!(!Instruction::Nop.is_terminator());
        assert_eq!(br.branch_target(), Some(7));
        assert_eq!(jmp.branch_target(), Some(3));
        assert_eq!(Instruction::Halt.branch_target(), None);
        assert_eq!(Instruction::Nop.branch_target(), None);
    }

    #[test]
    fn def_and_use_registers() {
        let sbin = Instruction::SBin {
            op: SBinOp::Add,
            rd: Reg::R3,
            rs1: Reg::R4,
            rs2: Reg::R5,
        };
        assert_eq!(sbin.def_reg(), Some(Reg::R3));
        let mut uses = Vec::new();
        sbin.uses_regs(&mut uses);
        assert_eq!(uses, vec![Reg::R4, Reg::R5]);

        let simm = Instruction::SImm {
            op: SImmOp::Add,
            rd: Reg::R6,
            rs1: Reg::R7,
            imm: 1,
        };
        assert_eq!(simm.def_reg(), Some(Reg::R6));
        uses.clear();
        simm.uses_regs(&mut uses);
        assert_eq!(uses, vec![Reg::R7]);

        // Memory operands contribute their base registers.
        let vbin = Instruction::VBin {
            op: VBinOp::Add,
            dst: addr(Reg::R1, 0),
            a: addr(Reg::R2, 8),
            b: addr(Reg::R3, -8),
            len: 64,
        };
        assert_eq!(vbin.def_reg(), None);
        uses.clear();
        vbin.uses_regs(&mut uses);
        assert_eq!(uses, vec![Reg::R1, Reg::R2, Reg::R3]);

        let gload = Instruction::GLoad {
            dst: addr(Reg::R8, 0),
            gaddr: addr(Reg::R2, 4),
            len: 16,
        };
        uses.clear();
        gload.uses_regs(&mut uses);
        assert_eq!(uses, vec![Reg::R8, Reg::R2]);

        uses.clear();
        Instruction::Halt.uses_regs(&mut uses);
        assert!(uses.is_empty());
        uses.clear();
        Instruction::Jump { target: 0 }.uses_regs(&mut uses);
        assert!(uses.is_empty());
    }
}

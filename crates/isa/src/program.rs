//! The compiled program container consumed by the simulator.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::group::GroupConfig;
use crate::instr::{InstrClass, Instruction};

/// Structural limits used by [`Program::validate`]. These mirror the
/// architecture configuration (core count, crossbars per core, local-memory
/// capacity) without making this crate depend on the `pimsim-arch` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramLimits {
    /// Number of cores on the chip.
    pub cores: u16,
    /// Crossbars per core.
    pub xbars_per_core: u32,
    /// Local memory capacity in 32-bit elements.
    pub local_mem_elems: u32,
    /// Global memory capacity in 32-bit elements.
    pub global_mem_elems: u64,
}

impl ProgramLimits {
    /// Generous limits for tests and tools that only need syntax checking.
    pub fn relaxed() -> ProgramLimits {
        ProgramLimits {
            cores: u16::MAX,
            xbars_per_core: u32::MAX,
            local_mem_elems: u32::MAX,
            global_mem_elems: u64::MAX,
        }
    }
}

/// Free-form metadata describing how a program was produced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramMeta {
    /// Program name (usually the network name).
    pub name: String,
    /// Mapping policy used by the compiler (e.g. `performance-first`).
    pub mapping: String,
    /// Human-readable notes (compiler version, parameters...).
    pub notes: String,
}

/// One core's compiled artifact: instruction stream, crossbar group
/// configuration, and local-memory preload image.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreProgram {
    /// The instruction stream; `pc` indexes into this.
    pub instrs: Vec<Instruction>,
    /// Crossbar group descriptors (mapping registers), indexed by group id.
    pub groups: Vec<GroupConfig>,
    /// Local-memory preload segments: `(start element, values)`.
    pub local_init: Vec<(u32, Vec<i32>)>,
    /// Optional labels for disassembly readability: label → instruction index.
    pub labels: BTreeMap<String, u32>,
    /// Optional per-instruction tags (parallel to `instrs`) attributing each
    /// instruction to a network node, used for per-layer statistics such as
    /// the paper's communication-latency ratio. Empty = untagged.
    #[serde(default)]
    pub instr_tags: Vec<u16>,
}

impl CoreProgram {
    /// `true` if this core has nothing to execute.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Instruction count by class, in `[matrix, vector, transfer, scalar]`
    /// order. Static (not dynamic/executed) counts.
    pub fn class_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for i in &self.instrs {
            match i.class() {
                InstrClass::Matrix => h[0] += 1,
                InstrClass::Vector => h[1] += 1,
                InstrClass::Transfer => h[2] += 1,
                InstrClass::Scalar => h[3] += 1,
            }
        }
        h
    }
}

/// A complete compiled program: one [`CoreProgram`] per core plus metadata.
///
/// Produced by the compiler (or the assembler), validated, then executed by
/// the cycle-accurate simulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Per-core programs, indexed by core id.
    pub cores: Vec<CoreProgram>,
    /// Global-memory preload segments: `(start element, values)`. Used to
    /// stage network inputs for functional simulation.
    #[serde(default)]
    pub global_init: Vec<(u64, Vec<i32>)>,
    /// Provenance metadata.
    pub meta: ProgramMeta,
}

impl Program {
    /// Creates an empty program with `cores` idle cores.
    pub fn with_cores(cores: usize) -> Program {
        Program {
            cores: vec![CoreProgram::default(); cores],
            global_init: Vec::new(),
            meta: ProgramMeta::default(),
        }
    }

    /// Total static instruction count across all cores.
    pub fn total_instructions(&self) -> usize {
        self.cores.iter().map(|c| c.instrs.len()).sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("program serialization cannot fail")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::Parse`] on malformed JSON.
    pub fn from_json(text: &str) -> Result<Program, IsaError> {
        serde_json::from_str(text).map_err(|e| IsaError::Parse {
            line: e.line(),
            msg: e.to_string(),
        })
    }

    /// Structural validation: every branch target in range, every referenced
    /// group defined with matching `MVM` length, group crossbars within the
    /// per-core budget and disjoint across groups, transfer peers in range,
    /// init segments within local memory, and group weight shapes coherent.
    ///
    /// # Errors
    ///
    /// Returns the first [`IsaError::Validate`] found.
    pub fn validate(&self, limits: &ProgramLimits) -> Result<(), IsaError> {
        if self.cores.len() > limits.cores as usize {
            return Err(IsaError::Validate {
                core: 0,
                pc: None,
                msg: format!(
                    "program targets {} cores but the chip has {}",
                    self.cores.len(),
                    limits.cores
                ),
            });
        }
        for (start, values) in &self.global_init {
            let end = start + values.len() as u64;
            if end > limits.global_mem_elems {
                return Err(IsaError::Validate {
                    core: 0,
                    pc: None,
                    msg: format!(
                        "global init segment [{start}, {end}) exceeds global memory of {} elements",
                        limits.global_mem_elems
                    ),
                });
            }
        }
        for (cid, cp) in self.cores.iter().enumerate() {
            let cid16 = cid as u16;
            let err = |pc: Option<u32>, msg: String| IsaError::Validate {
                core: cid16,
                pc,
                msg,
            };

            // Group table coherence.
            let mut used_xbars = std::collections::BTreeSet::new();
            for (gi, g) in cp.groups.iter().enumerate() {
                if g.id.as_usize() != gi {
                    return Err(err(
                        None,
                        format!("group table entry {gi} has id {} (must be dense)", g.id),
                    ));
                }
                if g.xbar_ids.is_empty() {
                    return Err(err(None, format!("group {} has no crossbars", g.id)));
                }
                for &x in &g.xbar_ids {
                    if x >= limits.xbars_per_core {
                        return Err(err(
                            None,
                            format!(
                                "group {} uses crossbar {x} but the core has {}",
                                g.id, limits.xbars_per_core
                            ),
                        ));
                    }
                    if !used_xbars.insert(x) {
                        return Err(err(
                            None,
                            format!("crossbar {x} assigned to more than one group"),
                        ));
                    }
                }
                if let Some(w) = &g.weights {
                    if w.rows() != g.input_len || w.cols() != g.output_len {
                        return Err(err(
                            None,
                            format!(
                                "group {} weights {}x{} mismatch logical {}x{}",
                                g.id,
                                w.rows(),
                                w.cols(),
                                g.input_len,
                                g.output_len
                            ),
                        ));
                    }
                }
            }

            // Init segments.
            for (start, values) in &cp.local_init {
                let end = *start as u64 + values.len() as u64;
                if end > limits.local_mem_elems as u64 {
                    return Err(err(
                        None,
                        format!(
                            "local init segment [{start}, {end}) exceeds local memory of {} elements",
                            limits.local_mem_elems
                        ),
                    ));
                }
            }

            // Labels point into the stream.
            for (name, &target) in &cp.labels {
                if target as usize > cp.instrs.len() {
                    return Err(err(
                        None,
                        format!("label `{name}` points at {target}, past end of program"),
                    ));
                }
            }

            // Tag vector, when present, parallels the instruction stream.
            if !cp.instr_tags.is_empty() && cp.instr_tags.len() != cp.instrs.len() {
                return Err(err(
                    None,
                    format!(
                        "instr_tags has {} entries for {} instructions",
                        cp.instr_tags.len(),
                        cp.instrs.len()
                    ),
                ));
            }

            // Instruction stream.
            let n = cp.instrs.len() as u32;
            for (pc, instr) in cp.instrs.iter().enumerate() {
                let pc32 = pc as u32;
                match instr {
                    Instruction::Branch { target, .. } | Instruction::Jump { target }
                        if *target >= n =>
                    {
                        return Err(err(
                            Some(pc32),
                            format!("control target {target} out of range (program has {n})"),
                        ));
                    }
                    Instruction::Branch { .. } | Instruction::Jump { .. } => {}
                    Instruction::Mvm { group, len, .. } => {
                        let Some(g) = cp.groups.get(group.as_usize()) else {
                            return Err(err(
                                Some(pc32),
                                format!("mvm references undefined {group}"),
                            ));
                        };
                        if *len != g.input_len {
                            return Err(err(
                                Some(pc32),
                                format!(
                                    "mvm len {len} does not match group {} input_len {}",
                                    g.id, g.input_len
                                ),
                            ));
                        }
                    }
                    Instruction::Send { peer, .. }
                    | Instruction::Recv { peer, .. }
                    | Instruction::Recv2d { peer, .. } => {
                        if peer.as_usize() >= self.cores.len() {
                            return Err(err(
                                Some(pc32),
                                format!("transfer peer {peer} out of range"),
                            ));
                        }
                        if peer.as_usize() == cid {
                            return Err(err(Some(pc32), "transfer peer is self".into()));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupConfig, WeightMatrix};
    use crate::instr::{Addr, BranchCond, CoreId, GroupId};
    use crate::reg::Reg;

    fn limits() -> ProgramLimits {
        ProgramLimits {
            cores: 4,
            xbars_per_core: 8,
            local_mem_elems: 1024,
            global_mem_elems: 1 << 20,
        }
    }

    fn addr(off: i32) -> Addr {
        Addr::new(Reg::R1, off).unwrap()
    }

    #[test]
    fn empty_program_is_valid() {
        let p = Program::with_cores(4);
        assert!(p.validate(&limits()).is_ok());
        assert_eq!(p.total_instructions(), 0);
    }

    #[test]
    fn too_many_cores_rejected() {
        let p = Program::with_cores(5);
        assert!(p.validate(&limits()).is_err());
    }

    #[test]
    fn branch_target_checked() {
        let mut p = Program::with_cores(1);
        p.cores[0].instrs = vec![Instruction::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::R0,
            rs2: Reg::R0,
            target: 9,
        }];
        let e = p.validate(&limits()).unwrap_err();
        assert!(e.to_string().contains("control target"));
    }

    #[test]
    fn mvm_group_reference_checked() {
        let mut p = Program::with_cores(1);
        p.cores[0].instrs = vec![Instruction::Mvm {
            group: GroupId(0),
            dst: addr(0),
            src: addr(64),
            len: 16,
        }];
        assert!(p.validate(&limits()).is_err());

        p.cores[0].groups = vec![GroupConfig::new(GroupId(0), 16, 8, vec![0, 1])];
        assert!(p.validate(&limits()).is_ok());

        // Wrong MVM length.
        p.cores[0].instrs = vec![Instruction::Mvm {
            group: GroupId(0),
            dst: addr(0),
            src: addr(64),
            len: 32,
        }];
        assert!(p.validate(&limits()).is_err());
    }

    #[test]
    fn xbar_budget_and_disjointness() {
        let mut p = Program::with_cores(1);
        p.cores[0].groups = vec![
            GroupConfig::new(GroupId(0), 4, 4, vec![0, 1]),
            GroupConfig::new(GroupId(1), 4, 4, vec![1]),
        ];
        let e = p.validate(&limits()).unwrap_err();
        assert!(e.to_string().contains("more than one group"));

        p.cores[0].groups = vec![GroupConfig::new(GroupId(0), 4, 4, vec![99])];
        assert!(p.validate(&limits()).is_err());
    }

    #[test]
    fn transfer_peer_checked() {
        let mut p = Program::with_cores(2);
        p.cores[0].instrs = vec![Instruction::Send {
            peer: CoreId(0),
            src: addr(0),
            len: 4,
            tag: 1,
        }];
        let e = p.validate(&limits()).unwrap_err();
        assert!(e.to_string().contains("self"));

        p.cores[0].instrs = vec![Instruction::Send {
            peer: CoreId(3),
            src: addr(0),
            len: 4,
            tag: 1,
        }];
        assert!(p.validate(&limits()).is_err());
    }

    #[test]
    fn init_segment_bounds_checked() {
        let mut p = Program::with_cores(1);
        p.cores[0].local_init = vec![(1020, vec![1, 2, 3, 4, 5])];
        assert!(p.validate(&limits()).is_err());
        p.cores[0].local_init = vec![(1020, vec![1, 2, 3, 4])];
        assert!(p.validate(&limits()).is_ok());
    }

    #[test]
    fn group_weight_shape_checked() {
        let mut p = Program::with_cores(1);
        let mut g = GroupConfig::new(GroupId(0), 4, 4, vec![0]);
        g.weights = Some(WeightMatrix::zeros(3, 4)); // wrong shape, bypassing with_weights
        p.cores[0].groups = vec![g];
        assert!(p.validate(&limits()).is_err());
    }

    #[test]
    fn global_init_bounds_checked() {
        let mut p = Program::with_cores(1);
        p.global_init = vec![((1 << 20) - 1, vec![1, 2])];
        assert!(p.validate(&limits()).is_err());
        p.global_init = vec![((1 << 20) - 2, vec![1, 2])];
        assert!(p.validate(&limits()).is_ok());
    }

    #[test]
    fn tag_vector_length_checked() {
        let mut p = Program::with_cores(1);
        p.cores[0].instrs = vec![Instruction::Nop, Instruction::Halt];
        p.cores[0].instr_tags = vec![1];
        assert!(p.validate(&limits()).is_err());
        p.cores[0].instr_tags = vec![1, 1];
        assert!(p.validate(&limits()).is_ok());
        p.cores[0].instr_tags = vec![];
        assert!(p.validate(&limits()).is_ok());
    }

    #[test]
    fn json_roundtrip() {
        let mut p = Program::with_cores(2);
        p.meta.name = "demo".into();
        p.cores[1].instrs = vec![Instruction::Halt];
        p.cores[1].labels.insert("end".into(), 0);
        let text = p.to_json();
        let back = Program::from_json(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn malformed_json_is_parse_error() {
        assert!(matches!(
            Program::from_json("{not json"),
            Err(IsaError::Parse { .. })
        ));
    }

    #[test]
    fn class_histogram_counts() {
        let cp = CoreProgram {
            groups: vec![GroupConfig::new(GroupId(0), 4, 4, vec![0])],
            instrs: vec![
                Instruction::Nop,
                Instruction::Halt,
                Instruction::VFill {
                    dst: addr(0),
                    value: 1,
                    len: 4,
                },
            ],
            ..CoreProgram::default()
        };
        assert_eq!(cp.class_histogram(), [0, 1, 0, 2]);
        assert!(!cp.is_empty());
    }
}

//! Fixed-width 128-bit binary instruction encoding.
//!
//! Every instruction packs into one `u128` word: an 8-bit opcode in the
//! least-significant byte, followed by operand fields packed LSB-first in a
//! fixed per-opcode order. Field widths come from [`crate::instr::limits`];
//! encoding fails with [`IsaError::FieldRange`] when a value does not fit,
//! so the compiler can never silently emit a corrupt program.
//!
//! Decoding is the exact inverse and is property-tested to round-trip.

use crate::error::IsaError;
use crate::instr::{
    limits, Addr, BranchCond, CoreId, GroupId, Instruction, PoolOp, SBinOp, SImmOp, VBinOp, VImmOp,
    VUnOp,
};
use crate::program::Program;
use crate::reg::Reg;

// Opcode bytes, grouped by class. Gaps leave room for extensions.
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_JMP: u8 = 0x02;
const OP_BEQ: u8 = 0x03;
const OP_BNE: u8 = 0x04;
const OP_BLT: u8 = 0x05;
const OP_BGE: u8 = 0x06;

const OP_ADD: u8 = 0x10;
const OP_SUB: u8 = 0x11;
const OP_MUL: u8 = 0x12;
const OP_AND: u8 = 0x13;
const OP_OR: u8 = 0x14;
const OP_XOR: u8 = 0x15;
const OP_SLT: u8 = 0x16;
const OP_SLL: u8 = 0x17;
const OP_SRL: u8 = 0x18;

const OP_ADDI: u8 = 0x20;
const OP_MULI: u8 = 0x21;
const OP_SLLI: u8 = 0x22;
const OP_SRLI: u8 = 0x23;
const OP_ANDI: u8 = 0x24;
const OP_ORI: u8 = 0x25;
const OP_SLTI: u8 = 0x26;

const OP_MVM: u8 = 0x30;

const OP_VADD: u8 = 0x40;
const OP_VSUB: u8 = 0x41;
const OP_VMUL: u8 = 0x42;
const OP_VMAX: u8 = 0x43;
const OP_VMIN: u8 = 0x44;
const OP_VADDI: u8 = 0x48;
const OP_VMULI: u8 = 0x49;
const OP_VSRAI: u8 = 0x4A;
const OP_VRELU: u8 = 0x50;
const OP_VSIGMOID: u8 = 0x51;
const OP_VTANH: u8 = 0x52;
const OP_VCOPY: u8 = 0x53;
const OP_VNEG: u8 = 0x54;
const OP_VABS: u8 = 0x55;
const OP_VFILL: u8 = 0x58;
const OP_VCOPY2D: u8 = 0x59;
const OP_VPOOLMAX: u8 = 0x5A;
const OP_VPOOLAVG: u8 = 0x5B;

const OP_SEND: u8 = 0x60;
const OP_RECV: u8 = 0x61;
const OP_RECV2D: u8 = 0x62;
const OP_GLOAD: u8 = 0x63;
const OP_GSTORE: u8 = 0x64;

/// LSB-first bit packer for one 128-bit instruction word.
struct BitWriter {
    word: u128,
    pos: u32,
}

impl BitWriter {
    fn new(opcode: u8) -> Self {
        BitWriter {
            word: opcode as u128,
            pos: 8,
        }
    }

    fn put_u(&mut self, field: &'static str, value: u64, bits: u32) -> Result<(), IsaError> {
        if value > limits::umax(bits) {
            return Err(IsaError::FieldRange {
                field,
                value: value as i64,
                min: 0,
                max: limits::umax(bits) as i64,
            });
        }
        debug_assert!(self.pos + bits <= 128, "instruction word overflow");
        self.word |= (value as u128) << self.pos;
        self.pos += bits;
        Ok(())
    }

    fn put_s(&mut self, field: &'static str, value: i64, bits: u32) -> Result<(), IsaError> {
        let (lo, hi) = (limits::smin(bits), limits::smax(bits));
        if value < lo || value > hi {
            return Err(IsaError::FieldRange {
                field,
                value,
                min: lo,
                max: hi,
            });
        }
        let mask = limits::umax(bits);
        self.put_u(field, (value as u64) & mask, bits)
    }

    fn put_reg(&mut self, r: Reg) -> Result<(), IsaError> {
        self.put_u("reg", r.index() as u64, 5)
    }

    fn put_addr(&mut self, a: Addr) -> Result<(), IsaError> {
        self.put_reg(a.base())?;
        self.put_s("addr offset", a.offset() as i64, limits::ADDR_OFFSET_BITS)
    }

    fn finish(self) -> u128 {
        self.word
    }
}

/// LSB-first bit reader over one 128-bit instruction word.
struct BitReader {
    word: u128,
    pos: u32,
}

impl BitReader {
    fn new(word: u128) -> (u8, Self) {
        ((word & 0xff) as u8, BitReader { word, pos: 8 })
    }

    fn get_u(&mut self, bits: u32) -> u64 {
        let v = (self.word >> self.pos) & (limits::umax(bits) as u128);
        self.pos += bits;
        v as u64
    }

    fn get_s(&mut self, bits: u32) -> i64 {
        let raw = self.get_u(bits);
        // Sign-extend from `bits`.
        let shift = 64 - bits;
        ((raw << shift) as i64) >> shift
    }

    fn get_reg(&mut self) -> Result<Reg, IsaError> {
        Reg::new(self.get_u(5) as u8)
    }

    fn get_addr(&mut self) -> Result<Addr, IsaError> {
        let base = self.get_reg()?;
        let off = self.get_s(limits::ADDR_OFFSET_BITS) as i32;
        Addr::new(base, off)
    }
}

/// Encodes one instruction into its 128-bit word.
///
/// # Errors
///
/// Returns [`IsaError::FieldRange`] if any operand exceeds its encoding
/// field (e.g. a transfer longer than 2^18−1 elements).
pub fn encode(instr: &Instruction) -> Result<u128, IsaError> {
    use Instruction::*;
    let w = match instr {
        Nop => BitWriter::new(OP_NOP),
        Halt => BitWriter::new(OP_HALT),
        Jump { target } => {
            let mut w = BitWriter::new(OP_JMP);
            w.put_u("jump target", *target as u64, limits::TARGET_BITS)?;
            w
        }
        Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let op = match cond {
                BranchCond::Eq => OP_BEQ,
                BranchCond::Ne => OP_BNE,
                BranchCond::Lt => OP_BLT,
                BranchCond::Ge => OP_BGE,
            };
            let mut w = BitWriter::new(op);
            w.put_reg(*rs1)?;
            w.put_reg(*rs2)?;
            w.put_u("branch target", *target as u64, limits::TARGET_BITS)?;
            w
        }
        SBin { op, rd, rs1, rs2 } => {
            let opc = match op {
                SBinOp::Add => OP_ADD,
                SBinOp::Sub => OP_SUB,
                SBinOp::Mul => OP_MUL,
                SBinOp::And => OP_AND,
                SBinOp::Or => OP_OR,
                SBinOp::Xor => OP_XOR,
                SBinOp::Slt => OP_SLT,
                SBinOp::Sll => OP_SLL,
                SBinOp::Srl => OP_SRL,
            };
            let mut w = BitWriter::new(opc);
            w.put_reg(*rd)?;
            w.put_reg(*rs1)?;
            w.put_reg(*rs2)?;
            w
        }
        SImm { op, rd, rs1, imm } => {
            let opc = match op {
                SImmOp::Add => OP_ADDI,
                SImmOp::Mul => OP_MULI,
                SImmOp::Sll => OP_SLLI,
                SImmOp::Srl => OP_SRLI,
                SImmOp::And => OP_ANDI,
                SImmOp::Or => OP_ORI,
                SImmOp::Slt => OP_SLTI,
            };
            let mut w = BitWriter::new(opc);
            w.put_reg(*rd)?;
            w.put_reg(*rs1)?;
            w.put_s("scalar immediate", *imm as i64, 32)?;
            w
        }
        Mvm {
            group,
            dst,
            src,
            len,
        } => {
            let mut w = BitWriter::new(OP_MVM);
            w.put_u("group id", group.0 as u64, limits::GROUP_BITS)?;
            w.put_addr(*dst)?;
            w.put_addr(*src)?;
            w.put_u("mvm len", *len as u64, limits::LEN_BITS)?;
            w
        }
        VBin { op, dst, a, b, len } => {
            let opc = match op {
                VBinOp::Add => OP_VADD,
                VBinOp::Sub => OP_VSUB,
                VBinOp::Mul => OP_VMUL,
                VBinOp::Max => OP_VMAX,
                VBinOp::Min => OP_VMIN,
            };
            let mut w = BitWriter::new(opc);
            w.put_addr(*dst)?;
            w.put_addr(*a)?;
            w.put_addr(*b)?;
            w.put_u("vector len", *len as u64, limits::LEN_BITS)?;
            w
        }
        VImm {
            op,
            dst,
            src,
            imm,
            len,
        } => {
            let opc = match op {
                VImmOp::Add => OP_VADDI,
                VImmOp::Mul => OP_VMULI,
                VImmOp::Sra => OP_VSRAI,
            };
            let mut w = BitWriter::new(opc);
            w.put_addr(*dst)?;
            w.put_addr(*src)?;
            w.put_s("vector immediate", *imm as i64, limits::VIMM_BITS)?;
            w.put_u("vector len", *len as u64, limits::LEN_BITS)?;
            w
        }
        VUn { op, dst, src, len } => {
            let opc = match op {
                VUnOp::Relu => OP_VRELU,
                VUnOp::Sigmoid => OP_VSIGMOID,
                VUnOp::Tanh => OP_VTANH,
                VUnOp::Copy => OP_VCOPY,
                VUnOp::Neg => OP_VNEG,
                VUnOp::Abs => OP_VABS,
            };
            let mut w = BitWriter::new(opc);
            w.put_addr(*dst)?;
            w.put_addr(*src)?;
            w.put_u("vector len", *len as u64, limits::LEN_BITS)?;
            w
        }
        VFill { dst, value, len } => {
            let mut w = BitWriter::new(OP_VFILL);
            w.put_addr(*dst)?;
            w.put_s("fill value", *value as i64, 32)?;
            w.put_u("vector len", *len as u64, limits::LEN_BITS)?;
            w
        }
        VCopy2d {
            dst,
            src,
            block_len,
            blocks,
            src_stride,
            dst_stride,
        } => {
            let mut w = BitWriter::new(OP_VCOPY2D);
            w.put_addr(*dst)?;
            w.put_addr(*src)?;
            w.put_u("block len", *block_len as u64, limits::BLOCK_BITS)?;
            w.put_u("block count", *blocks as u64, limits::BLOCK_BITS)?;
            w.put_s("src stride", *src_stride as i64, limits::STRIDE_BITS)?;
            w.put_s("dst stride", *dst_stride as i64, limits::STRIDE_BITS)?;
            w
        }
        VPool {
            op,
            dst,
            src,
            channels,
            win_w,
            win_h,
            row_stride,
        } => {
            let opc = match op {
                PoolOp::Max => OP_VPOOLMAX,
                PoolOp::Avg => OP_VPOOLAVG,
            };
            let mut w = BitWriter::new(opc);
            w.put_addr(*dst)?;
            w.put_addr(*src)?;
            w.put_u("channels", *channels as u64, limits::CHAN_BITS)?;
            w.put_u("window width", *win_w as u64, limits::WIN_BITS)?;
            w.put_u("window height", *win_h as u64, limits::WIN_BITS)?;
            w.put_s("row stride", *row_stride as i64, limits::STRIDE_BITS)?;
            w
        }
        Send {
            peer,
            src,
            len,
            tag,
        } => {
            let mut w = BitWriter::new(OP_SEND);
            w.put_u("core id", peer.0 as u64, limits::CORE_BITS)?;
            w.put_addr(*src)?;
            w.put_u("transfer len", *len as u64, limits::LEN_BITS)?;
            w.put_u("tag", *tag as u64, limits::TAG_BITS)?;
            w
        }
        Recv {
            peer,
            dst,
            len,
            tag,
        } => {
            let mut w = BitWriter::new(OP_RECV);
            w.put_u("core id", peer.0 as u64, limits::CORE_BITS)?;
            w.put_addr(*dst)?;
            w.put_u("transfer len", *len as u64, limits::LEN_BITS)?;
            w.put_u("tag", *tag as u64, limits::TAG_BITS)?;
            w
        }
        Recv2d {
            peer,
            dst,
            block_len,
            blocks,
            dst_stride,
            tag,
        } => {
            let mut w = BitWriter::new(OP_RECV2D);
            w.put_u("core id", peer.0 as u64, limits::CORE_BITS)?;
            w.put_addr(*dst)?;
            w.put_u("block len", *block_len as u64, limits::BLOCK_BITS)?;
            w.put_u("block count", *blocks as u64, limits::BLOCK_BITS)?;
            w.put_s("dst stride", *dst_stride as i64, limits::STRIDE_BITS)?;
            w.put_u("tag", *tag as u64, limits::TAG_BITS)?;
            w
        }
        GLoad { dst, gaddr, len } => {
            let mut w = BitWriter::new(OP_GLOAD);
            w.put_addr(*dst)?;
            w.put_addr(*gaddr)?;
            w.put_u("transfer len", *len as u64, limits::LEN_BITS)?;
            w
        }
        GStore { gaddr, src, len } => {
            let mut w = BitWriter::new(OP_GSTORE);
            w.put_addr(*gaddr)?;
            w.put_addr(*src)?;
            w.put_u("transfer len", *len as u64, limits::LEN_BITS)?;
            w
        }
    };
    Ok(w.finish())
}

/// Decodes a 128-bit word back into an [`Instruction`].
///
/// # Errors
///
/// Returns [`IsaError::UnknownOpcode`] for unassigned opcode bytes.
pub fn decode(word: u128) -> Result<Instruction, IsaError> {
    use Instruction::*;
    let (opcode, mut r) = BitReader::new(word);
    let instr = match opcode {
        OP_NOP => Nop,
        OP_HALT => Halt,
        OP_JMP => Jump {
            target: r.get_u(limits::TARGET_BITS) as u32,
        },
        OP_BEQ | OP_BNE | OP_BLT | OP_BGE => {
            let cond = match opcode {
                OP_BEQ => BranchCond::Eq,
                OP_BNE => BranchCond::Ne,
                OP_BLT => BranchCond::Lt,
                _ => BranchCond::Ge,
            };
            Branch {
                cond,
                rs1: r.get_reg()?,
                rs2: r.get_reg()?,
                target: r.get_u(limits::TARGET_BITS) as u32,
            }
        }
        OP_ADD | OP_SUB | OP_MUL | OP_AND | OP_OR | OP_XOR | OP_SLT | OP_SLL | OP_SRL => {
            let op = match opcode {
                OP_ADD => SBinOp::Add,
                OP_SUB => SBinOp::Sub,
                OP_MUL => SBinOp::Mul,
                OP_AND => SBinOp::And,
                OP_OR => SBinOp::Or,
                OP_XOR => SBinOp::Xor,
                OP_SLT => SBinOp::Slt,
                OP_SLL => SBinOp::Sll,
                _ => SBinOp::Srl,
            };
            SBin {
                op,
                rd: r.get_reg()?,
                rs1: r.get_reg()?,
                rs2: r.get_reg()?,
            }
        }
        OP_ADDI | OP_MULI | OP_SLLI | OP_SRLI | OP_ANDI | OP_ORI | OP_SLTI => {
            let op = match opcode {
                OP_ADDI => SImmOp::Add,
                OP_MULI => SImmOp::Mul,
                OP_SLLI => SImmOp::Sll,
                OP_SRLI => SImmOp::Srl,
                OP_ANDI => SImmOp::And,
                OP_ORI => SImmOp::Or,
                _ => SImmOp::Slt,
            };
            SImm {
                op,
                rd: r.get_reg()?,
                rs1: r.get_reg()?,
                imm: r.get_s(32) as i32,
            }
        }
        OP_MVM => Mvm {
            group: GroupId(r.get_u(limits::GROUP_BITS) as u16),
            dst: r.get_addr()?,
            src: r.get_addr()?,
            len: r.get_u(limits::LEN_BITS) as u32,
        },
        OP_VADD | OP_VSUB | OP_VMUL | OP_VMAX | OP_VMIN => {
            let op = match opcode {
                OP_VADD => VBinOp::Add,
                OP_VSUB => VBinOp::Sub,
                OP_VMUL => VBinOp::Mul,
                OP_VMAX => VBinOp::Max,
                _ => VBinOp::Min,
            };
            VBin {
                op,
                dst: r.get_addr()?,
                a: r.get_addr()?,
                b: r.get_addr()?,
                len: r.get_u(limits::LEN_BITS) as u32,
            }
        }
        OP_VADDI | OP_VMULI | OP_VSRAI => {
            let op = match opcode {
                OP_VADDI => VImmOp::Add,
                OP_VMULI => VImmOp::Mul,
                _ => VImmOp::Sra,
            };
            VImm {
                op,
                dst: r.get_addr()?,
                src: r.get_addr()?,
                imm: r.get_s(limits::VIMM_BITS) as i32,
                len: r.get_u(limits::LEN_BITS) as u32,
            }
        }
        OP_VRELU | OP_VSIGMOID | OP_VTANH | OP_VCOPY | OP_VNEG | OP_VABS => {
            let op = match opcode {
                OP_VRELU => VUnOp::Relu,
                OP_VSIGMOID => VUnOp::Sigmoid,
                OP_VTANH => VUnOp::Tanh,
                OP_VCOPY => VUnOp::Copy,
                OP_VNEG => VUnOp::Neg,
                _ => VUnOp::Abs,
            };
            VUn {
                op,
                dst: r.get_addr()?,
                src: r.get_addr()?,
                len: r.get_u(limits::LEN_BITS) as u32,
            }
        }
        OP_VFILL => VFill {
            dst: r.get_addr()?,
            value: r.get_s(32) as i32,
            len: r.get_u(limits::LEN_BITS) as u32,
        },
        OP_VCOPY2D => VCopy2d {
            dst: r.get_addr()?,
            src: r.get_addr()?,
            block_len: r.get_u(limits::BLOCK_BITS) as u32,
            blocks: r.get_u(limits::BLOCK_BITS) as u32,
            src_stride: r.get_s(limits::STRIDE_BITS) as i32,
            dst_stride: r.get_s(limits::STRIDE_BITS) as i32,
        },
        OP_VPOOLMAX | OP_VPOOLAVG => VPool {
            op: if opcode == OP_VPOOLMAX {
                PoolOp::Max
            } else {
                PoolOp::Avg
            },
            dst: r.get_addr()?,
            src: r.get_addr()?,
            channels: r.get_u(limits::CHAN_BITS) as u32,
            win_w: r.get_u(limits::WIN_BITS) as u32,
            win_h: r.get_u(limits::WIN_BITS) as u32,
            row_stride: r.get_s(limits::STRIDE_BITS) as i32,
        },
        OP_SEND => Send {
            peer: CoreId(r.get_u(limits::CORE_BITS) as u16),
            src: r.get_addr()?,
            len: r.get_u(limits::LEN_BITS) as u32,
            tag: r.get_u(limits::TAG_BITS) as u16,
        },
        OP_RECV => Recv {
            peer: CoreId(r.get_u(limits::CORE_BITS) as u16),
            dst: r.get_addr()?,
            len: r.get_u(limits::LEN_BITS) as u32,
            tag: r.get_u(limits::TAG_BITS) as u16,
        },
        OP_RECV2D => Recv2d {
            peer: CoreId(r.get_u(limits::CORE_BITS) as u16),
            dst: r.get_addr()?,
            block_len: r.get_u(limits::BLOCK_BITS) as u32,
            blocks: r.get_u(limits::BLOCK_BITS) as u32,
            dst_stride: r.get_s(limits::STRIDE_BITS) as i32,
            tag: r.get_u(limits::TAG_BITS) as u16,
        },
        OP_GLOAD => GLoad {
            dst: r.get_addr()?,
            gaddr: r.get_addr()?,
            len: r.get_u(limits::LEN_BITS) as u32,
        },
        OP_GSTORE => GStore {
            gaddr: r.get_addr()?,
            src: r.get_addr()?,
            len: r.get_u(limits::LEN_BITS) as u32,
        },
        other => return Err(IsaError::UnknownOpcode(other)),
    };
    Ok(instr)
}

/// Encodes every core's instruction stream of `program` into binary words.
///
/// Returns one `Vec<u128>` per core, in core-id order. Useful for computing
/// binary sizes and for tests that exercise the decoder at program scale.
///
/// # Errors
///
/// Propagates the first [`IsaError::FieldRange`] found.
pub fn encode_program_words(program: &Program) -> Result<Vec<Vec<u128>>, IsaError> {
    program
        .cores
        .iter()
        .map(|cp| cp.instrs.iter().map(encode).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Addr;

    fn addr(r: u8, off: i32) -> Addr {
        Addr::new(Reg::new(r).unwrap(), off).unwrap()
    }

    #[test]
    fn roundtrip_representatives() {
        let cases = vec![
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Jump { target: 12345 },
            Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::R3,
                rs2: Reg::R0,
                target: 77,
            },
            Instruction::SBin {
                op: SBinOp::Xor,
                rd: Reg::R1,
                rs1: Reg::R2,
                rs2: Reg::R3,
            },
            Instruction::SImm {
                op: SImmOp::Add,
                rd: Reg::R4,
                rs1: Reg::R0,
                imm: -123456,
            },
            Instruction::Mvm {
                group: GroupId(409),
                dst: addr(1, 100),
                src: addr(2, -100),
                len: 128,
            },
            Instruction::VBin {
                op: VBinOp::Max,
                dst: addr(1, 0),
                a: addr(2, 64),
                b: addr(3, 128),
                len: 262143,
            },
            Instruction::VImm {
                op: VImmOp::Sra,
                dst: addr(1, 5),
                src: addr(1, 5),
                imm: -8,
                len: 7,
            },
            Instruction::VUn {
                op: VUnOp::Sigmoid,
                dst: addr(9, 0),
                src: addr(10, 0),
                len: 1000,
            },
            Instruction::VFill {
                dst: addr(1, 2),
                value: i32::MIN,
                len: 3,
            },
            Instruction::VCopy2d {
                dst: addr(1, 0),
                src: addr(2, 0),
                block_len: 16383,
                blocks: 16383,
                src_stride: -131072,
                dst_stride: 131071,
            },
            Instruction::VPool {
                op: PoolOp::Avg,
                dst: addr(1, 0),
                src: addr(2, 0),
                channels: 512,
                win_w: 3,
                win_h: 3,
                row_stride: 14336,
            },
            Instruction::Send {
                peer: CoreId(63),
                src: addr(5, 17),
                len: 512,
                tag: 65535,
            },
            Instruction::Recv {
                peer: CoreId(0),
                dst: addr(6, -17),
                len: 1,
                tag: 0,
            },
            Instruction::Recv2d {
                peer: CoreId(4095),
                dst: addr(7, 0),
                block_len: 64,
                blocks: 49,
                dst_stride: 256,
                tag: 42,
            },
            Instruction::GLoad {
                dst: addr(1, 0),
                gaddr: addr(8, 2097151),
                len: 4096,
            },
            Instruction::GStore {
                gaddr: addr(8, -2097152),
                src: addr(1, 0),
                len: 4096,
            },
        ];
        for instr in cases {
            let word = encode(&instr).unwrap_or_else(|e| panic!("encode {instr}: {e}"));
            let back = decode(word).unwrap_or_else(|e| panic!("decode {instr}: {e}"));
            assert_eq!(back, instr, "roundtrip mismatch for {instr}");
        }
    }

    #[test]
    fn oversized_fields_rejected() {
        let e = encode(&Instruction::Mvm {
            group: GroupId(5000),
            dst: addr(1, 0),
            src: addr(2, 0),
            len: 1,
        });
        assert!(matches!(
            e,
            Err(IsaError::FieldRange {
                field: "group id",
                ..
            })
        ));

        let e = encode(&Instruction::VBin {
            op: VBinOp::Add,
            dst: addr(1, 0),
            a: addr(2, 0),
            b: addr(3, 0),
            len: 1 << 20,
        });
        assert!(matches!(
            e,
            Err(IsaError::FieldRange {
                field: "vector len",
                ..
            })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(decode(0xFF), Err(IsaError::UnknownOpcode(0xFF))));
    }

    #[test]
    fn opcode_is_low_byte() {
        let w = encode(&Instruction::Halt).unwrap();
        assert_eq!(w & 0xff, OP_HALT as u128);
    }
}

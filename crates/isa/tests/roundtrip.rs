//! Property tests: every instruction survives binary encode/decode and
//! assembly print/parse round-trips.

use pimsim_isa::asm;
use pimsim_isa::{
    decode, encode, Addr, BranchCond, CoreId, GroupId, Instruction, PoolOp, Reg, SBinOp, SImmOp,
    VBinOp, VImmOp, VUnOp,
};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn addr_strategy() -> impl Strategy<Value = Addr> {
    (reg_strategy(), -2_097_152i32..=2_097_151).prop_map(|(r, o)| Addr::new(r, o).unwrap())
}

fn len_strategy() -> impl Strategy<Value = u32> {
    0u32..=262_143
}

prop_compose! {
    fn vbin_op()(i in 0usize..5) -> VBinOp {
        [VBinOp::Add, VBinOp::Sub, VBinOp::Mul, VBinOp::Max, VBinOp::Min][i]
    }
}
prop_compose! {
    fn vimm_op()(i in 0usize..3) -> VImmOp {
        [VImmOp::Add, VImmOp::Mul, VImmOp::Sra][i]
    }
}
prop_compose! {
    fn vun_op()(i in 0usize..6) -> VUnOp {
        [VUnOp::Relu, VUnOp::Sigmoid, VUnOp::Tanh, VUnOp::Copy, VUnOp::Neg, VUnOp::Abs][i]
    }
}
prop_compose! {
    fn sbin_op()(i in 0usize..9) -> SBinOp {
        [SBinOp::Add, SBinOp::Sub, SBinOp::Mul, SBinOp::And, SBinOp::Or,
         SBinOp::Xor, SBinOp::Slt, SBinOp::Sll, SBinOp::Srl][i]
    }
}
prop_compose! {
    fn simm_op()(i in 0usize..7) -> SImmOp {
        [SImmOp::Add, SImmOp::Mul, SImmOp::Sll, SImmOp::Srl, SImmOp::And,
         SImmOp::Or, SImmOp::Slt][i]
    }
}
prop_compose! {
    fn branch_cond()(i in 0usize..4) -> BranchCond {
        [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Ge][i]
    }
}
prop_compose! {
    fn pool_op()(i in 0usize..2) -> PoolOp {
        [PoolOp::Max, PoolOp::Avg][i]
    }
}

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    let stride = -131_072i32..=131_071;
    let block = 0u32..=16_383;
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Halt),
        (0u32..=67_108_863).prop_map(|target| Instruction::Jump { target }),
        (
            branch_cond(),
            reg_strategy(),
            reg_strategy(),
            0u32..=67_108_863
        )
            .prop_map(|(cond, rs1, rs2, target)| Instruction::Branch {
                cond,
                rs1,
                rs2,
                target
            }),
        (sbin_op(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::SBin { op, rd, rs1, rs2 }),
        (simm_op(), reg_strategy(), reg_strategy(), any::<i32>())
            .prop_map(|(op, rd, rs1, imm)| Instruction::SImm { op, rd, rs1, imm }),
        (
            0u16..=4095,
            addr_strategy(),
            addr_strategy(),
            len_strategy()
        )
            .prop_map(|(g, dst, src, len)| Instruction::Mvm {
                group: GroupId(g),
                dst,
                src,
                len
            }),
        (
            vbin_op(),
            addr_strategy(),
            addr_strategy(),
            addr_strategy(),
            len_strategy()
        )
            .prop_map(|(op, dst, a, b, len)| Instruction::VBin { op, dst, a, b, len }),
        (
            vimm_op(),
            addr_strategy(),
            addr_strategy(),
            -8_388_608i32..=8_388_607,
            len_strategy()
        )
            .prop_map(|(op, dst, src, imm, len)| Instruction::VImm {
                op,
                dst,
                src,
                imm,
                len
            }),
        (vun_op(), addr_strategy(), addr_strategy(), len_strategy())
            .prop_map(|(op, dst, src, len)| Instruction::VUn { op, dst, src, len }),
        (addr_strategy(), any::<i32>(), len_strategy())
            .prop_map(|(dst, value, len)| Instruction::VFill { dst, value, len }),
        (
            addr_strategy(),
            addr_strategy(),
            block.clone(),
            block.clone(),
            stride.clone(),
            stride.clone()
        )
            .prop_map(|(dst, src, block_len, blocks, src_stride, dst_stride)| {
                Instruction::VCopy2d {
                    dst,
                    src,
                    block_len,
                    blocks,
                    src_stride,
                    dst_stride,
                }
            }),
        (
            pool_op(),
            addr_strategy(),
            addr_strategy(),
            0u32..=16_383,
            0u32..=63,
            0u32..=63,
            stride.clone()
        )
            .prop_map(|(op, dst, src, channels, win_w, win_h, row_stride)| {
                Instruction::VPool {
                    op,
                    dst,
                    src,
                    channels,
                    win_w,
                    win_h,
                    row_stride,
                }
            }),
        (0u16..=4095, addr_strategy(), len_strategy(), any::<u16>()).prop_map(
            |(c, src, len, tag)| Instruction::Send {
                peer: CoreId(c),
                src,
                len,
                tag
            }
        ),
        (0u16..=4095, addr_strategy(), len_strategy(), any::<u16>()).prop_map(
            |(c, dst, len, tag)| Instruction::Recv {
                peer: CoreId(c),
                dst,
                len,
                tag
            }
        ),
        (
            0u16..=4095,
            addr_strategy(),
            block.clone(),
            block,
            stride,
            any::<u16>()
        )
            .prop_map(|(c, dst, block_len, blocks, dst_stride, tag)| {
                Instruction::Recv2d {
                    peer: CoreId(c),
                    dst,
                    block_len,
                    blocks,
                    dst_stride,
                    tag,
                }
            }),
        (addr_strategy(), addr_strategy(), len_strategy())
            .prop_map(|(dst, gaddr, len)| Instruction::GLoad { dst, gaddr, len }),
        (addr_strategy(), addr_strategy(), len_strategy())
            .prop_map(|(gaddr, src, len)| Instruction::GStore { gaddr, src, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Binary encoding is lossless.
    #[test]
    fn encode_decode_roundtrip(instr in instruction_strategy()) {
        let word = encode(&instr).expect("every generated instruction is encodable");
        let back = decode(word).expect("decode of a valid word succeeds");
        prop_assert_eq!(back, instr);
    }

    /// The canonical assembly text parses back to the same instruction.
    #[test]
    fn display_parse_roundtrip(instr in instruction_strategy()) {
        let text = instr.to_string();
        let back = asm::parse_instruction(&text)
            .unwrap_or_else(|e| panic!("parse of `{text}` failed: {e}"));
        prop_assert_eq!(back, instr);
    }

    /// Encoded words always carry a decodable opcode (no aliasing).
    #[test]
    fn opcode_is_stable(instr in instruction_strategy()) {
        let word = encode(&instr).unwrap();
        let again = encode(&decode(word).unwrap()).unwrap();
        prop_assert_eq!(word, again);
    }
}

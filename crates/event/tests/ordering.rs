//! Property-based tests for kernel determinism and ordering invariants.

use pimsim_event::{Kernel, SimTime};
use proptest::prelude::*;

/// Run a batch of events scheduled at arbitrary times and record the
/// (time, original_index) pairs in execution order.
fn execute(times: &[u64]) -> Vec<(u64, usize)> {
    let mut k = Kernel::new(Vec::new());
    for (i, &t) in times.iter().enumerate() {
        k.schedule_at(SimTime::from_ps(t), move |w: &mut Vec<(u64, usize)>, _| {
            w.push((t, i));
        });
    }
    k.run();
    k.into_world()
}

proptest! {
    /// Events always execute in nondecreasing time order, and ties preserve
    /// scheduling order (stable FIFO).
    #[test]
    fn ordering_invariant(times in proptest::collection::vec(0u64..50, 0..200)) {
        let order = execute(&times);
        prop_assert_eq!(order.len(), times.len());
        for pair in order.windows(2) {
            let (t0, i0) = pair[0];
            let (t1, i1) = pair[1];
            prop_assert!(t0 <= t1, "time went backwards");
            if t0 == t1 {
                prop_assert!(i0 < i1, "same-time events reordered");
            }
        }
    }

    /// Two identical schedules produce identical execution orders.
    #[test]
    fn deterministic_replay(times in proptest::collection::vec(0u64..1000, 0..100)) {
        prop_assert_eq!(execute(&times), execute(&times));
    }

    /// Chained events (each schedules the next) cover every hop exactly once.
    #[test]
    fn chained_events_complete(hops in 1usize..50, step in 1u64..100) {
        let mut k = Kernel::new(0usize);
        fn chain(remaining: usize, step: u64, w: &mut usize, ctx: &mut pimsim_event::EventCtx<usize>) {
            *w += 1;
            if remaining > 0 {
                ctx.schedule_in(SimTime::from_ps(step), move |w, ctx| chain(remaining - 1, step, w, ctx));
            }
        }
        k.schedule_at(SimTime::ZERO, move |w, ctx| chain(hops - 1, step, w, ctx));
        k.run();
        prop_assert_eq!(*k.world(), hops);
        prop_assert_eq!(k.now(), SimTime::from_ps(step * (hops as u64 - 1)));
    }
}

//! Property-based tests for kernel determinism and ordering invariants,
//! exercised through both the typed event path and the closure shim.

use pimsim_event::closure::ClosureKernel;
use pimsim_event::{EventCtx, Kernel, SimTime, World};
use proptest::prelude::*;

/// Records `(time, original_index)` pairs in execution order.
#[derive(Debug, Default)]
struct Recorder(Vec<(u64, usize)>);

impl World for Recorder {
    type Event = (u64, usize);
    fn handle(&mut self, ev: (u64, usize), _: &mut EventCtx<(u64, usize)>) {
        self.0.push(ev);
    }
}

/// Run a batch of typed events scheduled at arbitrary times and record the
/// (time, original_index) pairs in execution order.
fn execute(times: &[u64]) -> Vec<(u64, usize)> {
    let mut k = Kernel::new(Recorder::default());
    for (i, &t) in times.iter().enumerate() {
        k.schedule_at(SimTime::from_ps(t), (t, i));
    }
    k.run();
    k.into_world().0
}

/// The same schedule through the boxed-closure shim.
fn execute_closures(times: &[u64]) -> Vec<(u64, usize)> {
    let mut k = ClosureKernel::new(Vec::new());
    for (i, &t) in times.iter().enumerate() {
        k.schedule_at(SimTime::from_ps(t), move |w: &mut Vec<(u64, usize)>, _| {
            w.push((t, i));
        });
    }
    k.run();
    k.into_state()
}

/// A world that hops `remaining` more times, `step` picoseconds apart.
#[derive(Debug, Default)]
struct Hopper(usize);

#[derive(Debug, Clone, Copy)]
struct Hop {
    remaining: usize,
    step: u64,
}

impl World for Hopper {
    type Event = Hop;
    fn handle(&mut self, ev: Hop, ctx: &mut EventCtx<Hop>) {
        self.0 += 1;
        if ev.remaining > 0 {
            ctx.schedule_in(
                SimTime::from_ps(ev.step),
                Hop {
                    remaining: ev.remaining - 1,
                    step: ev.step,
                },
            );
        }
    }
}

proptest! {
    /// Events always execute in nondecreasing time order, and ties preserve
    /// scheduling order (stable FIFO).
    #[test]
    fn ordering_invariant(times in proptest::collection::vec(0u64..50, 0..200)) {
        let order = execute(&times);
        prop_assert_eq!(order.len(), times.len());
        for pair in order.windows(2) {
            let (t0, i0) = pair[0];
            let (t1, i1) = pair[1];
            prop_assert!(t0 <= t1, "time went backwards");
            if t0 == t1 {
                prop_assert!(i0 < i1, "same-time events reordered");
            }
        }
    }

    /// Two identical schedules produce identical execution orders.
    #[test]
    fn deterministic_replay(times in proptest::collection::vec(0u64..1000, 0..100)) {
        prop_assert_eq!(execute(&times), execute(&times));
    }

    /// The closure shim preserves the typed kernel's ordering exactly.
    #[test]
    fn closure_shim_matches_typed_kernel(times in proptest::collection::vec(0u64..100, 0..100)) {
        prop_assert_eq!(execute(&times), execute_closures(&times));
    }

    /// Chained events (each schedules the next) cover every hop exactly once.
    #[test]
    fn chained_events_complete(hops in 1usize..50, step in 1u64..100) {
        let mut k = Kernel::new(Hopper::default());
        k.schedule_at(SimTime::ZERO, Hop { remaining: hops - 1, step });
        k.run();
        prop_assert_eq!(k.world().0, hops);
        prop_assert_eq!(k.now(), SimTime::from_ps(step * (hops as u64 - 1)));
    }
}

//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or span of) simulated time, with picosecond resolution.
///
/// Picoseconds give headroom for multi-GHz clocks (1 GHz period = 1000 ps)
/// while still covering ~213 days of simulated time in a `u64`.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators below are saturating-free (they panic on overflow in
/// debug builds, as plain integer arithmetic does), because an overflowing
/// simulation clock is a bug worth hearing about.
///
/// ```rust
/// use pimsim_event::SimTime;
/// let t = SimTime::from_ns(3) + SimTime::from_ps(500);
/// assert_eq!(t.as_ps(), 3500);
/// assert_eq!(format!("{t}"), "3.500ns");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (also the `Default`).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from a floating-point nanosecond value, rounding to the
    /// nearest picosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// This time in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time in nanoseconds, as a float (lossless up to 2^53 ps).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in microseconds, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time in milliseconds, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This time in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// `true` iff this is time zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ps")
        } else if ps.is_multiple_of(1_000_000_000) && ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_ns_f64(1.5);
        assert_eq!(t.as_ps(), 1_500);
        assert!((t.as_ns_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_ns_f64_clamps_bad_input() {
        assert_eq!(SimTime::from_ns_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_ns_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!((a * 3).as_ps(), 30_000);
        assert_eq!((a / 2).as_ps(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::ZERO), "0ps");
        assert_eq!(format!("{}", SimTime::from_ps(7)), "7ps");
        assert_eq!(format!("{}", SimTime::from_ns(2)), "2.000ns");
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimTime::from_ms(9)), "9.000ms");
    }

    #[test]
    fn debug_never_empty() {
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}

#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the reproduction's substitute for the SystemC engine used by
//! the PIMSIM-NN paper. It provides exactly the scheduling primitives a
//! cycle-accurate hardware simulator needs:
//!
//! * a simulated clock ([`SimTime`], picosecond resolution),
//! * a priority event queue with **stable same-time ordering** (events
//!   scheduled first run first, like SystemC delta cycles collapsed into a
//!   deterministic FIFO),
//! * **typed, allocation-free events**: the simulated [`World`] declares an
//!   event enum and a `handle` dispatch function; events are stored inline
//!   in the queue, so the hot path never boxes,
//! * a boxed-closure compatibility shim ([`closure::ClosureKernel`]) for
//!   callers that prefer scheduling closures over declaring an event type,
//! * a [`Clock`] helper for cycle/time conversion, and
//! * kernel statistics for debugging and benchmarking.
//!
//! # Example
//!
//! ```rust
//! use pimsim_event::{EventCtx, Kernel, SimTime, World};
//!
//! // The world owns the mutable state and interprets typed events.
//! struct Accumulator(u64);
//!
//! enum Ev {
//!     Add(u64),
//!     AddThenFollowUp(u64),
//! }
//!
//! impl World for Accumulator {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, ctx: &mut EventCtx<Ev>) {
//!         match ev {
//!             Ev::Add(n) => self.0 += n,
//!             Ev::AddThenFollowUp(n) => {
//!                 self.0 += n;
//!                 // Events may schedule follow-up events.
//!                 ctx.schedule_in(SimTime::from_ns(5), Ev::Add(10));
//!             }
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new(Accumulator(0));
//! kernel.schedule_in(SimTime::from_ns(5), Ev::AddThenFollowUp(1));
//! kernel.run();
//! assert_eq!(kernel.world().0, 11);
//! assert_eq!(kernel.now(), SimTime::from_ns(10));
//! ```

mod clock;
pub mod closure;
mod kernel;
mod time;

pub use clock::Clock;
pub use kernel::{EventCtx, Kernel, KernelStats, RunResult, World};
pub use time::SimTime;

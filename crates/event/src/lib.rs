#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the reproduction's substitute for the SystemC engine used by
//! the PIMSIM-NN paper. It provides exactly the scheduling primitives a
//! cycle-accurate hardware simulator needs:
//!
//! * a simulated clock ([`SimTime`], picosecond resolution),
//! * a priority event queue with **stable same-time ordering** (events
//!   scheduled first run first, like SystemC delta cycles collapsed into a
//!   deterministic FIFO),
//! * closure events that mutate a user-supplied *world* state and may
//!   schedule further events,
//! * a [`Clock`] helper for cycle/time conversion, and
//! * kernel statistics and an optional trace hook for debugging.
//!
//! # Example
//!
//! ```rust
//! use pimsim_event::{Kernel, SimTime};
//!
//! // The "world" is whatever state the simulation mutates.
//! let mut kernel = Kernel::new(0u64);
//! kernel.schedule_in(SimTime::from_ns(5), |world, ctx| {
//!     *world += 1;
//!     // Events may schedule follow-up events.
//!     ctx.schedule_in(SimTime::from_ns(5), |world, _| *world += 10);
//! });
//! kernel.run();
//! assert_eq!(*kernel.world(), 11);
//! assert_eq!(kernel.now(), SimTime::from_ns(10));
//! ```

mod clock;
mod kernel;
mod time;

pub use clock::Clock;
pub use kernel::{EventCtx, Kernel, KernelStats, RunResult};
pub use time::SimTime;

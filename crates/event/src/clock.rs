//! Cycle/time conversion for clocked components.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// A fixed-frequency clock used to convert between cycle counts and
/// [`SimTime`]. The cycle-accurate simulator expresses component latencies in
/// cycles of their local clock and lets `Clock` place them on the global
/// picosecond timeline.
///
/// ```rust
/// use pimsim_event::{Clock, SimTime};
/// let clk = Clock::from_ghz(1.0); // 1 GHz -> 1000 ps period
/// assert_eq!(clk.cycles_to_time(3), SimTime::from_ns(3));
/// assert_eq!(clk.time_to_cycles_ceil(SimTime::from_ps(2500)), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// Creates a clock from its period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: u64) -> Self {
        assert!(period_ps > 0, "clock period must be positive");
        Clock { period_ps }
    }

    /// Creates a clock from a frequency in GHz (period rounded to the
    /// nearest picosecond).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(
            ghz.is_finite() && ghz > 0.0,
            "clock frequency must be positive, got {ghz}"
        );
        let period = (1000.0 / ghz).round().max(1.0) as u64;
        Clock { period_ps: period }
    }

    /// Creates a clock from a frequency in MHz.
    pub fn from_mhz(mhz: f64) -> Self {
        Clock::from_ghz(mhz / 1000.0)
    }

    /// The clock period.
    pub fn period(&self) -> SimTime {
        SimTime::from_ps(self.period_ps)
    }

    /// The clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        1000.0 / self.period_ps as f64
    }

    /// The duration of `cycles` cycles.
    pub fn cycles_to_time(&self, cycles: u64) -> SimTime {
        SimTime::from_ps(self.period_ps * cycles)
    }

    /// How many whole cycles cover `t` (rounded up).
    pub fn time_to_cycles_ceil(&self, t: SimTime) -> u64 {
        t.as_ps().div_ceil(self.period_ps)
    }

    /// The first clock edge at or after `t`.
    pub fn edge_at_or_after(&self, t: SimTime) -> SimTime {
        let c = t.as_ps().div_ceil(self.period_ps);
        SimTime::from_ps(c * self.period_ps)
    }

    /// The cycle index containing `t` (edge at `t` belongs to that cycle).
    pub fn cycle_index(&self, t: SimTime) -> u64 {
        t.as_ps() / self.period_ps
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.freq_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_to_period() {
        assert_eq!(Clock::from_ghz(1.0).period(), SimTime::from_ps(1000));
        assert_eq!(Clock::from_ghz(2.0).period(), SimTime::from_ps(500));
        assert_eq!(Clock::from_mhz(500.0).period(), SimTime::from_ps(2000));
    }

    #[test]
    fn cycle_conversions_roundtrip() {
        let clk = Clock::from_ghz(1.0);
        for c in [0u64, 1, 7, 1000] {
            assert_eq!(clk.time_to_cycles_ceil(clk.cycles_to_time(c)), c);
        }
    }

    #[test]
    fn ceil_rounds_up() {
        let clk = Clock::from_period_ps(1000);
        assert_eq!(clk.time_to_cycles_ceil(SimTime::from_ps(1)), 1);
        assert_eq!(clk.time_to_cycles_ceil(SimTime::from_ps(1001)), 2);
        assert_eq!(clk.time_to_cycles_ceil(SimTime::ZERO), 0);
    }

    #[test]
    fn edges_align() {
        let clk = Clock::from_period_ps(400);
        assert_eq!(clk.edge_at_or_after(SimTime::from_ps(0)), SimTime::ZERO);
        assert_eq!(
            clk.edge_at_or_after(SimTime::from_ps(399)),
            SimTime::from_ps(400)
        );
        assert_eq!(
            clk.edge_at_or_after(SimTime::from_ps(400)),
            SimTime::from_ps(400)
        );
        assert_eq!(clk.cycle_index(SimTime::from_ps(799)), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_rejected() {
        let _ = Clock::from_period_ps(0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_frequency_rejected() {
        let _ = Clock::from_ghz(0.0);
    }
}

//! A boxed-closure compatibility shim over the typed kernel.
//!
//! The primary [`Kernel`] dispatches typed [`World::Event`] values
//! without allocation. Some
//! callers — quick experiments, tests, benchmarks comparing against the
//! old engine — still want the "schedule a closure" style. This module
//! packages that style as an ordinary [`World`] whose event type is a
//! boxed `FnOnce`, paying the allocation the typed path avoids.
//!
//! ```rust
//! use pimsim_event::closure::ClosureKernel;
//! use pimsim_event::SimTime;
//!
//! let mut k = ClosureKernel::new(0u64);
//! k.schedule_in(SimTime::from_ns(5), |state, ctx| {
//!     *state += 1;
//!     ctx.schedule_fn_in(SimTime::from_ns(5), |state, _| *state += 10);
//! });
//! k.run();
//! assert_eq!(*k.state(), 11);
//! assert_eq!(k.now(), SimTime::from_ns(10));
//! ```

use crate::{EventCtx, Kernel, KernelStats, RunResult, SimTime, World};

/// The boxed handler a [`ClosureEvent`] carries.
type BoxedHandler<S> = Box<dyn FnOnce(&mut S, &mut ClosureCtx<S>)>;

/// A one-shot closure event over state `S`.
pub struct ClosureEvent<S>(BoxedHandler<S>);

impl<S> ClosureEvent<S> {
    /// Boxes `f` as an event.
    pub fn new<F>(f: F) -> Self
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        ClosureEvent(Box::new(f))
    }
}

/// The scheduling context handed to closure events.
pub type ClosureCtx<S> = EventCtx<ClosureEvent<S>>;

impl<S> ClosureCtx<S> {
    /// Schedules closure `f` at absolute time `at` (see
    /// [`EventCtx::schedule_at`]).
    pub fn schedule_fn_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        self.schedule_at(at, ClosureEvent::new(f));
    }

    /// Schedules closure `f` after `delay` (see [`EventCtx::schedule_in`]).
    pub fn schedule_fn_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        self.schedule_in(delay, ClosureEvent::new(f));
    }

    /// Schedules closure `f` at the current time, after events already
    /// buffered for this instant (see [`EventCtx::schedule_now`]).
    pub fn schedule_fn_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        self.schedule_now(ClosureEvent::new(f));
    }
}

/// A [`World`] whose events are boxed closures mutating `S`.
pub struct Closures<S>(S);

impl<S> World for Closures<S> {
    type Event = ClosureEvent<S>;
    fn handle(&mut self, ev: ClosureEvent<S>, ctx: &mut ClosureCtx<S>) {
        (ev.0)(&mut self.0, ctx)
    }
}

/// A kernel scheduling boxed closures over a plain state `S` — the old
/// engine's API, now a thin wrapper over the typed [`Kernel`].
pub struct ClosureKernel<S>(Kernel<Closures<S>>);

impl<S> ClosureKernel<S> {
    /// Creates a kernel at time zero owning `state`.
    pub fn new(state: S) -> Self {
        ClosureKernel(Kernel::new(Closures(state)))
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.0.now()
    }

    /// Shared access to the state.
    pub fn state(&self) -> &S {
        &self.0.world().0
    }

    /// Exclusive access to the state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.0.world_mut().0
    }

    /// Consumes the kernel, returning the final state.
    pub fn into_state(self) -> S {
        self.0.into_world().0
    }

    /// Counters for executed/scheduled events and queue depth.
    pub fn stats(&self) -> KernelStats {
        self.0.stats()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.0.pending()
    }

    /// Schedules closure `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        self.0.schedule_at(at, ClosureEvent::new(f));
    }

    /// Schedules closure `f` after a relative `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut ClosureCtx<S>) + 'static,
    {
        self.0.schedule_in(delay, ClosureEvent::new(f));
    }

    /// Executes the single earliest pending event (see
    /// [`Kernel::step`]).
    pub fn step(&mut self) -> bool {
        self.0.step()
    }

    /// Runs until the queue is empty or an event requests a stop.
    pub fn run(&mut self) -> RunResult {
        self.0.run()
    }

    /// Runs events up to `horizon` (see [`Kernel::run_until`]).
    pub fn run_until(&mut self, horizon: SimTime) -> RunResult {
        self.0.run_until(horizon)
    }

    /// Runs at most `max_steps` events.
    pub fn run_steps(&mut self, max_steps: u64) -> RunResult {
        self.0.run_steps(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_run_in_order_with_follow_ups() {
        let mut k = ClosureKernel::new(Vec::<u32>::new());
        k.schedule_at(SimTime::from_ns(2), |v, _| v.push(2));
        k.schedule_at(SimTime::from_ns(1), |v, ctx| {
            v.push(1);
            ctx.schedule_fn_in(SimTime::from_ns(5), |v, ctx| {
                v.push(3);
                ctx.schedule_fn_now(|v, _| v.push(4));
            });
        });
        assert_eq!(k.run(), RunResult::Exhausted);
        assert_eq!(*k.state(), [1, 2, 3, 4]);
        assert_eq!(k.now(), SimTime::from_ns(6));
        assert_eq!(k.stats().executed, 4);
    }

    #[test]
    fn same_time_closures_are_fifo() {
        let mut k = ClosureKernel::new(Vec::<u32>::new());
        for i in 0..50 {
            k.schedule_at(SimTime::from_ns(3), move |v, _| v.push(i));
        }
        k.run();
        assert_eq!(*k.state(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_accessors_roundtrip() {
        let mut k = ClosureKernel::new(7u8);
        *k.state_mut() += 1;
        assert!(!k.step());
        assert_eq!(k.pending(), 0);
        assert_eq!(k.into_state(), 8);
    }

    #[test]
    fn stop_and_step_budget_propagate() {
        let mut k = ClosureKernel::new(0u32);
        for i in 1..=5u64 {
            k.schedule_at(SimTime::from_ns(i), |s, _| *s += 1);
        }
        assert_eq!(k.run_steps(2), RunResult::StepBudget);
        k.schedule_in(SimTime::from_ns(1), |s, ctx| {
            *s += 10;
            ctx.stop();
        });
        assert_eq!(k.run(), RunResult::Stopped);
        assert_eq!(k.run_until(SimTime::from_ns(100)), RunResult::Exhausted);
        assert_eq!(*k.state(), 15);
    }
}

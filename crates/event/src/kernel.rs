//! The typed event queue and dispatch loop.
//!
//! Events are plain values of the world's [`World::Event`] type, stored
//! inline in the priority queue — scheduling allocates nothing per event
//! (the queue and the pending buffer amortize like any `Vec`). The
//! boxed-closure style the kernel used to force on every consumer survives
//! as an opt-in compatibility shim in [`crate::closure`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::SimTime;

/// A simulated world: the state mutated by events, plus the dispatch
/// function that interprets them.
///
/// The kernel owns the world and hands every popped event to
/// [`World::handle`] together with an [`EventCtx`] for scheduling
/// follow-ups. Because events are data — not closures capturing `&mut`
/// state — handlers are statically alias-free and the queue never boxes.
///
/// ```rust
/// use pimsim_event::{EventCtx, Kernel, SimTime, World};
///
/// struct Counter(u64);
/// enum Tick {
///     Once,
///     Chain { left: u64 },
/// }
///
/// impl World for Counter {
///     type Event = Tick;
///     fn handle(&mut self, ev: Tick, ctx: &mut EventCtx<Tick>) {
///         self.0 += 1;
///         if let Tick::Chain { left } = ev {
///             if left > 0 {
///                 ctx.schedule_in(SimTime::from_ns(1), Tick::Chain { left: left - 1 });
///             }
///         }
///     }
/// }
///
/// let mut k = Kernel::new(Counter(0));
/// k.schedule_at(SimTime::ZERO, Tick::Once);
/// k.schedule_at(SimTime::from_ns(5), Tick::Chain { left: 2 });
/// k.run();
/// assert_eq!(k.world().0, 4);
/// assert_eq!(k.now(), SimTime::from_ns(7));
/// ```
pub trait World {
    /// The vocabulary of events this world responds to.
    type Event;

    /// Executes one event at time `ctx.now()`.
    fn handle(&mut self, ev: Self::Event, ctx: &mut EventCtx<Self::Event>);
}

/// A scheduled event, stored inline (no boxing).
struct Scheduled<E> {
    time: SimTime,
    /// Monotone sequence number; breaks ties so same-time events run FIFO.
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Context handed to every event handler, used to schedule follow-up events
/// and to stop the simulation.
///
/// New events land in an index-ordered pending buffer and are merged into
/// the kernel queue after the handler returns — in buffer order, so
/// same-time follow-ups keep their scheduling order (deterministic FIFO)
/// and handlers never alias the live queue. The buffer's backing store is
/// owned by the kernel and reused across events, so steady-state
/// scheduling performs no allocation.
pub struct EventCtx<E> {
    now: SimTime,
    buffered: Vec<(SimTime, E)>,
    stop: bool,
}

impl<E> EventCtx<E> {
    /// The current simulation time (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: simulated causality
    /// violations are always bugs.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.buffered.push((at, ev));
    }

    /// Schedules `ev` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, ev: E) {
        let at = self.now + delay;
        self.buffered.push((at, ev));
    }

    /// Schedules `ev` at the current time, after all other events already
    /// buffered for this instant (deterministic FIFO).
    pub fn schedule_now(&mut self, ev: E) {
        self.buffered.push((self.now, ev));
    }

    /// Requests that the kernel stop after the current event completes.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// The events the running handler has scheduled so far, in scheduling
    /// order (the order their sequence numbers will be assigned in).
    ///
    /// This is the observation point for engines that record a handler's
    /// follow-ups — a compiled/replay engine must reproduce exactly this
    /// list, in this order, to keep the kernel's deterministic (time, seq)
    /// stream byte-identical.
    pub fn scheduled(&self) -> &[(SimTime, E)] {
        &self.buffered
    }
}

/// Counters describing what a [`Kernel`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Events dispatched.
    pub executed: u64,
    /// Events scheduled (including those not yet dispatched).
    pub scheduled: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_depth: usize,
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The event queue drained completely.
    Exhausted,
    /// An event handler called [`EventCtx::stop`].
    Stopped,
    /// `run_until` reached its horizon with events still pending.
    Horizon,
    /// `run_steps` executed its step budget with events still pending.
    StepBudget,
}

/// A deterministic discrete-event simulation kernel that owns a simulated
/// [`World`] and a time-ordered queue of its typed events.
///
/// Determinism guarantee: events execute in nondecreasing time order, and
/// events with equal timestamps execute in the exact order they were
/// scheduled, regardless of heap internals.
///
/// ```rust
/// use pimsim_event::{EventCtx, Kernel, SimTime, World};
///
/// struct Log(Vec<u32>);
/// impl World for Log {
///     type Event = u32;
///     fn handle(&mut self, ev: u32, _: &mut EventCtx<u32>) {
///         self.0.push(ev);
///     }
/// }
/// let mut k = Kernel::new(Log(Vec::new()));
/// k.schedule_at(SimTime::from_ns(2), 2);
/// k.schedule_at(SimTime::from_ns(1), 1);
/// k.run();
/// assert_eq!(k.world().0, [1, 2]);
/// ```
pub struct Kernel<W: World> {
    world: W,
    queue: BinaryHeap<Scheduled<W::Event>>,
    now: SimTime,
    seq: u64,
    stats: KernelStats,
    stop_requested: bool,
    /// Reusable backing store for the [`EventCtx`] pending buffer.
    scratch: Vec<(SimTime, W::Event)>,
}

impl<W: World + fmt::Debug> fmt::Debug for Kernel<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .field("world", &self.world)
            .finish()
    }
}

impl<W: World> Kernel<W> {
    /// Creates a kernel at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Kernel {
            world,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: KernelStats::default(),
            stop_requested: false,
            scratch: Vec::new(),
        }
    }

    /// The current simulation time (timestamp of the last executed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state (e.g. to pre-load memories).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the kernel, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Counters for executed/scheduled events and queue depth.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    fn push(&mut self, time: SimTime, ev: W::Event) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.scheduled += 1;
        self.queue.push(Scheduled { time, seq, ev });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at(&mut self, at: SimTime, ev: W::Event) {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.push(at, ev);
    }

    /// Schedules `ev` after a relative `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, ev: W::Event) {
        let at = self.now + delay;
        self.push(at, ev);
    }

    /// Executes the single earliest pending event. Returns `false` if the
    /// queue was empty (time does not advance), `true` otherwise.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "heap yielded an event from the past");
        self.now = ev.time;
        self.stats.executed += 1;
        let mut ctx = EventCtx {
            now: self.now,
            buffered: std::mem::take(&mut self.scratch),
            stop: false,
        };
        self.world.handle(ev.ev, &mut ctx);
        let EventCtx {
            mut buffered, stop, ..
        } = ctx;
        // Merge in index order so same-time follow-ups stay FIFO.
        for (t, e) in buffered.drain(..) {
            self.push(t, e);
        }
        self.scratch = buffered;
        if stop {
            self.stop_requested = true;
        }
        true
    }

    /// Runs until the queue is empty or an event requests a stop.
    pub fn run(&mut self) -> RunResult {
        loop {
            if !self.step() {
                return RunResult::Exhausted;
            }
            if self.take_stop() {
                return RunResult::Stopped;
            }
        }
    }

    /// Runs events with timestamps `<= horizon`, then advances the clock to
    /// `horizon` if it is beyond the last executed event. Pending later
    /// events stay queued.
    pub fn run_until(&mut self, horizon: SimTime) -> RunResult {
        loop {
            match self.peek_next_time() {
                Some(t) if t <= horizon => {
                    self.step();
                    if self.take_stop() {
                        return RunResult::Stopped;
                    }
                }
                Some(_) => {
                    self.now = self.now.max(horizon);
                    return RunResult::Horizon;
                }
                None => {
                    self.now = self.now.max(horizon);
                    return RunResult::Exhausted;
                }
            }
        }
    }

    /// Runs at most `max_steps` events.
    pub fn run_steps(&mut self, max_steps: u64) -> RunResult {
        for _ in 0..max_steps {
            if !self.step() {
                return RunResult::Exhausted;
            }
            if self.take_stop() {
                return RunResult::Stopped;
            }
        }
        if self.queue.is_empty() {
            RunResult::Exhausted
        } else {
            RunResult::StepBudget
        }
    }

    fn take_stop(&mut self) -> bool {
        std::mem::take(&mut self.stop_requested)
    }

    /// `true` if the last executed event requested a stop that has not yet
    /// been consumed by a run loop.
    pub fn stop_pending(&self) -> bool {
        self.stop_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records event payloads in execution order.
    #[derive(Debug, Default)]
    struct Log(Vec<u32>);

    impl World for Log {
        type Event = u32;
        fn handle(&mut self, ev: u32, _: &mut EventCtx<u32>) {
            self.0.push(ev);
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut k = Kernel::new(Log::default());
        k.schedule_at(SimTime::from_ns(3), 3);
        k.schedule_at(SimTime::from_ns(1), 1);
        k.schedule_at(SimTime::from_ns(2), 2);
        assert_eq!(k.run(), RunResult::Exhausted);
        assert_eq!(k.world().0, [1, 2, 3]);
        assert_eq!(k.now(), SimTime::from_ns(3));
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut k = Kernel::new(Log::default());
        for i in 0..100 {
            k.schedule_at(SimTime::from_ns(5), i);
        }
        k.run();
        assert_eq!(k.world().0, (0..100).collect::<Vec<_>>());
    }

    /// A world whose events schedule follow-up events.
    #[derive(Debug, Default)]
    struct Chained(u64);

    #[derive(Debug)]
    enum ChainEv {
        First,
        Second,
        Third,
    }

    impl World for Chained {
        type Event = ChainEv;
        fn handle(&mut self, ev: ChainEv, ctx: &mut EventCtx<ChainEv>) {
            match ev {
                ChainEv::First => {
                    self.0 += 1;
                    ctx.schedule_in(SimTime::from_ns(2), ChainEv::Second);
                }
                ChainEv::Second => {
                    self.0 += 10;
                    ctx.schedule_now(ChainEv::Third);
                }
                ChainEv::Third => self.0 += 100,
            }
        }
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut k = Kernel::new(Chained::default());
        k.schedule_at(SimTime::from_ns(1), ChainEv::First);
        k.run();
        assert_eq!(k.world().0, 111);
        assert_eq!(k.now(), SimTime::from_ns(3));
    }

    /// Pushes its event; `Stop` also halts the run loop.
    #[derive(Debug, Default)]
    struct Stopper(Vec<u32>);

    impl World for Stopper {
        type Event = (u32, bool);
        fn handle(&mut self, (v, stop): (u32, bool), ctx: &mut EventCtx<(u32, bool)>) {
            self.0.push(v);
            if stop {
                ctx.stop();
            }
        }
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut k = Kernel::new(Log::default());
        for ns in [1u64, 2, 8] {
            k.schedule_at(SimTime::from_ns(ns), ns as u32);
        }
        let r = k.run_until(SimTime::from_ns(4));
        assert_eq!(r, RunResult::Horizon);
        assert_eq!(k.world().0, [1, 2]);
        assert_eq!(k.now(), SimTime::from_ns(4));
        assert_eq!(k.pending(), 1);
        assert_eq!(k.run_until(SimTime::from_ns(100)), RunResult::Exhausted);
        assert_eq!(k.now(), SimTime::from_ns(100));
    }

    #[test]
    fn stop_halts_run() {
        let mut k = Kernel::new(Stopper::default());
        k.schedule_at(SimTime::from_ns(1), (1, false));
        k.schedule_at(SimTime::from_ns(2), (2, true));
        k.schedule_at(SimTime::from_ns(3), (3, false));
        assert_eq!(k.run(), RunResult::Stopped);
        assert_eq!(k.world().0, [1, 2]);
        assert_eq!(k.pending(), 1);
        // A subsequent run resumes.
        assert_eq!(k.run(), RunResult::Exhausted);
        assert_eq!(k.world().0, [1, 2, 3]);
    }

    #[test]
    fn run_steps_respects_budget() {
        let mut k = Kernel::new(Log::default());
        for i in 0..10u64 {
            k.schedule_at(SimTime::from_ns(i + 1), i as u32);
        }
        assert_eq!(k.run_steps(4), RunResult::StepBudget);
        assert_eq!(k.world().0.len(), 4);
        assert_eq!(k.run_steps(100), RunResult::Exhausted);
        assert_eq!(k.world().0.len(), 10);
    }

    #[test]
    fn stats_track_activity() {
        let mut k = Kernel::new(Chained::default());
        k.schedule_at(SimTime::from_ns(1), ChainEv::First);
        k.schedule_at(SimTime::from_ns(1), ChainEv::Third);
        k.run();
        let s = k.stats();
        assert_eq!(s.executed, 4);
        assert_eq!(s.scheduled, 4);
        assert!(s.max_queue_depth >= 2);
    }

    /// Schedules an event in the past from inside a handler.
    #[derive(Debug)]
    struct Causality;

    impl World for Causality {
        type Event = bool;
        fn handle(&mut self, trigger: bool, ctx: &mut EventCtx<bool>) {
            if trigger {
                ctx.schedule_at(SimTime::from_ns(1), false);
            }
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut k = Kernel::new(Causality);
        k.schedule_at(SimTime::from_ns(5), true);
        k.run();
    }

    #[test]
    fn step_on_empty_queue_is_noop() {
        let mut k = Kernel::new(Log::default());
        assert!(!k.step());
        assert_eq!(k.now(), SimTime::ZERO);
        assert!(k.into_world().0.is_empty());
    }
}

//! The event queue and dispatch loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::SimTime;

/// A scheduled closure event. Boxed because events are heterogeneous.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventCtx<W>)>;

struct Scheduled<W> {
    time: SimTime,
    /// Monotone sequence number; breaks ties so same-time events run FIFO.
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Context handed to every event handler, used to schedule follow-up events
/// and to stop the simulation.
///
/// New events are buffered here and merged into the kernel queue after the
/// handler returns; this keeps handlers free of any aliasing with the queue.
pub struct EventCtx<W> {
    now: SimTime,
    buffered: Vec<(SimTime, EventFn<W>)>,
    stop: bool,
}

impl<W> EventCtx<W> {
    /// The current simulation time (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: simulated causality
    /// violations are always bugs.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut EventCtx<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.buffered.push((at, Box::new(f)));
    }

    /// Schedules `f` after a relative `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut EventCtx<W>) + 'static,
    {
        let at = self.now + delay;
        self.buffered.push((at, Box::new(f)));
    }

    /// Schedules `f` at the current time, after all other events already
    /// buffered for this instant (deterministic FIFO).
    pub fn schedule_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut W, &mut EventCtx<W>) + 'static,
    {
        self.buffered.push((self.now, Box::new(f)));
    }

    /// Requests that the kernel stop after the current event completes.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Counters describing what a [`Kernel`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Events dispatched.
    pub executed: u64,
    /// Events scheduled (including those not yet dispatched).
    pub scheduled: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_depth: usize,
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The event queue drained completely.
    Exhausted,
    /// An event handler called [`EventCtx::stop`].
    Stopped,
    /// `run_until` reached its horizon with events still pending.
    Horizon,
    /// `run_steps` executed its step budget with events still pending.
    StepBudget,
}

/// A deterministic discrete-event simulation kernel that owns the simulated
/// *world* `W` and a time-ordered queue of closure events.
///
/// Determinism guarantee: events execute in nondecreasing time order, and
/// events with equal timestamps execute in the exact order they were
/// scheduled, regardless of heap internals.
///
/// ```rust
/// use pimsim_event::{Kernel, SimTime};
/// let mut k = Kernel::new(Vec::new());
/// k.schedule_at(SimTime::from_ns(2), |w: &mut Vec<u32>, _| w.push(2));
/// k.schedule_at(SimTime::from_ns(1), |w, _| w.push(1));
/// k.run();
/// assert_eq!(k.world(), &[1, 2]);
/// ```
pub struct Kernel<W> {
    world: W,
    queue: BinaryHeap<Scheduled<W>>,
    now: SimTime,
    seq: u64,
    stats: KernelStats,
    stop_requested: bool,
}

impl<W: fmt::Debug> fmt::Debug for Kernel<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .field("world", &self.world)
            .finish()
    }
}

impl<W> Kernel<W> {
    /// Creates a kernel at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Kernel {
            world,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: KernelStats::default(),
            stop_requested: false,
        }
    }

    /// The current simulation time (timestamp of the last executed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state (e.g. to pre-load memories).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the kernel, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Counters for executed/scheduled events and queue depth.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    fn push(&mut self, time: SimTime, f: EventFn<W>) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.scheduled += 1;
        self.queue.push(Scheduled { time, seq, f });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// Schedules `f` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut EventCtx<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "event scheduled in the past: now={}, at={}",
            self.now,
            at
        );
        self.push(at, Box::new(f));
    }

    /// Schedules `f` after a relative `delay` from the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut W, &mut EventCtx<W>) + 'static,
    {
        let at = self.now + delay;
        self.push(at, Box::new(f));
    }

    /// Executes the single earliest pending event. Returns `false` if the
    /// queue was empty (time does not advance), `true` otherwise.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "heap yielded an event from the past");
        self.now = ev.time;
        self.stats.executed += 1;
        let mut ctx = EventCtx {
            now: self.now,
            buffered: Vec::new(),
            stop: false,
        };
        (ev.f)(&mut self.world, &mut ctx);
        let stop = ctx.stop;
        for (t, f) in ctx.buffered {
            self.push(t, f);
        }
        if stop {
            self.stop_requested = true;
        }
        true
    }

    /// Runs until the queue is empty or an event requests a stop.
    pub fn run(&mut self) -> RunResult {
        loop {
            if !self.step() {
                return RunResult::Exhausted;
            }
            if self.take_stop() {
                return RunResult::Stopped;
            }
        }
    }

    /// Runs events with timestamps `<= horizon`, then advances the clock to
    /// `horizon` if it is beyond the last executed event. Pending later
    /// events stay queued.
    pub fn run_until(&mut self, horizon: SimTime) -> RunResult {
        loop {
            match self.peek_next_time() {
                Some(t) if t <= horizon => {
                    self.step();
                    if self.take_stop() {
                        return RunResult::Stopped;
                    }
                }
                Some(_) => {
                    self.now = self.now.max(horizon);
                    return RunResult::Horizon;
                }
                None => {
                    self.now = self.now.max(horizon);
                    return RunResult::Exhausted;
                }
            }
        }
    }

    /// Runs at most `max_steps` events.
    pub fn run_steps(&mut self, max_steps: u64) -> RunResult {
        for _ in 0..max_steps {
            if !self.step() {
                return RunResult::Exhausted;
            }
            if self.take_stop() {
                return RunResult::Stopped;
            }
        }
        if self.queue.is_empty() {
            RunResult::Exhausted
        } else {
            RunResult::StepBudget
        }
    }

    fn take_stop(&mut self) -> bool {
        std::mem::take(&mut self.stop_requested)
    }

    /// `true` if the last executed event requested a stop that has not yet
    /// been consumed by a run loop.
    pub fn stop_pending(&self) -> bool {
        self.stop_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut k = Kernel::new(Vec::<u32>::new());
        k.schedule_at(SimTime::from_ns(3), |w, _| w.push(3));
        k.schedule_at(SimTime::from_ns(1), |w, _| w.push(1));
        k.schedule_at(SimTime::from_ns(2), |w, _| w.push(2));
        assert_eq!(k.run(), RunResult::Exhausted);
        assert_eq!(k.world(), &[1, 2, 3]);
        assert_eq!(k.now(), SimTime::from_ns(3));
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut k = Kernel::new(Vec::<u32>::new());
        for i in 0..100 {
            k.schedule_at(SimTime::from_ns(5), move |w, _| w.push(i));
        }
        k.run();
        assert_eq!(*k.world(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut k = Kernel::new(0u64);
        k.schedule_at(SimTime::from_ns(1), |w, ctx| {
            *w += 1;
            ctx.schedule_in(SimTime::from_ns(2), |w, ctx| {
                *w += 10;
                ctx.schedule_now(|w, _| *w += 100);
            });
        });
        k.run();
        assert_eq!(*k.world(), 111);
        assert_eq!(k.now(), SimTime::from_ns(3));
    }

    #[test]
    fn run_until_stops_at_horizon_and_advances_clock() {
        let mut k = Kernel::new(Vec::<u64>::new());
        for ns in [1u64, 2, 8] {
            k.schedule_at(SimTime::from_ns(ns), move |w, _| w.push(ns));
        }
        let r = k.run_until(SimTime::from_ns(4));
        assert_eq!(r, RunResult::Horizon);
        assert_eq!(k.world(), &[1, 2]);
        assert_eq!(k.now(), SimTime::from_ns(4));
        assert_eq!(k.pending(), 1);
        assert_eq!(k.run_until(SimTime::from_ns(100)), RunResult::Exhausted);
        assert_eq!(k.now(), SimTime::from_ns(100));
    }

    #[test]
    fn stop_halts_run() {
        let mut k = Kernel::new(Vec::<u32>::new());
        k.schedule_at(SimTime::from_ns(1), |w, _| w.push(1));
        k.schedule_at(SimTime::from_ns(2), |w, ctx| {
            w.push(2);
            ctx.stop();
        });
        k.schedule_at(SimTime::from_ns(3), |w, _| w.push(3));
        assert_eq!(k.run(), RunResult::Stopped);
        assert_eq!(k.world(), &[1, 2]);
        assert_eq!(k.pending(), 1);
        // A subsequent run resumes.
        assert_eq!(k.run(), RunResult::Exhausted);
        assert_eq!(k.world(), &[1, 2, 3]);
    }

    #[test]
    fn run_steps_respects_budget() {
        let mut k = Kernel::new(0u32);
        for i in 0..10u64 {
            k.schedule_at(SimTime::from_ns(i + 1), |w, _| *w += 1);
        }
        assert_eq!(k.run_steps(4), RunResult::StepBudget);
        assert_eq!(*k.world(), 4);
        assert_eq!(k.run_steps(100), RunResult::Exhausted);
        assert_eq!(*k.world(), 10);
    }

    #[test]
    fn stats_track_activity() {
        let mut k = Kernel::new(());
        k.schedule_at(SimTime::from_ns(1), |_, ctx| {
            ctx.schedule_in(SimTime::from_ns(1), |_, _| {});
        });
        k.schedule_at(SimTime::from_ns(1), |_, _| {});
        k.run();
        let s = k.stats();
        assert_eq!(s.executed, 3);
        assert_eq!(s.scheduled, 3);
        assert!(s.max_queue_depth >= 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut k = Kernel::new(());
        k.schedule_at(SimTime::from_ns(5), |_, ctx| {
            ctx.schedule_at(SimTime::from_ns(1), |_, _| {});
        });
        k.run();
    }

    #[test]
    fn step_on_empty_queue_is_noop() {
        let mut k = Kernel::new(7u8);
        assert!(!k.step());
        assert_eq!(k.now(), SimTime::ZERO);
        assert_eq!(k.into_world(), 7);
    }
}

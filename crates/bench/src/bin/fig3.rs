//! Fig. 3 — comparison of mapping algorithms (normalized latency and
//! energy, utilization-first vs performance-first, ROB = 1).
//!
//! ```sh
//! cargo run -p pimsim-bench --release --bin fig3
//! ```
//!
//! Set `PIMSIM_ENGINE=compiled` to drive the sweep with the compiled
//! run-loop engine; the printed figure is byte-identical either way.

use pimsim_arch::ArchConfig;
use pimsim_bench::{header, row, BATCH, FIG34_NETWORKS, FIG34_RESOLUTION};
use pimsim_compiler::MappingPolicy;
use pimsim_sweep::{default_threads, run_grid, SweepGrid, SweepRow};

fn main() {
    let mut grid = SweepGrid::over_networks(FIG34_NETWORKS.iter().copied());
    grid.base = Some(ArchConfig::paper_default().with_rob(1));
    grid.resolutions = vec![FIG34_RESOLUTION];
    grid.batches = vec![BATCH];
    grid.mappings = vec![
        "utilization-first".to_string(),
        "performance-first".to_string(),
    ];
    grid.engines = pimsim_bench::engine_axis();
    let rows = run_grid(&grid, default_threads()).expect("fig3 sweep");
    let find = |name: &str, policy: MappingPolicy| -> &SweepRow {
        rows.iter()
            .find(|r| r.scenario.network == name && r.scenario.mapping == policy)
            .expect("grid covers every (network, policy) point")
    };

    println!("# Fig. 3 — mapping algorithms (64 cores, 512 xbars/core, 128x128, ROB=1)");
    println!("# inputs {FIG34_RESOLUTION}x{FIG34_RESOLUTION}, batch {BATCH}; values normalized to utilization-first\n");

    println!("## (a) normalized latency");
    header(&["network", "utilization-first", "performance-first"]);
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    for name in FIG34_NETWORKS {
        let util = find(name, MappingPolicy::UtilizationFirst);
        let perf = find(name, MappingPolicy::PerformanceFirst);
        let ul = util.latency_per_image().as_ns_f64();
        let pl = perf.latency_per_image().as_ns_f64();
        row(&[name.to_string(), "1.000".into(), format!("{:.3}", pl / ul)]);
        speedups.push(ul / pl);
        energies.push((util.energy_pj, perf.energy_pj));
    }

    println!("\n## (b) normalized energy");
    header(&["network", "utilization-first", "performance-first"]);
    for (name, (ue, pe)) in FIG34_NETWORKS.iter().zip(&energies) {
        row(&[name.to_string(), "1.000".into(), format!("{:.3}", pe / ue)]);
    }

    let mean = speedups
        .iter()
        .product::<f64>()
        .powf(1.0 / speedups.len() as f64);
    println!("\nmean latency improvement of performance-first: {mean:.2}x");
    println!("paper: performance-first wins on every network, ~2x improvement on average");
}

//! Fig. 5 — latency comparison with the MNSIM2.0-like baseline, plus the
//! per-layer communication-ratio analysis of §IV-B.
//!
//! ```sh
//! cargo run -p pimsim-bench --release --bin fig5
//! ```
//!
//! Set `PIMSIM_ENGINE=compiled` to drive the sweep with the compiled
//! run-loop engine; the printed figure is byte-identical either way.

use pimsim_arch::ArchConfig;
use pimsim_bench::{header, row, FIG5_NETWORKS, FIG5_RESOLUTION};
use pimsim_sweep::{default_threads, run_grid, SimulatorKind, SweepGrid, SweepRow};

fn main() {
    let mut grid = SweepGrid::over_networks(FIG5_NETWORKS.iter().copied());
    grid.base = Some(ArchConfig::paper_default().with_rob(16));
    grid.resolutions = vec![FIG5_RESOLUTION];
    grid.simulators = vec!["baseline".to_string(), "cycle".to_string()];
    grid.engines = pimsim_bench::engine_axis();
    let rows = run_grid(&grid, default_threads()).expect("fig5 sweep");
    let find = |name: &str, sim: SimulatorKind| -> &SweepRow {
        rows.iter()
            .find(|r| r.scenario.network == name && r.scenario.simulator == sim)
            .expect("grid covers every (network, simulator) point")
    };

    println!("# Fig. 5 — latency normalized to the MNSIM2.0-like baseline");
    println!("# same crossbar configuration for both simulators; inputs {FIG5_RESOLUTION}x{FIG5_RESOLUTION}\n");
    header(&[
        "network",
        "MNSIM2.0-like",
        "ours",
        "conv2 comm (base)",
        "conv2 comm (ours)",
    ]);

    for name in FIG5_NETWORKS {
        let base = find(name, SimulatorKind::Baseline);
        let ours = find(name, SimulatorKind::Cycle);

        let conv2 = ours
            .node_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.contains("conv"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap_or(1);
        row(&[
            name.to_string(),
            "1.000".into(),
            format!(
                "{:.3}",
                ours.latency().as_ns_f64() / base.latency().as_ns_f64()
            ),
            format!("{:.0}%", 100.0 * base.comm_ratio(conv2)),
            format!("{:.0}%", 100.0 * ours.comm_ratio(conv2)),
        ]);
    }
    println!("\npaper: ours ~1.1x on the VGGs and 1.53x on resnet-18; conv2 communication");
    println!("ratio 18% under idealistic async comm vs 77% under synchronized transfers.");
    println!("(see EXPERIMENTS.md for where and why this reproduction diverges on resnet)");
}

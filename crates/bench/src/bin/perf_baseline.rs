//! Records the repo's performance trajectory: kernel events/sec, NoC
//! fabric messages/sec (dense vs the pre-PR4 HashMap reference), the
//! transfer-saturated and hotspot (transpose) workloads per routing
//! policy, and end-to-end simulation throughput per zoo network, written
//! as JSON so future PRs have a baseline to compare against.
//!
//! ```text
//! cargo run -p pimsim-bench --release --bin perf_baseline [-- <out.json>]
//! ```
//!
//! Quick by default (a few best-of-N samples per datum, seconds total);
//! set `PIMSIM_PERF_SAMPLES` to raise the sample count.

use std::time::Instant;

use pimsim_arch::{ArchConfig, RoutingPolicy};
use pimsim_bench::kernel_workload as wl;
use pimsim_bench::{fabric_workload as fw, hotspot_workload as hw, transfer_workload as tw};
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::Simulator;
use pimsim_nn::zoo;

/// Networks tracked end-to-end (all simulate in well under a second).
const NETWORKS: &[&str] = &[
    "tiny_mlp",
    "tiny_cnn",
    "lenet",
    "alexnet",
    "squeezenet",
    "vgg8",
];

/// Best-of-`samples` wall-clock seconds for `f`.
fn best_secs(samples: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let samples: u32 = std::env::var("PIMSIM_PERF_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // Kernel microbenchmark: the same chained-event workload the `kernel`
    // criterion bench runs, typed vs the boxed-closure shim (the old
    // engine's representation).
    let typed = best_secs(samples, wl::chain_typed);
    let closure = best_secs(samples, wl::chain_closure);
    let kernel = serde_json::json!({
        "chained_events": (wl::CHAIN_EVENTS),
        "typed_events_per_sec": ((wl::CHAIN_EVENTS as f64 / typed).round()),
        "closure_shim_events_per_sec": ((wl::CHAIN_EVENTS as f64 / closure).round()),
        "typed_speedup": (closure / typed),
    });

    // Fabric microbenchmark: identical synthetic traffic through the
    // dense fabric and the pre-PR4 HashMap reference (same NocCosts, so
    // the delta is pure representation cost).
    let msgs = fw::traffic(fw::FABRIC_MESSAGES);
    assert_eq!(
        fw::drive_dense(&msgs),
        fw::drive_hashmap(&msgs),
        "the two fabrics must price identical traffic identically"
    );
    let dense = best_secs(samples, || {
        fw::drive_dense(&msgs);
    });
    let hashmap = best_secs(samples, || {
        fw::drive_hashmap(&msgs);
    });
    let n = fw::FABRIC_MESSAGES as f64;
    let fabric = serde_json::json!({
        "messages": (fw::FABRIC_MESSAGES),
        "dense_msgs_per_sec": ((n / dense).round()),
        "hashmap_msgs_per_sec": ((n / hashmap).round()),
        "dense_speedup": (hashmap / dense),
    });

    // Transfer-saturated end-to-end workload, per routing policy: host
    // messages/sec plus the simulated latency each policy produces (the
    // latencies must differ — the axis is real — yet stay deterministic).
    let mut transfer = Vec::new();
    for routing in RoutingPolicy::ALL {
        let report = tw::run(routing);
        assert_eq!(report.latency, tw::run(routing).latency, "deterministic");
        let secs = best_secs(samples, || {
            tw::run(routing);
        });
        transfer.push(serde_json::json!({
            "routing": (routing.name()),
            "messages": (tw::MESSAGES),
            "simulated_latency_ns": (report.latency.as_ns_f64()),
            "kernel_events": (report.events),
            "host_seconds": (secs),
            "msgs_per_host_sec": ((tw::MESSAGES as f64 / secs).round()),
        }));
    }

    // Hotspot (transpose) workload, per routing policy: the traffic
    // pattern where congestion-aware routing matters. `adaptive` must
    // beat `xy` on simulated latency — the win the router model exists
    // for — and stay deterministic.
    let mut hotspot = Vec::new();
    let mut hotspot_latency = std::collections::HashMap::new();
    for routing in RoutingPolicy::ALL {
        let report = hw::run(routing);
        assert_eq!(report.latency, hw::run(routing).latency, "deterministic");
        hotspot_latency.insert(routing, report.latency);
        let secs = best_secs(samples, || {
            hw::run(routing);
        });
        hotspot.push(serde_json::json!({
            "routing": (routing.name()),
            "messages": (hw::MESSAGES),
            "simulated_latency_ns": (report.latency.as_ns_f64()),
            "kernel_events": (report.events),
            "host_seconds": (secs),
        }));
    }
    assert!(
        hotspot_latency[&RoutingPolicy::Adaptive] < hotspot_latency[&RoutingPolicy::Xy],
        "adaptive must beat xy on the transpose hotspot"
    );

    // End-to-end: compile once, then time Simulator::run per network.
    let arch = ArchConfig::paper_default();
    let mut simulator = Vec::new();
    for name in NETWORKS {
        let net =
            zoo::by_name(name, pimsim_sweep::default_resolution(name)).expect("zoo network exists");
        let compiled = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .compile(&net)
            .expect("compiles");
        let report = Simulator::new(&arch)
            .run(&compiled.program)
            .expect("simulates");
        let secs = best_secs(samples, || {
            Simulator::new(&arch)
                .run(&compiled.program)
                .expect("simulates");
        });
        simulator.push(serde_json::json!({
            "network": (*name),
            "latency_ns": (report.latency.as_ns_f64()),
            "kernel_events": (report.events),
            "instructions": (report.instructions),
            "host_seconds": (secs),
            "events_per_host_sec": ((report.events as f64 / secs).round()),
        }));
    }

    let doc = serde_json::json!({
        "pr": 5,
        "description": "perf baseline after the cycle-approximate router model (adaptive routing, per-VC credits, pipeline depth)",
        "samples_per_datum": samples,
        "kernel": kernel,
        "fabric": fabric,
        "transfer_saturated": transfer,
        "hotspot_transpose": hotspot,
        "simulator": simulator,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, text + "\n").expect("writes the baseline file");
    println!("wrote {out}");
}

//! Records the repo's performance trajectory: kernel events/sec, NoC
//! fabric messages/sec (dense vs the pre-PR4 HashMap reference), the
//! transfer-saturated and hotspot (transpose) workloads per routing
//! policy, end-to-end simulation throughput per zoo network under
//! **both run-loop engines** (event and compiled, which must agree
//! byte-for-byte), and open-loop serving throughput/tail latency,
//! written as JSON so future PRs have a baseline to compare against.
//!
//! ```text
//! cargo run -p pimsim-bench --release --bin perf_baseline [-- <out.json>]
//! ```
//!
//! Quick by default (a few best-of-N samples per datum, seconds total);
//! set `PIMSIM_PERF_SAMPLES` to raise the sample count.

use std::time::Instant;

use pimsim_arch::{ArchConfig, RoutingPolicy};
use pimsim_bench::kernel_workload as wl;
use pimsim_bench::{fabric_workload as fw, hotspot_workload as hw, transfer_workload as tw};
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::{EngineKind, Simulator};
use pimsim_nn::zoo;

/// Networks tracked end-to-end (all simulate in well under a second).
const NETWORKS: &[&str] = &[
    "tiny_mlp",
    "tiny_cnn",
    "lenet",
    "alexnet",
    "squeezenet",
    "vgg8",
];

/// Best-of-`samples` wall-clock seconds for `f`.
fn best_secs(samples: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let samples: u32 = std::env::var("PIMSIM_PERF_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // Kernel microbenchmark: the same chained-event workload the `kernel`
    // criterion bench runs, typed vs the boxed-closure shim (the old
    // engine's representation).
    let typed = best_secs(samples, wl::chain_typed);
    let closure = best_secs(samples, wl::chain_closure);
    let kernel = serde_json::json!({
        "chained_events": (wl::CHAIN_EVENTS),
        "typed_events_per_sec": ((wl::CHAIN_EVENTS as f64 / typed).round()),
        "closure_shim_events_per_sec": ((wl::CHAIN_EVENTS as f64 / closure).round()),
        "typed_speedup": (closure / typed),
    });

    // Fabric microbenchmark: identical synthetic traffic through the
    // dense fabric and the pre-PR4 HashMap reference (same NocCosts, so
    // the delta is pure representation cost).
    let msgs = fw::traffic(fw::FABRIC_MESSAGES);
    assert_eq!(
        fw::drive_dense(&msgs),
        fw::drive_hashmap(&msgs),
        "the two fabrics must price identical traffic identically"
    );
    let dense = best_secs(samples, || {
        fw::drive_dense(&msgs);
    });
    let hashmap = best_secs(samples, || {
        fw::drive_hashmap(&msgs);
    });
    let n = fw::FABRIC_MESSAGES as f64;
    let fabric = serde_json::json!({
        "messages": (fw::FABRIC_MESSAGES),
        "dense_msgs_per_sec": ((n / dense).round()),
        "hashmap_msgs_per_sec": ((n / hashmap).round()),
        "dense_speedup": (hashmap / dense),
    });

    // Transfer-saturated end-to-end workload, per routing policy: host
    // messages/sec plus the simulated latency each policy produces (the
    // latencies must differ — the axis is real — yet stay deterministic).
    let mut transfer = Vec::new();
    for routing in RoutingPolicy::ALL {
        let report = tw::run(routing);
        assert_eq!(report.latency, tw::run(routing).latency, "deterministic");
        let secs = best_secs(samples, || {
            tw::run(routing);
        });
        transfer.push(serde_json::json!({
            "routing": (routing.name()),
            "messages": (tw::MESSAGES),
            "simulated_latency_ns": (report.latency.as_ns_f64()),
            "kernel_events": (report.events),
            "host_seconds": (secs),
            "msgs_per_host_sec": ((tw::MESSAGES as f64 / secs).round()),
        }));
    }

    // Hotspot (transpose) workload, per routing policy: the traffic
    // pattern where congestion-aware routing matters. `adaptive` must
    // beat `xy` on simulated latency — the win the router model exists
    // for — and stay deterministic.
    let mut hotspot = Vec::new();
    let mut hotspot_latency = std::collections::HashMap::new();
    for routing in RoutingPolicy::ALL {
        let report = hw::run(routing);
        assert_eq!(report.latency, hw::run(routing).latency, "deterministic");
        hotspot_latency.insert(routing, report.latency);
        let secs = best_secs(samples, || {
            hw::run(routing);
        });
        hotspot.push(serde_json::json!({
            "routing": (routing.name()),
            "messages": (hw::MESSAGES),
            "simulated_latency_ns": (report.latency.as_ns_f64()),
            "kernel_events": (report.events),
            "host_seconds": (secs),
        }));
    }
    assert!(
        hotspot_latency[&RoutingPolicy::Adaptive] < hotspot_latency[&RoutingPolicy::Xy],
        "adaptive must beat xy on the transpose hotspot"
    );

    // End-to-end: compile once, then time Simulator::run per network
    // under both run-loop engines. The engines must agree byte-for-byte
    // on every observable; the events/sec ratio is the compiled engine's
    // honest win (or loss) once the hybrid boundary is priced in. Two
    // arch points per network: the paper default (deep ROB — dispatch
    // runs ahead of completions, the ROB never drains, and the compiled
    // engine finds nothing to place) and rob=1 (contention-light — cores
    // drain at every completion and nearly all events come from placed
    // schedule slots).
    let mut simulator = Vec::new();
    for name in NETWORKS {
        let net =
            zoo::by_name(name, pimsim_sweep::default_resolution(name)).expect("zoo network exists");
        for (arch_label, arch) in [
            ("paper_default", ArchConfig::paper_default()),
            ("rob1", ArchConfig::paper_default().with_rob(1)),
        ] {
            let compiled_prog = Compiler::new(&arch)
                .mapping(MappingPolicy::PerformanceFirst)
                .functional(false)
                .compile(&net)
                .expect("compiles");
            let program = &compiled_prog.program;
            let mut per_engine = serde_json::Map::new();
            let mut reference: Option<pimsim_core::SimReport> = None;
            for kind in EngineKind::ALL {
                // Timed samples run with a warm schedule cache: the first
                // (report) run compiles regions, later runs replay them —
                // the compile-once-simulate-many regime the compiled
                // engine exists for. The event engine ignores the cache.
                let cache = pimsim_core::ScheduleCache::default();
                let sim = Simulator::new(&arch)
                    .with_engine(kind.engine())
                    .with_schedule_cache(&cache);
                let report = sim.run(program).expect("simulates");
                if let Some(reference) = &reference {
                    assert_eq!(
                        reference.latency, report.latency,
                        "{name}: latency diverged"
                    );
                    assert_eq!(
                        reference.energy.total().as_pj().to_bits(),
                        report.energy.total().as_pj().to_bits(),
                        "{name}: energy diverged"
                    );
                    assert_eq!(
                        reference.events, report.events,
                        "{name}: event count diverged"
                    );
                }
                let secs = best_secs(samples, || {
                    sim.run(program).expect("simulates");
                });
                per_engine.insert(
                    kind.name().to_string(),
                    serde_json::json!({
                        "host_seconds": (secs),
                        "events_per_host_sec": ((report.events as f64 / secs).round()),
                        "events_dispatched": (report.schedule.events_dispatched),
                        "events_placed": (report.schedule.events_placed),
                        "regions_compiled": (report.schedule.regions_compiled),
                        "regions_reused": (report.schedule.regions_reused),
                        "regions_fallback": (report.schedule.regions_fallback),
                    }),
                );
                if reference.is_none() {
                    reference = Some(report);
                }
            }
            let report = reference.expect("at least one engine ran");
            let host_secs = |engine: &str| {
                per_engine.get(engine).expect("recorded above")["host_seconds"]
                    .as_f64()
                    .expect("recorded above")
            };
            let speedup = host_secs("event") / host_secs("compiled");
            simulator.push(serde_json::json!({
                "network": (*name),
                "arch": (arch_label),
                "latency_ns": (report.latency.as_ns_f64()),
                "kernel_events": (report.events),
                "instructions": (report.instructions),
                "engines": (serde_json::Value::Object(per_engine)),
                "compiled_speedup": (speedup),
            }));
        }
    }

    // Open-loop serving: the queueing front-end over the cycle-accurate
    // service model at a fixed traffic point. Simulated throughput and
    // tail latency are the tracked figures; host seconds cover the whole
    // `serve()` call (service-model warm + queueing replay). The report
    // must be byte-identical at any warm-pool thread count.
    let mut serving = Vec::new();
    for name in ["tiny_mlp", "lenet"] {
        let mut config = pimsim_serve::ServeConfig::new(vec![(
            name.to_string(),
            pimsim_sweep::default_resolution(name),
        )]);
        config.rate_rps = 100_000.0;
        config.duration = pimsim_serve::parse_duration("2ms").expect("literal duration parses");
        let report = pimsim_serve::serve(&config, 4).expect("serves");
        assert_eq!(
            report.to_json(),
            pimsim_serve::serve(&config, 1).expect("serves").to_json(),
            "{name}: serving report must not depend on the thread count"
        );
        let secs = best_secs(samples, || {
            pimsim_serve::serve(&config, 4).expect("serves");
        });
        let net = &report.per_network[0];
        serving.push(serde_json::json!({
            "network": (name),
            "rate_rps": (report.rate_rps),
            "batch": (report.batch.clone()),
            "generated": (report.generated),
            "finished": (report.finished),
            "dropped": (report.dropped),
            "throughput_rps": (report.throughput_rps),
            "p50_latency_ns": (net.p50_latency_ns),
            "p95_latency_ns": (net.p95_latency_ns),
            "p99_latency_ns": (net.p99_latency_ns),
            "host_seconds": (secs),
            "requests_per_host_sec": ((report.generated as f64 / secs).round()),
        }));
    }

    let doc = serde_json::json!({
        "pr": 10,
        "description": "perf baseline after the open-loop serving engine (seeded arrivals, batching queue, tail-latency reporting over the cycle-accurate service model)",
        "samples_per_datum": samples,
        "kernel": kernel,
        "fabric": fabric,
        "transfer_saturated": transfer,
        "hotspot_transpose": hotspot,
        "simulator": simulator,
        "serving": serving,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, text + "\n").expect("writes the baseline file");
    println!("wrote {out}");
}

//! Fig. 4 — latency with different ROB sizes (normalized to ROB = 1).
//!
//! ```sh
//! cargo run -p pimsim-bench --release --bin fig4
//! ```

use pimsim_arch::ArchConfig;
use pimsim_bench::{header, network, row, run, BATCH, FIG34_NETWORKS, FIG34_RESOLUTION};
use pimsim_compiler::MappingPolicy;

const ROBS: &[u32] = &[1, 4, 8, 12, 16];

fn main() {
    println!("# Fig. 4 — latency vs ROB size (performance-first, batch {BATCH})");
    println!("# normalized to ROB=1\n");
    let mut cols = vec!["network"];
    let rob_labels: Vec<String> = ROBS.iter().map(|r| format!("rob={r}")).collect();
    cols.extend(rob_labels.iter().map(String::as_str));
    header(&cols);

    for name in FIG34_NETWORKS {
        let net = network(name, FIG34_RESOLUTION);
        let mut cells = vec![name.to_string()];
        let mut base = None;
        let mut last_two = [0.0f64; 2];
        for &rob in ROBS {
            let arch = ArchConfig::paper_default().with_rob(rob);
            let (_, report) = run(&arch, &net, MappingPolicy::PerformanceFirst, BATCH);
            let lat = report.latency.as_ns_f64();
            let b = *base.get_or_insert(lat);
            let norm = lat / b;
            cells.push(format!("{norm:.3}"));
            last_two = [last_two[1], norm];
        }
        row(&cells);
        let delta = (last_two[0] - last_two[1]) / last_two[0].max(1e-12) * 100.0;
        println!("  (12 -> 16 gains {delta:.1}% — the structure-hazard knee)");
    }
    println!("\npaper: latency drops as the ROB grows; the 12->16 step gains little because");
    println!("back-to-back MVMs on the same crossbars serialize (structure hazard)");
}

//! Fig. 4 — latency with different ROB sizes (normalized to ROB = 1).
//!
//! ```sh
//! cargo run -p pimsim-bench --release --bin fig4
//! ```
//!
//! Set `PIMSIM_ENGINE=compiled` to drive the sweep with the compiled
//! run-loop engine; the printed figure is byte-identical either way.

use pimsim_bench::{header, row, BATCH, FIG34_NETWORKS, FIG34_RESOLUTION};
use pimsim_sweep::{default_threads, run_grid, SweepGrid};

const ROBS: &[u32] = &[1, 4, 8, 12, 16];

fn main() {
    let mut grid = SweepGrid::over_networks(FIG34_NETWORKS.iter().copied());
    grid.resolutions = vec![FIG34_RESOLUTION];
    grid.batches = vec![BATCH];
    grid.rob_sizes = ROBS.to_vec();
    grid.engines = pimsim_bench::engine_axis();
    let rows = run_grid(&grid, default_threads()).expect("fig4 sweep");

    println!("# Fig. 4 — latency vs ROB size (performance-first, batch {BATCH})");
    println!("# normalized to ROB=1\n");
    let mut cols = vec!["network"];
    let rob_labels: Vec<String> = ROBS.iter().map(|r| format!("rob={r}")).collect();
    cols.extend(rob_labels.iter().map(String::as_str));
    header(&cols);

    for name in FIG34_NETWORKS {
        let mut cells = vec![name.to_string()];
        let mut base = None;
        let mut last_two = [0.0f64; 2];
        for &rob in ROBS {
            let point = rows
                .iter()
                .find(|r| r.scenario.network == *name && r.scenario.arch.resources.rob_size == rob)
                .expect("grid covers every (network, rob) point");
            let lat = point.latency().as_ns_f64();
            let b = *base.get_or_insert(lat);
            let norm = lat / b;
            cells.push(format!("{norm:.3}"));
            last_two = [last_two[1], norm];
        }
        row(&cells);
        let delta = (last_two[0] - last_two[1]) / last_two[0].max(1e-12) * 100.0;
        println!("  (12 -> 16 gains {delta:.1}% — the structure-hazard knee)");
    }
    println!("\npaper: latency drops as the ROB grows; the 12->16 step gains little because");
    println!("back-to-back MVMs on the same crossbars serialize (structure hazard)");
}

//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each paper figure has a binary in `src/bin` that prints the same series
//! the paper reports (normalized, as in the paper):
//!
//! * `fig3` — mapping-algorithm comparison (latency + energy)
//! * `fig4` — ROB-size sweep
//! * `fig5` — comparison with the MNSIM2.0-like baseline
//!
//! The binaries declare their grids as `pimsim_sweep::SweepGrid`s and run
//! on the campaign engine; this crate only carries the shared constants
//! and table-printing helpers. Run them with
//! `cargo run -p pimsim-bench --release --bin fig3` etc. Criterion
//! microbenchmarks (host performance of the simulator itself) live under
//! `benches/`.

/// The four networks of Fig. 3 / Fig. 4.
pub const FIG34_NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
/// The three MNSIM2.0-source networks of Fig. 5.
pub const FIG5_NETWORKS: &[&str] = &["vgg8", "vgg16", "resnet18"];

/// Input resolution used by the harnesses. The paper's figures are
/// normalized, so shape — not absolute scale — is what must hold; 64×64
/// (32×32 for the CIFAR-scale Fig. 5 set) keeps a full sweep under a few
/// minutes on a laptop. See EXPERIMENTS.md.
pub const FIG34_RESOLUTION: u32 = 64;
/// Fig. 5 resolution (the MNSIM2.0 example networks are CIFAR-scale).
pub const FIG5_RESOLUTION: u32 = 32;
/// Back-to-back inferences for the pipelined Fig. 3/4 runs.
pub const BATCH: u32 = 4;

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;
    use pimsim_nn::zoo;
    use pimsim_sweep::{run_grid, SweepGrid};

    #[test]
    fn harness_grid_runs_on_the_engine() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        let rows = run_grid(&grid, 1).expect("harness grid");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].latency_ps > 0);
    }

    #[test]
    fn constants_are_consistent() {
        for n in FIG34_NETWORKS {
            assert!(zoo::by_name(n, FIG34_RESOLUTION).is_some());
        }
        for n in FIG5_NETWORKS {
            assert!(zoo::by_name(n, FIG5_RESOLUTION).is_some());
        }
    }
}

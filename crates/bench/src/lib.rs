//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each paper figure has a binary in `src/bin` that prints the same series
//! the paper reports (normalized, as in the paper):
//!
//! * `fig3` — mapping-algorithm comparison (latency + energy)
//! * `fig4` — ROB-size sweep
//! * `fig5` — comparison with the MNSIM2.0-like baseline
//!
//! The binaries declare their grids as `pimsim_sweep::SweepGrid`s and run
//! on the campaign engine; this crate only carries the shared constants
//! and table-printing helpers. Run them with
//! `cargo run -p pimsim-bench --release --bin fig3` etc. Criterion
//! microbenchmarks (host performance of the simulator itself) live under
//! `benches/`.

/// The four networks of Fig. 3 / Fig. 4.
pub const FIG34_NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
/// The three MNSIM2.0-source networks of Fig. 5.
pub const FIG5_NETWORKS: &[&str] = &["vgg8", "vgg16", "resnet18"];

/// Input resolution used by the harnesses. The paper's figures are
/// normalized, so shape — not absolute scale — is what must hold; 64×64
/// (32×32 for the CIFAR-scale Fig. 5 set) keeps a full sweep under a few
/// minutes on a laptop. See EXPERIMENTS.md.
pub const FIG34_RESOLUTION: u32 = 64;
/// Fig. 5 resolution (the MNSIM2.0 example networks are CIFAR-scale).
pub const FIG5_RESOLUTION: u32 = 32;
/// Back-to-back inferences for the pipelined Fig. 3/4 runs.
pub const BATCH: u32 = 4;

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Shared event-kernel workloads, used by both the `kernel` criterion
/// bench and the `perf_baseline` trajectory harness so the two always
/// measure the same scenario (a drift between them would silently
/// invalidate cross-PR events/sec comparisons).
pub mod kernel_workload {
    use pimsim_event::closure::{ClosureCtx, ClosureKernel};
    use pimsim_event::{EventCtx, Kernel, SimTime, World};

    /// Events per chained-run sample (each event schedules the next).
    pub const CHAIN_EVENTS: u64 = 100_000;
    /// Independent one-shot events per heap-pressure sample.
    pub const HEAP_EVENTS: u64 = 10_000;

    /// Typed world: one chained event hopping `left` more times.
    pub struct Chain(u64);

    impl World for Chain {
        type Event = u64;
        fn handle(&mut self, left: u64, ctx: &mut EventCtx<u64>) {
            self.0 += 1;
            if left > 0 {
                ctx.schedule_in(SimTime::from_ps(10), left - 1);
            }
        }
    }

    /// Typed world: counts independent one-shot ticks.
    pub struct Count(u64);

    impl World for Count {
        type Event = ();
        fn handle(&mut self, _: (), _: &mut EventCtx<()>) {
            self.0 += 1;
        }
    }

    /// Runs the chained scenario on the typed kernel.
    pub fn chain_typed() {
        let mut k = Kernel::new(Chain(0));
        k.schedule_at(SimTime::ZERO, CHAIN_EVENTS - 1);
        k.run();
        assert_eq!(k.world().0, CHAIN_EVENTS);
    }

    /// The identical chained scenario through the boxed-closure shim.
    pub fn chain_closure() {
        let mut k = ClosureKernel::new(0u64);
        fn step(left: u64, w: &mut u64, ctx: &mut ClosureCtx<u64>) {
            *w += 1;
            if left > 0 {
                ctx.schedule_fn_in(SimTime::from_ps(10), move |w, ctx| step(left - 1, w, ctx));
            }
        }
        k.schedule_at(SimTime::ZERO, move |w, ctx| step(CHAIN_EVENTS - 1, w, ctx));
        k.run();
        assert_eq!(*k.state(), CHAIN_EVENTS);
    }

    /// Scatters independent events across the heap on the typed kernel.
    pub fn heap_pressure_typed() {
        let mut k = Kernel::new(Count(0));
        for i in 0..HEAP_EVENTS {
            k.schedule_at(SimTime::from_ps((i * 7919) % 100_000), ());
        }
        k.run();
        assert_eq!(k.world().0, HEAP_EVENTS);
    }

    /// The identical heap-pressure scenario through the closure shim.
    pub fn heap_pressure_closure() {
        let mut k = ClosureKernel::new(0u64);
        for i in 0..HEAP_EVENTS {
            k.schedule_at(SimTime::from_ps((i * 7919) % 100_000), |w, _| *w += 1);
        }
        k.run();
        assert_eq!(*k.state(), HEAP_EVENTS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;
    use pimsim_nn::zoo;
    use pimsim_sweep::{run_grid, SweepGrid};

    #[test]
    fn kernel_workloads_run_on_both_paths() {
        kernel_workload::chain_typed();
        kernel_workload::chain_closure();
        kernel_workload::heap_pressure_typed();
        kernel_workload::heap_pressure_closure();
    }

    #[test]
    fn harness_grid_runs_on_the_engine() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        let rows = run_grid(&grid, 1).expect("harness grid");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].latency_ps > 0);
    }

    #[test]
    fn constants_are_consistent() {
        for n in FIG34_NETWORKS {
            assert!(zoo::by_name(n, FIG34_RESOLUTION).is_some());
        }
        for n in FIG5_NETWORKS {
            assert!(zoo::by_name(n, FIG5_RESOLUTION).is_some());
        }
    }
}

//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each paper figure has a binary in `src/bin` that prints the same series
//! the paper reports (normalized, as in the paper):
//!
//! * `fig3` — mapping-algorithm comparison (latency + energy)
//! * `fig4` — ROB-size sweep
//! * `fig5` — comparison with the MNSIM2.0-like baseline
//!
//! The binaries declare their grids as `pimsim_sweep::SweepGrid`s and run
//! on the campaign engine; this crate only carries the shared constants
//! and table-printing helpers. Run them with
//! `cargo run -p pimsim-bench --release --bin fig3` etc. Criterion
//! microbenchmarks (host performance of the simulator itself) live under
//! `benches/`.

/// The four networks of Fig. 3 / Fig. 4.
pub const FIG34_NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
/// The three MNSIM2.0-source networks of Fig. 5.
pub const FIG5_NETWORKS: &[&str] = &["vgg8", "vgg16", "resnet18"];

/// Input resolution used by the harnesses. The paper's figures are
/// normalized, so shape — not absolute scale — is what must hold; 64×64
/// (32×32 for the CIFAR-scale Fig. 5 set) keeps a full sweep under a few
/// minutes on a laptop. See EXPERIMENTS.md.
pub const FIG34_RESOLUTION: u32 = 64;
/// Fig. 5 resolution (the MNSIM2.0 example networks are CIFAR-scale).
pub const FIG5_RESOLUTION: u32 = 32;
/// Back-to-back inferences for the pipelined Fig. 3/4 runs.
pub const BATCH: u32 = 4;

/// The sweep-grid engine axis selected by the `PIMSIM_ENGINE` environment
/// variable (`event` / `compiled`): empty — the default engine — when the
/// variable is unset. Both engines are byte-identical on every figure, so
/// this exists to *prove* that (CI regenerates the figures under each),
/// not to change any number.
pub fn engine_axis() -> Vec<String> {
    std::env::var("PIMSIM_ENGINE")
        .map(|e| vec![e])
        .unwrap_or_default()
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Shared event-kernel workloads, used by both the `kernel` criterion
/// bench and the `perf_baseline` trajectory harness so the two always
/// measure the same scenario (a drift between them would silently
/// invalidate cross-PR events/sec comparisons).
pub mod kernel_workload {
    use pimsim_event::closure::{ClosureCtx, ClosureKernel};
    use pimsim_event::{EventCtx, Kernel, SimTime, World};

    /// Events per chained-run sample (each event schedules the next).
    pub const CHAIN_EVENTS: u64 = 100_000;
    /// Independent one-shot events per heap-pressure sample.
    pub const HEAP_EVENTS: u64 = 10_000;

    /// Typed world: one chained event hopping `left` more times.
    pub struct Chain(u64);

    impl World for Chain {
        type Event = u64;
        fn handle(&mut self, left: u64, ctx: &mut EventCtx<u64>) {
            self.0 += 1;
            if left > 0 {
                ctx.schedule_in(SimTime::from_ps(10), left - 1);
            }
        }
    }

    /// Typed world: counts independent one-shot ticks.
    pub struct Count(u64);

    impl World for Count {
        type Event = ();
        fn handle(&mut self, _: (), _: &mut EventCtx<()>) {
            self.0 += 1;
        }
    }

    /// Runs the chained scenario on the typed kernel.
    pub fn chain_typed() {
        let mut k = Kernel::new(Chain(0));
        k.schedule_at(SimTime::ZERO, CHAIN_EVENTS - 1);
        k.run();
        assert_eq!(k.world().0, CHAIN_EVENTS);
    }

    /// The identical chained scenario through the boxed-closure shim.
    pub fn chain_closure() {
        let mut k = ClosureKernel::new(0u64);
        fn step(left: u64, w: &mut u64, ctx: &mut ClosureCtx<u64>) {
            *w += 1;
            if left > 0 {
                ctx.schedule_fn_in(SimTime::from_ps(10), move |w, ctx| step(left - 1, w, ctx));
            }
        }
        k.schedule_at(SimTime::ZERO, move |w, ctx| step(CHAIN_EVENTS - 1, w, ctx));
        k.run();
        assert_eq!(*k.state(), CHAIN_EVENTS);
    }

    /// Scatters independent events across the heap on the typed kernel.
    pub fn heap_pressure_typed() {
        let mut k = Kernel::new(Count(0));
        for i in 0..HEAP_EVENTS {
            k.schedule_at(SimTime::from_ps((i * 7919) % 100_000), ());
        }
        k.run();
        assert_eq!(k.world().0, HEAP_EVENTS);
    }

    /// The identical heap-pressure scenario through the closure shim.
    pub fn heap_pressure_closure() {
        let mut k = ClosureKernel::new(0u64);
        for i in 0..HEAP_EVENTS {
            k.schedule_at(SimTime::from_ps((i * 7919) % 100_000), |w, _| *w += 1);
        }
        k.run();
        assert_eq!(*k.state(), HEAP_EVENTS);
    }
}

/// Shared NoC-fabric workloads, used by the `noc` criterion bench, the
/// `perf_baseline` trajectory harness, and the fabric-equivalence tests.
///
/// [`fabric_workload::HashMapNoc`] preserves the pre-PR4 fabric
/// representation — a route `Vec` per message and a
/// `HashMap<(u16, u16), SimTime>` probe per link — priced by the same
/// [`pimsim_core::NocCosts`] constants as the dense fabric, so
/// the two implementations must agree picosecond-for-picosecond on every
/// message (the equivalence tests assert exactly that) and any measured
/// gap is pure representation cost.
pub mod fabric_workload {
    use std::collections::HashMap;

    use pimsim_arch::ArchConfig;
    use pimsim_core::{Noc, NocCosts};
    use pimsim_event::SimTime;

    /// Messages per synthetic-traffic sample.
    pub const FABRIC_MESSAGES: usize = 50_000;
    /// Mesh edge of the synthetic-traffic sample (the paper chip's 8×8).
    pub const MESH: u16 = 8;

    /// The pre-PR4 reference fabric: per-message route allocation and
    /// hash-probed link occupancy, XY order only.
    #[derive(Debug, Clone, Default)]
    pub struct HashMapNoc {
        cols: u16,
        link_free: HashMap<(u16, u16), SimTime>,
        mem_free: SimTime,
    }

    impl HashMapNoc {
        /// Builds the reference fabric for a `rows` × `cols` mesh.
        pub fn new(_rows: u16, cols: u16) -> HashMapNoc {
            HashMapNoc {
                cols,
                link_free: HashMap::new(),
                mem_free: SimTime::ZERO,
            }
        }

        /// The XY route as an allocated link list (the old representation).
        pub fn route(&self, from: u16, to: u16) -> Vec<(u16, u16)> {
            let mut links = Vec::new();
            if from == to {
                return links;
            }
            let (_, fc) = (from / self.cols, from % self.cols);
            let (tr, tc) = (to / self.cols, to % self.cols);
            let mut cur = from;
            let mut c = fc;
            while c != tc {
                let next_c = if tc > c { c + 1 } else { c - 1 };
                let next = (cur / self.cols) * self.cols + next_c;
                links.push((cur, next));
                cur = next;
                c = next_c;
            }
            let mut r = cur / self.cols;
            while r != tr {
                let next_r = if tr > r { r + 1 } else { r - 1 };
                let next = next_r * self.cols + tc;
                links.push((cur, next));
                cur = next;
                r = next_r;
            }
            links
        }

        fn traverse(
            &mut self,
            links: &[(u16, u16)],
            start: SimTime,
            flits: u64,
            costs: &NocCosts,
        ) -> SimTime {
            let hop = costs.hop();
            let ser = costs.serialization(flits);
            let mut head = start;
            let mut tail = start;
            for link in links {
                let free = self.link_free.get(link).copied().unwrap_or(SimTime::ZERO);
                head = head.max(free) + hop;
                tail = head + ser;
                self.link_free.insert(*link, tail);
            }
            if links.is_empty() {
                tail = start;
            }
            tail
        }

        /// Sends a core-to-core message; returns its delivery time.
        pub fn message(
            &mut self,
            from: u16,
            to: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            if from == to {
                return start + costs.local_copy(elems).time;
            }
            let flits = costs.flits_for_elems(elems);
            let links = self.route(from, to);
            self.traverse(&links, start, flits, costs)
        }

        /// A global-memory access from `core`; returns the completion time.
        pub fn memory_access(
            &mut self,
            core: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            let flits = costs.flits_for_elems(elems);
            let mut links = self.route(core, 0);
            links.push((0, pimsim_core::MEM_NODE));
            let arrived = self.traverse(&links, start, flits, costs);
            let service_start = arrived.max(self.mem_free);
            let done = service_start + costs.global_mem(elems).time;
            self.mem_free = done;
            done
        }

        /// The occupancy (`free_at`) of the directed link `from -> to`.
        pub fn link_free(&self, from: u16, to: u16) -> SimTime {
            self.link_free
                .get(&(from, to))
                .copied()
                .unwrap_or(SimTime::ZERO)
        }
    }

    /// One synthetic message: `(from, to, elems, start)`. Every 7th
    /// message is a global-memory access instead (`to` ignored).
    pub type Msg = (u16, u16, u32, SimTime);

    /// Deterministic pseudo-random traffic over a `MESH`×`MESH` mesh.
    pub fn traffic(n: usize) -> Vec<Msg> {
        let routers = MESH as u64 * MESH as u64;
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        (0..n)
            .map(|i| {
                let from = (next() % routers) as u16;
                let to = (next() % routers) as u16;
                let elems = (next() % 1024) as u32 + 1;
                (from, to, elems, SimTime::from_ns(i as u64))
            })
            .collect()
    }

    /// The operations the shared driver needs from either fabric, so
    /// `drive_dense` and `drive_hashmap` run the *same* loop (message /
    /// memory-access mix included) and cannot drift apart.
    trait Fabric {
        fn message(
            &mut self,
            from: u16,
            to: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime;
        fn memory_access(
            &mut self,
            core: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime;
    }

    impl Fabric for Noc {
        fn message(
            &mut self,
            from: u16,
            to: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            Noc::message(self, from, to, elems, start, costs)
        }
        fn memory_access(
            &mut self,
            core: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            Noc::memory_access(self, core, elems, start, costs)
        }
    }

    impl Fabric for HashMapNoc {
        fn message(
            &mut self,
            from: u16,
            to: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            HashMapNoc::message(self, from, to, elems, start, costs)
        }
        fn memory_access(
            &mut self,
            core: u16,
            elems: u32,
            start: SimTime,
            costs: &NocCosts,
        ) -> SimTime {
            HashMapNoc::memory_access(self, core, elems, start, costs)
        }
    }

    /// Drives `msgs` through `fabric`; returns the summed completion
    /// times (a checksum both implementations must reproduce). Every 7th
    /// message becomes a global-memory access.
    fn drive(fabric: &mut impl Fabric, msgs: &[Msg]) -> u64 {
        let cfg = ArchConfig::paper_default();
        let costs = NocCosts::new(&cfg);
        let mut sum = 0u64;
        for (i, &(from, to, elems, start)) in msgs.iter().enumerate() {
            let done = if i % 7 == 6 {
                fabric.memory_access(from, elems, start, &costs)
            } else {
                fabric.message(from, to, elems, start, &costs)
            };
            sum = sum.wrapping_add(done.as_ps());
        }
        sum
    }

    /// Drives `msgs` through the dense fabric.
    pub fn drive_dense(msgs: &[Msg]) -> u64 {
        drive(&mut Noc::new(MESH, MESH), msgs)
    }

    /// Drives `msgs` through the pre-PR4 HashMap reference fabric.
    pub fn drive_hashmap(msgs: &[Msg]) -> u64 {
        drive(&mut HashMapNoc::new(MESH, MESH), msgs)
    }
}

/// The transfer-saturated end-to-end workload: every core of the paper
/// chip streams rounds of fixed-size messages to a far peer (a 27-step
/// rotation of the 64-core mesh, a single permutation cycle), so the run
/// is dominated by mesh contention and rendezvous bookkeeping — exactly
/// the per-event work the dense fabric attacks. Used by `perf_baseline`
/// and the `noc` criterion bench.
pub mod transfer_workload {
    use pimsim_arch::{ArchConfig, RoutingPolicy};
    use pimsim_core::{SimReport, Simulator};
    use pimsim_isa::{asm, Program};

    /// Cores of the workload chip (the paper's 8×8 mesh).
    pub const CORES: u16 = 64;
    /// Send/recv rounds per core.
    pub const ROUNDS: u32 = 24;
    /// Elements per message.
    pub const LEN: u32 = 256;
    /// The peer rotation (coprime with [`CORES`], so the traffic forms
    /// one long cycle crisscrossing the whole mesh).
    pub const ROTATION: u16 = 27;

    /// Total messages one run injects.
    pub const MESSAGES: u64 = CORES as u64 * ROUNDS as u64;

    /// Builds the rotation-traffic program.
    pub fn program() -> Program {
        let mut text = String::new();
        for c in 0..CORES {
            let dst = (c + ROTATION) % CORES;
            let src = (c + CORES - ROTATION) % CORES;
            text.push_str(&format!(".core {c}\n"));
            for _ in 0..ROUNDS {
                text.push_str(&format!("send core{dst}, [r0+0], {LEN}, tag=1\n"));
                text.push_str(&format!("recv core{src}, [r0+2048], {LEN}, tag=1\n"));
            }
            text.push_str("halt\n");
        }
        asm::assemble(&text).expect("transfer workload assembles")
    }

    /// Runs the workload under `routing` on the paper chip (timing only).
    pub fn run(routing: RoutingPolicy) -> SimReport {
        let arch = ArchConfig::paper_default().with_routing(routing);
        Simulator::new(&arch)
            .run(&program())
            .expect("transfer workload simulates")
    }
}

/// The hotspot-traffic workload: matrix-transpose exchange on the paper
/// chip — every off-diagonal core `(r, c)` streams rounds of messages to
/// its mesh transpose `(c, r)`. Transpose is the canonical adversarial
/// pattern for dimension-order routing: under XY, every flow out of row
/// `r` funnels through the row-`r` links around the diagonal core
/// `(r, r)` and then down column `r`, so a handful of links near the
/// diagonal carry almost all of the traffic. A congestion-aware policy
/// can step off the hot row early and spread the same minimal-length
/// routes over the idle center links — this is the workload where
/// `adaptive` measurably beats `xy` (pinned by a test, recorded in
/// `BENCH_PR5.json`). Used by `perf_baseline` and the `noc` criterion
/// bench.
pub mod hotspot_workload {
    use pimsim_arch::{ArchConfig, RoutingPolicy};
    use pimsim_core::{SimReport, Simulator};
    use pimsim_isa::{asm, Program};

    /// Mesh edge of the workload chip (the paper's 8×8).
    pub const MESH: u16 = 8;
    /// Send/recv rounds per off-diagonal core.
    pub const ROUNDS: u32 = 16;
    /// Elements per message.
    pub const LEN: u32 = 512;

    /// Total messages one run injects (diagonal cores sit idle).
    pub const MESSAGES: u64 = (MESH as u64 * MESH as u64 - MESH as u64) * ROUNDS as u64;

    /// Builds the transpose-traffic program.
    pub fn program() -> Program {
        let mut text = String::new();
        for r in 0..MESH {
            for c in 0..MESH {
                if r == c {
                    continue; // a core's transpose is itself: nothing to move
                }
                let id = r * MESH + c;
                let peer = c * MESH + r;
                text.push_str(&format!(".core {id}\n"));
                for _ in 0..ROUNDS {
                    text.push_str(&format!("send core{peer}, [r0+0], {LEN}, tag=1\n"));
                    text.push_str(&format!("recv core{peer}, [r0+4096], {LEN}, tag=1\n"));
                }
                text.push_str("halt\n");
            }
        }
        asm::assemble(&text).expect("hotspot workload assembles")
    }

    /// Runs the workload under `routing` on the paper chip (timing only).
    pub fn run(routing: RoutingPolicy) -> SimReport {
        let arch = ArchConfig::paper_default().with_routing(routing);
        Simulator::new(&arch)
            .run(&program())
            .expect("hotspot workload simulates")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;
    use pimsim_nn::zoo;
    use pimsim_sweep::{run_grid, SweepGrid};

    #[test]
    fn kernel_workloads_run_on_both_paths() {
        kernel_workload::chain_typed();
        kernel_workload::chain_closure();
        kernel_workload::heap_pressure_typed();
        kernel_workload::heap_pressure_closure();
    }

    #[test]
    fn harness_grid_runs_on_the_engine() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        let rows = run_grid(&grid, 1).expect("harness grid");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].latency_ps > 0);
    }

    #[test]
    fn fabric_workload_checksums_agree() {
        // The dense fabric and the HashMap reference must price identical
        // traffic identically (the `noc` bench's speedup is then pure
        // representation cost, not a behaviour change).
        let msgs = fabric_workload::traffic(2_000);
        assert_eq!(
            fabric_workload::drive_dense(&msgs),
            fabric_workload::drive_hashmap(&msgs)
        );
    }

    #[test]
    fn transfer_workload_runs_and_saturates_transfers() {
        let report = transfer_workload::run(pimsim_arch::RoutingPolicy::Xy);
        // Every injected message is two transfer-class instructions.
        assert_eq!(report.class_counts[2], transfer_workload::MESSAGES * 2);
        assert!(report.latency.as_ns_f64() > 0.0);
    }

    #[test]
    fn hotspot_workload_adaptive_beats_xy_deterministically() {
        use pimsim_arch::RoutingPolicy;
        let xy = hotspot_workload::run(RoutingPolicy::Xy);
        let adaptive = hotspot_workload::run(RoutingPolicy::Adaptive);
        // Every injected message is two transfer-class instructions.
        assert_eq!(xy.class_counts[2], hotspot_workload::MESSAGES * 2);
        // The point of the workload: on transpose traffic, stepping off
        // the congested diagonal links beats dimension-order routing.
        assert!(
            adaptive.latency < xy.latency,
            "adaptive ({}) must beat xy ({}) on transpose hotspot traffic",
            adaptive.latency,
            xy.latency
        );
        // And both policies stay byte-reproducible.
        assert_eq!(xy.latency, hotspot_workload::run(RoutingPolicy::Xy).latency);
        assert_eq!(
            adaptive.latency,
            hotspot_workload::run(RoutingPolicy::Adaptive).latency
        );
    }

    #[test]
    fn constants_are_consistent() {
        for n in FIG34_NETWORKS {
            assert!(zoo::by_name(n, FIG34_RESOLUTION).is_some());
        }
        for n in FIG5_NETWORKS {
            assert!(zoo::by_name(n, FIG5_RESOLUTION).is_some());
        }
    }
}

//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each paper figure has a binary in `src/bin` that prints the same series
//! the paper reports (normalized, as in the paper):
//!
//! * `fig3` — mapping-algorithm comparison (latency + energy)
//! * `fig4` — ROB-size sweep
//! * `fig5` — comparison with the MNSIM2.0-like baseline
//!
//! Run them with `cargo run -p pimsim-bench --release --bin fig3` etc.
//! Criterion microbenchmarks (host performance of the simulator itself)
//! live under `benches/`.

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiled, Compiler, MappingPolicy};
use pimsim_core::{SimReport, Simulator};
use pimsim_event::SimTime;
use pimsim_nn::{zoo, Network};

/// The four networks of Fig. 3 / Fig. 4.
pub const FIG34_NETWORKS: &[&str] = &["alexnet", "googlenet", "resnet18", "squeezenet"];
/// The three MNSIM2.0-source networks of Fig. 5.
pub const FIG5_NETWORKS: &[&str] = &["vgg8", "vgg16", "resnet18"];

/// Input resolution used by the harnesses. The paper's figures are
/// normalized, so shape — not absolute scale — is what must hold; 64×64
/// (32×32 for the CIFAR-scale Fig. 5 set) keeps a full sweep under a few
/// minutes on a laptop. See EXPERIMENTS.md.
pub const FIG34_RESOLUTION: u32 = 64;
/// Fig. 5 resolution (the MNSIM2.0 example networks are CIFAR-scale).
pub const FIG5_RESOLUTION: u32 = 32;
/// Back-to-back inferences for the pipelined Fig. 3/4 runs.
pub const BATCH: u32 = 4;

/// Loads a zoo network at the harness resolution.
pub fn network(name: &str, resolution: u32) -> Network {
    zoo::by_name(name, resolution).unwrap_or_else(|| panic!("unknown network {name}"))
}

/// Compiles and simulates; returns `(compiled, report)`.
pub fn run(
    arch: &ArchConfig,
    net: &Network,
    policy: MappingPolicy,
    batch: u32,
) -> (Compiled, SimReport) {
    let compiled = Compiler::new(arch)
        .mapping(policy)
        .batch(batch)
        .functional(false)
        .compile(net)
        .unwrap_or_else(|e| panic!("compile {}: {e}", net.name));
    let report = Simulator::new(arch)
        .run(&compiled.program)
        .unwrap_or_else(|e| panic!("simulate {}: {e}", net.name));
    (compiled, report)
}

/// Per-image latency of a batched run.
pub fn per_image(latency: SimTime, batch: u32) -> SimTime {
    latency / batch as u64
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_helpers_work_end_to_end() {
        let arch = ArchConfig::small_test();
        let net = zoo::tiny_mlp();
        let (compiled, report) = run(&arch, &net, MappingPolicy::PerformanceFirst, 1);
        assert!(compiled.program.total_instructions() > 0);
        assert!(report.latency > SimTime::ZERO);
        assert_eq!(per_image(SimTime::from_ns(100), 4), SimTime::from_ns(25));
    }

    #[test]
    fn constants_are_consistent() {
        for n in FIG34_NETWORKS {
            assert!(zoo::by_name(n, FIG34_RESOLUTION).is_some());
        }
        for n in FIG5_NETWORKS {
            assert!(zoo::by_name(n, FIG5_RESOLUTION).is_some());
        }
    }
}

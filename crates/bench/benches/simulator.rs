//! Criterion benchmarks: host-side performance of the compile/simulate
//! stack, plus ablation sweeps over the design choices DESIGN.md calls out
//! (ADC sharing, channel credits, vector lanes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::Simulator;
use pimsim_nn::zoo;

fn bench_compile(c: &mut Criterion) {
    let arch = ArchConfig::paper_default();
    let net = zoo::vgg8(32);
    c.bench_function("compile_vgg8_timing_only", |b| {
        b.iter(|| {
            Compiler::new(&arch)
                .mapping(MappingPolicy::PerformanceFirst)
                .functional(false)
                .compile(&net)
                .expect("compiles")
        })
    });
}

fn bench_simulate(c: &mut Criterion) {
    let arch = ArchConfig::paper_default().with_rob(8);
    let net = zoo::tiny_cnn();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(&net)
        .expect("compiles");
    c.bench_function("simulate_tiny_cnn", |b| {
        b.iter(|| Simulator::new(&arch).run(&compiled.program).expect("runs"))
    });
}

/// Ablation: ADC sharing degree (the paper's config shares one ADC per
/// crossbar). Reported as simulated latency via a quick assertion-style
/// sweep; Criterion measures the host cost of each configuration.
fn bench_adc_ablation(c: &mut Criterion) {
    let net = zoo::tiny_cnn();
    let mut group = c.benchmark_group("adc_per_xbar");
    for adcs in [1u32, 4] {
        let mut arch = ArchConfig::paper_default();
        arch.resources.adcs_per_xbar = adcs;
        let compiled = Compiler::new(&arch)
            .mapping(MappingPolicy::PerformanceFirst)
            .functional(false)
            .compile(&net)
            .expect("compiles");
        group.bench_with_input(BenchmarkId::from_parameter(adcs), &adcs, |b, _| {
            b.iter(|| Simulator::new(&arch).run(&compiled.program).expect("runs"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_simulate, bench_adc_ablation
}
criterion_main!(benches);

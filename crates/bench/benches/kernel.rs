//! Criterion benchmark: raw event-kernel throughput (events per second of
//! the SystemC-substitute discrete-event engine).
//!
//! Each scenario runs twice — once through the typed, allocation-free
//! kernel and once through the boxed-closure shim — so the cost of
//! per-event boxing stays visible as the engine evolves. The workloads
//! live in [`pimsim_bench::kernel_workload`], shared with the
//! `perf_baseline` trajectory harness so both measure the same thing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pimsim_bench::kernel_workload as wl;

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_kernel");
    group.throughput(Throughput::Elements(wl::CHAIN_EVENTS));
    group.bench_function("chained_events", |b| b.iter(wl::chain_typed));
    group.bench_function("chained_events_closure_shim", |b| b.iter(wl::chain_closure));
    group.throughput(Throughput::Elements(wl::HEAP_EVENTS));
    group.bench_function("heap_pressure", |b| b.iter(wl::heap_pressure_typed));
    group.bench_function("heap_pressure_closure_shim", |b| {
        b.iter(wl::heap_pressure_closure)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_throughput
}
criterion_main!(benches);

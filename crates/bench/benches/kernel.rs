//! Criterion benchmark: raw event-kernel throughput (events per second of
//! the SystemC-substitute discrete-event engine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pimsim_event::{Kernel, SimTime};

fn bench_event_throughput(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut group = c.benchmark_group("event_kernel");
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("chained_events", |b| {
        b.iter(|| {
            let mut k = Kernel::new(0u64);
            fn step(left: u64, w: &mut u64, ctx: &mut pimsim_event::EventCtx<u64>) {
                *w += 1;
                if left > 0 {
                    ctx.schedule_in(SimTime::from_ps(10), move |w, ctx| step(left - 1, w, ctx));
                }
            }
            k.schedule_at(SimTime::ZERO, move |w, ctx| step(EVENTS - 1, w, ctx));
            k.run();
            assert_eq!(*k.world(), EVENTS);
        })
    });
    group.bench_function("heap_pressure", |b| {
        b.iter(|| {
            let mut k = Kernel::new(0u64);
            for i in 0..10_000u64 {
                k.schedule_at(SimTime::from_ps((i * 7919) % 100_000), |w, _| *w += 1);
            }
            k.run();
            assert_eq!(*k.world(), 10_000);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_throughput
}
criterion_main!(benches);

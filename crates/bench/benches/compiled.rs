//! Criterion benchmarks for the two-engine split: the same program driven
//! by the event kernel and by the compiled scheduler (with event-kernel
//! fallback at transfer boundaries), so the region machinery's win — or
//! its hybrid-boundary overhead — shows up as a tracked number instead of
//! a claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiled, Compiler, MappingPolicy};
use pimsim_core::{EngineKind, Simulator};
use pimsim_nn::zoo;

fn compile(arch: &ArchConfig, net: &pimsim_nn::Network) -> Compiled {
    Compiler::new(arch)
        .mapping(MappingPolicy::PerformanceFirst)
        .functional(false)
        .compile(net)
        .expect("compiles")
}

/// Both engines over a contention-light run (shallow ROB, so cores drain
/// between transfers and the compiled engine re-enters regions often).
fn bench_engines_tiny_cnn(c: &mut Criterion) {
    let arch = ArchConfig::paper_default().with_rob(1);
    let compiled = compile(&arch, &zoo::tiny_cnn());
    let mut group = c.benchmark_group("engine_tiny_cnn_rob1");
    for kind in EngineKind::ALL {
        let cache = pimsim_core::ScheduleCache::default();
        let sim = Simulator::new(&arch)
            .with_engine(kind.engine())
            .with_schedule_cache(&cache);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| sim.run(&compiled.program).expect("runs"))
        });
    }
    group.finish();
}

/// Both engines over a deeper-ROB run where in-flight transfers keep the
/// cores busy: the hybrid boundary dominates and the compiled engine's
/// edge shrinks. Tracking this honestly is the point.
fn bench_engines_lenet(c: &mut Criterion) {
    let arch = ArchConfig::paper_default();
    let compiled = compile(&arch, &zoo::lenet(32));
    let mut group = c.benchmark_group("engine_lenet");
    for kind in EngineKind::ALL {
        let cache = pimsim_core::ScheduleCache::default();
        let sim = Simulator::new(&arch)
            .with_engine(kind.engine())
            .with_schedule_cache(&cache);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| sim.run(&compiled.program).expect("runs"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engines_tiny_cnn, bench_engines_lenet
}
criterion_main!(benches);

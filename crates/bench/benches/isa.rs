//! Criterion benchmark: ISA encode/decode and assembly round-trip rates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pimsim_isa::{asm, decode, encode, Addr, Instruction, Reg, VBinOp};

fn sample_instructions() -> Vec<Instruction> {
    let a = |r: u8, off: i32| Addr::new(Reg::new(r).unwrap(), off).unwrap();
    (0..1000)
        .map(|i| match i % 4 {
            0 => Instruction::Mvm {
                group: ((i % 100) as u16).into(),
                dst: a(1, i),
                src: a(2, i),
                len: 128,
            },
            1 => Instruction::VBin {
                op: VBinOp::Add,
                dst: a(3, i),
                a: a(4, i),
                b: a(5, i),
                len: 512,
            },
            2 => Instruction::Send {
                peer: ((i % 64) as u16).into(),
                src: a(6, i),
                len: 256,
                tag: (i % 1000) as u16,
            },
            _ => Instruction::SImm {
                op: pimsim_isa::SImmOp::Add,
                rd: Reg::R7,
                rs1: Reg::R8,
                imm: i,
            },
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let instrs = sample_instructions();
    let words: Vec<u128> = instrs.iter().map(|i| encode(i).unwrap()).collect();
    let mut group = c.benchmark_group("isa_codec");
    group.throughput(Throughput::Elements(instrs.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            for i in &instrs {
                std::hint::black_box(encode(i).unwrap());
            }
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            for w in &words {
                std::hint::black_box(decode(*w).unwrap());
            }
        })
    });
    group.bench_function("asm_roundtrip", |b| {
        b.iter(|| {
            for i in instrs.iter().take(100) {
                let text = i.to_string();
                std::hint::black_box(asm::parse_instruction(&text).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codec
}
criterion_main!(benches);

//! Criterion benchmark: NoC fabric throughput — the dense, allocation-free
//! fabric against the pre-PR4 HashMap reference on identical synthetic
//! traffic, plus the transfer-saturated and hotspot (transpose)
//! end-to-end workloads per routing policy.
//!
//! The workloads live in [`pimsim_bench::fabric_workload`],
//! [`pimsim_bench::transfer_workload`] and
//! [`pimsim_bench::hotspot_workload`], shared with the `perf_baseline`
//! trajectory harness so both measure the same thing (see
//! `BENCH_PR5.json`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pimsim_arch::RoutingPolicy;
use pimsim_bench::{fabric_workload as fw, hotspot_workload as hw, transfer_workload as tw};

fn bench_fabric(c: &mut Criterion) {
    let msgs = fw::traffic(fw::FABRIC_MESSAGES);
    let mut group = c.benchmark_group("noc_fabric");
    group.throughput(Throughput::Elements(fw::FABRIC_MESSAGES as u64));
    group.bench_function("dense", |b| b.iter(|| fw::drive_dense(&msgs)));
    group.bench_function("hashmap_reference", |b| b.iter(|| fw::drive_hashmap(&msgs)));
    group.finish();
}

fn bench_transfer_saturated(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_saturated");
    group.throughput(Throughput::Elements(tw::MESSAGES));
    for routing in RoutingPolicy::ALL {
        group.bench_function(routing.name(), |b| b.iter(|| tw::run(routing)));
    }
    group.finish();
}

fn bench_hotspot(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_transpose");
    group.throughput(Throughput::Elements(hw::MESSAGES));
    for routing in RoutingPolicy::ALL {
        group.bench_function(routing.name(), |b| b.iter(|| hw::run(routing)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fabric, bench_transfer_saturated, bench_hotspot
}
criterion_main!(benches);

//! Property test: under XY routing the dense fabric's occupancy state
//! byte-matches the pre-PR4 HashMap fabric on randomized traffic — every
//! message's completion time and every directed link's `free_at` agree
//! exactly, message by message.

use proptest::prelude::*;

use pimsim_arch::ArchConfig;
use pimsim_bench::fabric_workload::HashMapNoc;
use pimsim_core::{Noc, NocCosts};
use pimsim_event::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_occupancy_matches_hashmap_fabric_under_xy(
        rows in 1u16..8,
        cols in 1u16..8,
        traffic in proptest::collection::vec(
            (0u32..10_000, 0u32..10_000, 1u32..2048, 0u64..500), 1..64),
    ) {
        let cfg = ArchConfig::paper_default();
        let costs = NocCosts::new(&cfg);
        let routers = rows as u32 * cols as u32;
        let mut dense = Noc::new(rows, cols);
        let mut reference = HashMapNoc::new(rows, cols);
        for (i, &(f, t, elems, start_ns)) in traffic.iter().enumerate() {
            let from = (f % routers) as u16;
            let to = (t % routers) as u16;
            let start = SimTime::from_ns(start_ns);
            // Mix in memory traffic: the controller queue and mem port
            // must match too.
            let (a, b) = if i % 5 == 4 {
                (
                    dense.memory_access(from, elems, start, &costs),
                    reference.memory_access(from, elems, start, &costs),
                )
            } else {
                (
                    dense.message(from, to, elems, start, &costs),
                    reference.message(from, to, elems, start, &costs),
                )
            };
            prop_assert_eq!(a, b, "message {} completion diverged", i);
            // Full occupancy sweep: every directed link, plus the mem port.
            for r in 0..routers as u16 {
                let mut neighbours = Vec::new();
                if r % cols != cols - 1 { neighbours.push(r + 1); }
                if r % cols != 0 { neighbours.push(r - 1); }
                if r / cols != rows - 1 { neighbours.push(r + cols); }
                if r / cols != 0 { neighbours.push(r - cols); }
                for n in neighbours {
                    prop_assert_eq!(
                        dense.link_free(r, n),
                        reference.link_free(r, n),
                        "link {}->{} diverged after message {}", r, n, i
                    );
                }
            }
            prop_assert_eq!(
                dense.link_free(0, pimsim_core::MEM_NODE),
                reference.link_free(0, pimsim_core::MEM_NODE)
            );
        }
    }
}

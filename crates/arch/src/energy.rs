//! A typed energy quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use pimsim_event::SimTime;

/// An amount of energy, stored in picojoules.
///
/// Newtyped so latencies, energies and powers cannot be mixed up
/// (C-NEWTYPE). Power is derived, not stored: `energy / time`.
///
/// ```rust
/// use pimsim_arch::Energy;
/// use pimsim_event::SimTime;
/// let e = Energy::from_pj(2_000_000.0);
/// assert!((e.as_uj() - 2.0).abs() < 1e-12);
/// let p = e.power_over(SimTime::from_us(1));
/// assert!((p - 2.0).abs() < 1e-9, "2 uJ over 1 us = 2 W");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Energy {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Energy {
        Energy(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Energy {
        Energy(uj * 1e6)
    }

    /// This energy in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// This energy in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// This energy in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// This energy in joules.
    pub fn as_j(self) -> f64 {
        self.0 / 1e12
    }

    /// Average power in watts when spent over `duration`.
    /// Returns 0 for a zero duration.
    pub fn power_over(self, duration: SimTime) -> f64 {
        let secs = duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.as_j() / secs
        }
    }

    /// `true` iff this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj.abs() >= 1e12 {
            write!(f, "{:.3} J", self.as_j())
        } else if pj.abs() >= 1e6 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else if pj.abs() >= 1e3 {
            write!(f, "{:.3} nJ", self.as_nj())
        } else {
            write!(f, "{pj:.3} pJ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let e = Energy::from_nj(1.0);
        assert_eq!(e.as_pj(), 1e3);
        assert_eq!(Energy::from_uj(1.0).as_nj(), 1e3);
        assert!((Energy::from_pj(1e12).as_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = Energy::from_pj(3.0);
        let b = Energy::from_pj(4.0);
        assert_eq!((a + b).as_pj(), 7.0);
        assert_eq!((b - a).as_pj(), 1.0);
        assert_eq!((a * 2.0).as_pj(), 6.0);
        assert_eq!((b / 2.0).as_pj(), 2.0);
        let total: Energy = [a, b].into_iter().sum();
        assert_eq!(total.as_pj(), 7.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_pj(), 7.0);
    }

    #[test]
    fn power_derivation() {
        let e = Energy::from_pj(1000.0); // 1 nJ
        let p = e.power_over(SimTime::from_ns(1)); // 1 nJ / 1 ns = 1 W
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(Energy::from_pj(5.0).power_over(SimTime::ZERO), 0.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Energy::from_pj(12.0)), "12.000 pJ");
        assert_eq!(format!("{}", Energy::from_pj(1500.0)), "1.500 nJ");
        assert_eq!(format!("{}", Energy::from_uj(2.0)), "2.000 uJ");
    }
}

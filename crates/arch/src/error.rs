//! Error types for configuration handling.

use std::error::Error;
use std::fmt;

/// Errors produced while loading or validating an architecture
/// configuration.
#[derive(Debug)]
pub enum ArchError {
    /// A configuration field has an inconsistent or out-of-range value.
    Invalid {
        /// Which field (dotted path, e.g. `resources.xbar_rows`).
        field: &'static str,
        /// Why it is invalid.
        msg: String,
    },
    /// The configuration file could not be parsed.
    Parse(String),
    /// The configuration file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::Invalid { field, msg } => {
                write!(f, "invalid configuration field `{field}`: {msg}")
            }
            ArchError::Parse(msg) => write!(f, "configuration parse error: {msg}"),
            ArchError::Io(e) => write!(f, "configuration i/o error: {e}"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArchError {
    fn from(e: std::io::Error) -> Self {
        ArchError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = ArchError::Invalid {
            field: "resources.xbar_rows",
            msg: "must be positive".into(),
        };
        assert!(e.to_string().contains("resources.xbar_rows"));
    }

    #[test]
    fn io_error_chains() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = ArchError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}

#![warn(missing_docs)]

//! Architecture configuration and hardware cost models.
//!
//! The paper's workflow starts from an **architecture configuration file**
//! holding four sections (Fig. 1): architectural resources, hardware
//! performance parameters, simulator settings, and interconnection
//! parameters. [`ArchConfig`] models exactly that file (JSON on disk), and
//! the [`model`] module turns it into latency ([`pimsim_event::SimTime`])
//! and energy ([`Energy`]) costs for every operation class. Both the
//! cycle-accurate simulator and the MNSIM2.0-like baseline consume the same
//! cost model, which is what makes the paper's Fig. 5 comparison (“using the
//! same crossbar configuration”) meaningful.
//!
//! # Example
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's evaluation chip: 64 cores, 512 crossbars/core, 128x128.
//! let arch = ArchConfig::paper_default();
//! arch.validate()?;
//! assert_eq!(arch.resources.cores(), 64);
//!
//! // Configurations round-trip through the on-disk JSON format.
//! let text = arch.to_json();
//! let again = ArchConfig::from_json(&text)?;
//! assert_eq!(arch, again);
//! # Ok(())
//! # }
//! ```

mod config;
mod energy;
mod error;
pub mod model;

pub use config::{
    ArchConfig, EnergyParams, NocParams, Resources, RoutingPolicy, SimSettings, TimingParams,
};
pub use energy::Energy;
pub use error::ArchError;

/// Result alias for fallible configuration operations.
pub type Result<T> = std::result::Result<T, ArchError>;

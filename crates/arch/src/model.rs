//! The hardware cost model: latency and energy for every operation class.
//!
//! All formulas are documented here once and shared by the cycle-accurate
//! simulator and the MNSIM2.0-like baseline, so the two disagree only in
//! *how operations are scheduled*, never in per-operation costs — the exact
//! property the paper's Fig. 5 comparison isolates.
//!
//! ## Matrix-vector multiplication (crossbar group)
//!
//! Inputs stream bit-serially over `phases = ceil(input_bits / dac_bits)`
//! phases. In each phase every crossbar of the group performs one analog
//! read (`xbar_read_ns`, all crossbars in parallel) and then its ADC
//! digitizes the active bit-line columns. A logical weight spans
//! `cells_per_weight = ceil(weight_bits / cell_bits)` physical columns, so a
//! group producing `output_len` values converts `output_len *
//! cells_per_weight` columns, spread over its crossbars; the slowest
//! crossbar (most active columns) bounds the phase:
//!
//! ```text
//! t_mvm = phases * (xbar_read_ns + ceil(worst_cols / adcs_per_xbar) * adc_sample_ns)
//! ```
//!
//! Energy counts active cells, DAC row drivers, and ADC conversions.
//!
//! ## Vector operations
//!
//! `t = startup + ceil(len / lanes) * cycles_per_batch` core cycles; energy
//! is per element plus local-memory traffic (`reads + writes` streams).
//!
//! ## Transfers
//!
//! A message of `n` 32-bit elements becomes `1 + ceil(4n / flit_bytes)`
//! flits (one header flit). Per-hop pipe latency is `hop_cycles`; a link
//! forwards `link_flits_per_cycle`, so serialization is
//! `flits / link_flits_per_cycle` NoC cycles. Contention on shared links is
//! modeled by the simulator's NoC, not here.

use pimsim_event::{Clock, SimTime};

use crate::config::ArchConfig;
use crate::energy::Energy;

/// A latency/energy pair for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Time the operation occupies its execution resource.
    pub time: SimTime,
    /// Energy consumed by the operation.
    pub energy: Energy,
}

/// The shared hardware cost model derived from an [`ArchConfig`].
///
/// ```rust
/// use pimsim_arch::{model::CostModel, ArchConfig};
/// let arch = ArchConfig::paper_default();
/// let m = CostModel::new(&arch);
/// // A full 128-input, 128-output MVM on a 4-crossbar group:
/// let c = m.mvm_cost(128, 128, 4);
/// assert!(c.time.as_ns_f64() > 0.0 && c.energy.as_pj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    cfg: &'a ArchConfig,
}

impl<'a> CostModel<'a> {
    /// Creates a cost model over `cfg`.
    pub fn new(cfg: &'a ArchConfig) -> Self {
        CostModel { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &'a ArchConfig {
        self.cfg
    }

    /// The core clock.
    pub fn core_clock(&self) -> Clock {
        Clock::from_ghz(self.cfg.timing.core_freq_ghz)
    }

    /// The NoC clock.
    pub fn noc_clock(&self) -> Clock {
        Clock::from_ghz(self.cfg.noc.freq_ghz)
    }

    /// Worst per-crossbar active physical columns for a group with
    /// `output_len` logical outputs over `xbar_count` crossbars.
    fn worst_cols(&self, output_len: u32, xbar_count: u32) -> u32 {
        let phys = output_len * self.cfg.resources.cells_per_weight();
        phys.div_ceil(xbar_count.max(1))
            .min(self.cfg.resources.xbar_cols)
    }

    /// Cost of one `MVM` on a group with `input_len` inputs, `output_len`
    /// outputs, spread over `xbar_count` crossbars.
    pub fn mvm_cost(&self, input_len: u32, output_len: u32, xbar_count: u32) -> Cost {
        let r = &self.cfg.resources;
        let t = &self.cfg.timing;
        let e = &self.cfg.energy;
        let phases = r.mvm_phases() as f64;
        let worst = self.worst_cols(output_len, xbar_count);
        let adc_serial = worst.div_ceil(r.adcs_per_xbar) as f64 * t.adc_sample_ns;
        let time_ns = phases * (t.xbar_read_ns + adc_serial);

        let phys_cols = (output_len * r.cells_per_weight()) as f64;
        let active_cells = input_len as f64 * phys_cols;
        let dac_drives = input_len as f64 * xbar_count as f64;
        let conversions = phys_cols;
        let energy_pj = phases
            * (active_cells * e.xbar_pj_per_cell
                + dac_drives * e.dac_pj_per_input
                + conversions * e.adc_pj_per_sample)
            // Read inputs from and write outputs to the local scratchpad once.
            + (input_len + output_len) as f64 * e.local_mem_pj_per_elem;
        Cost {
            time: SimTime::from_ns_f64(time_ns),
            energy: Energy::from_pj(energy_pj),
        }
    }

    /// Cost of a vector operation over `len` elements with `reads` source
    /// streams and `writes` destination streams.
    pub fn vector_cost(&self, len: u32, reads: u32, writes: u32) -> Cost {
        let r = &self.cfg.resources;
        let t = &self.cfg.timing;
        let e = &self.cfg.energy;
        let batches = (len as u64).div_ceil(r.vector_lanes as u64);
        let cycles = t.vector_startup_cycles as u64
            + batches * t.vector_cycles_per_batch as u64
            + t.local_mem_access_cycles as u64;
        let energy_pj = len as f64 * e.vector_pj_per_elem
            + (len as f64 * (reads + writes) as f64) * e.local_mem_pj_per_elem;
        Cost {
            time: self.core_clock().cycles_to_time(cycles),
            energy: Energy::from_pj(energy_pj),
        }
    }

    /// Cost of one scalar ALU operation.
    pub fn scalar_cost(&self) -> Cost {
        Cost {
            time: self
                .core_clock()
                .cycles_to_time(self.cfg.timing.scalar_op_cycles as u64),
            energy: Energy::from_pj(self.cfg.energy.scalar_pj_per_op),
        }
    }

    /// Frontend (fetch + decode) energy charged per executed instruction.
    pub fn frontend_energy(&self) -> Energy {
        Energy::from_pj(self.cfg.energy.frontend_pj_per_instr)
    }

    /// Flits needed to carry `elems` 32-bit elements (plus a header flit).
    pub fn flits_for_elems(&self, elems: u32) -> u64 {
        1 + (elems as u64 * 4).div_ceil(self.cfg.noc.flit_bytes as u64)
    }

    /// Pure pipe latency for a packet crossing `hops` mesh hops (no
    /// serialization, no contention).
    pub fn noc_hop_latency(&self, hops: u32) -> SimTime {
        self.noc_clock()
            .cycles_to_time(hops as u64 * self.cfg.noc.hop_cycles as u64)
    }

    /// Time for one link to forward `flits` flits.
    pub fn link_serialization(&self, flits: u64) -> SimTime {
        let cycles = (flits as f64 / self.cfg.noc.link_flits_per_cycle).ceil() as u64;
        self.noc_clock().cycles_to_time(cycles)
    }

    /// NoC energy for `flits` flits crossing `hops` hops.
    pub fn noc_energy(&self, flits: u64, hops: u32) -> Energy {
        Energy::from_pj(flits as f64 * hops as f64 * self.cfg.energy.noc_pj_per_flit_hop)
    }

    /// Dynamic energy of a core-to-core message of `elems` elements: NoC
    /// wire/router energy along the XY route, or the local scratchpad-copy
    /// energy when `from == to` (the timing-side counterpart lives in the
    /// simulator's `Noc::message`, which charges `local_copy_cost` time
    /// for the same case).
    pub fn message_energy(&self, from: u16, to: u16, elems: u32) -> Energy {
        if from == to {
            self.local_copy_cost(elems).energy
        } else {
            let hops = self.cfg.resources.mesh_hops(from, to);
            self.noc_energy(self.flits_for_elems(elems), hops)
        }
    }

    /// Uncontended end-to-end message cost over `hops` hops: pipe latency +
    /// serialization + wire energy. The cycle-accurate simulator instead
    /// walks the packet through per-link occupancy; this closed form is used
    /// by the baseline and for quick estimates.
    pub fn noc_message_cost(&self, elems: u32, hops: u32) -> Cost {
        let flits = self.flits_for_elems(elems);
        Cost {
            time: self.noc_hop_latency(hops) + self.link_serialization(flits),
            energy: self.noc_energy(flits, hops),
        }
    }

    /// Cost of a same-core "transfer": a local scratchpad copy of `elems`
    /// elements. A message whose destination is its own core never touches
    /// the mesh; it streams through the scratchpad port at one element per
    /// core cycle after the usual access latency, and pays one read plus
    /// one write per element.
    pub fn local_copy_cost(&self, elems: u32) -> Cost {
        let t = &self.cfg.timing;
        let cycles = t.local_mem_access_cycles as u64 + elems as u64;
        Cost {
            time: self.core_clock().cycles_to_time(cycles),
            energy: Energy::from_pj(2.0 * elems as f64 * self.cfg.energy.local_mem_pj_per_elem),
        }
    }

    /// Cost of a global-memory access of `elems` elements (latency +
    /// bandwidth serialization at the controller; NoC cost is separate).
    pub fn global_mem_cost(&self, elems: u32) -> Cost {
        let t = &self.cfg.timing;
        let time_ns = t.global_mem_latency_ns + elems as f64 / t.global_mem_bw_elems_per_ns;
        Cost {
            time: SimTime::from_ns_f64(time_ns),
            energy: Energy::from_pj(elems as f64 * self.cfg.energy.global_mem_pj_per_elem),
        }
    }

    /// Total static power of the chip in watts.
    pub fn static_power_w(&self) -> f64 {
        let e = &self.cfg.energy;
        (e.core_static_mw * self.cfg.resources.cores() as f64 + e.chip_static_mw) / 1e3
    }

    /// Static energy burned over `duration`.
    pub fn static_energy(&self, duration: SimTime) -> Energy {
        Energy::from_pj(self.static_power_w() * duration.as_secs_f64() * 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArchConfig;

    fn model(cfg: &ArchConfig) -> CostModel<'_> {
        CostModel::new(cfg)
    }

    #[test]
    fn mvm_time_matches_formula() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        // 128 inputs, 128 outputs over 4 crossbars: phys cols = 512, worst
        // per xbar = 128, phases = 8.
        let c = m.mvm_cost(128, 128, 4);
        let expect_ns = 8.0 * (100.0 + 128.0 * 1.0);
        assert!((c.time.as_ns_f64() - expect_ns).abs() < 1e-6);
    }

    #[test]
    fn mvm_more_adcs_is_faster() {
        let mut cfg = ArchConfig::paper_default();
        let slow = model(&cfg).mvm_cost(128, 128, 4).time;
        cfg.resources.adcs_per_xbar = 4;
        let fast = model(&cfg).mvm_cost(128, 128, 4).time;
        assert!(fast < slow);
    }

    #[test]
    fn mvm_worst_cols_capped_by_xbar_width() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        // One crossbar cannot have more than 128 active columns even if the
        // logical output would need more.
        let c1 = m.mvm_cost(128, 32, 1); // 32*4 = 128 phys cols on one xbar
        let c2 = m.mvm_cost(128, 64, 1); // would be 256, capped at 128
        assert_eq!(c1.time, c2.time);
    }

    #[test]
    fn mvm_energy_scales_with_work() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let small = m.mvm_cost(64, 64, 2).energy;
        let large = m.mvm_cost(128, 128, 4).energy;
        assert!(large > small);
    }

    #[test]
    fn vector_cost_scales_in_batches() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let c32 = m.vector_cost(32, 2, 1); // one batch of 32 lanes
        let c33 = m.vector_cost(33, 2, 1); // two batches
        assert!(c33.time > c32.time);
        assert_eq!(
            m.vector_cost(1, 2, 1).time,
            m.vector_cost(32, 2, 1).time,
            "within one batch, time is flat"
        );
    }

    #[test]
    fn flit_math() {
        let cfg = ArchConfig::paper_default(); // 32-byte flits
        let m = model(&cfg);
        assert_eq!(m.flits_for_elems(0), 1); // header only
        assert_eq!(m.flits_for_elems(8), 2); // 32 bytes payload
        assert_eq!(m.flits_for_elems(9), 3);
    }

    #[test]
    fn noc_cost_monotone_in_distance_and_size() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        assert!(m.noc_message_cost(64, 4).time > m.noc_message_cost(64, 1).time);
        assert!(m.noc_message_cost(256, 2).time > m.noc_message_cost(64, 2).time);
        assert!(m.noc_energy(10, 3) > m.noc_energy(10, 1));
    }

    #[test]
    fn local_copy_scales_with_length() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let short = m.local_copy_cost(8);
        let long = m.local_copy_cost(800);
        assert!(long.time > short.time);
        assert!(long.energy > short.energy);
        // 1 cycle access + 8 cycles streaming at 1 GHz.
        assert_eq!(short.time, SimTime::from_ns(9));
        // Read + write per element.
        assert!((short.energy.as_pj() - 2.0 * 8.0 * cfg.energy.local_mem_pj_per_elem).abs() < 1e-9);
    }

    #[test]
    fn message_energy_selects_wire_or_copy() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let remote = m.message_energy(0, 9, 64);
        assert_eq!(remote, m.noc_energy(m.flits_for_elems(64), 2));
        let local = m.message_energy(5, 5, 64);
        assert_eq!(local, m.local_copy_cost(64).energy);
        assert!(local.as_pj() > 0.0);
    }

    #[test]
    fn global_mem_includes_bandwidth_term() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let small = m.global_mem_cost(8).time;
        let big = m.global_mem_cost(8000).time;
        assert!(big > small);
    }

    #[test]
    fn static_power_and_energy() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        // 64 cores * 5 mW + 50 mW = 370 mW
        assert!((m.static_power_w() - 0.37).abs() < 1e-9);
        let e = m.static_energy(SimTime::from_us(1));
        assert!((e.as_uj() - 0.37).abs() < 1e-9);
    }

    #[test]
    fn scalar_cost_is_one_cycle_at_default() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        assert_eq!(m.scalar_cost().time, SimTime::from_ns(1));
    }
}

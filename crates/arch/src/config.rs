//! The architecture configuration file model.
//!
//! Mirrors the paper's configuration file sections (Fig. 1):
//! [`Resources`] (architectural resources), [`TimingParams`] +
//! [`EnergyParams`] (hardware performance parameters), [`SimSettings`]
//! (simulator settings) and [`NocParams`] (interconnection parameters).

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// Architectural resources: what hardware exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Resources {
    /// Mesh rows of cores.
    pub core_rows: u16,
    /// Mesh columns of cores.
    pub core_cols: u16,
    /// Crossbars per core's matrix execution unit.
    pub xbars_per_core: u32,
    /// Crossbar rows (word lines / inputs).
    pub xbar_rows: u32,
    /// Crossbar columns (bit lines / outputs).
    pub xbar_cols: u32,
    /// ADCs per crossbar. The paper's evaluation shares one ADC across a
    /// crossbar's columns (`1`); larger values reduce ADC serialization.
    pub adcs_per_xbar: u32,
    /// Weight precision in bits.
    pub weight_bits: u32,
    /// Bits stored per memristor cell; a weight occupies
    /// `ceil(weight_bits / cell_bits)` adjacent physical columns.
    pub cell_bits: u32,
    /// Activation precision in bits.
    pub input_bits: u32,
    /// DAC resolution; inputs stream over `ceil(input_bits / dac_bits)`
    /// bit-serial phases.
    pub dac_bits: u32,
    /// Re-order buffer capacity (in-flight instructions per core). The
    /// paper sweeps 1–16 in Fig. 4.
    pub rob_size: u32,
    /// SIMD lanes of the vector execution unit.
    pub vector_lanes: u32,
    /// Local (per-core) scratchpad capacity in KiB. Sized generously: it
    /// abstracts a double-buffered streaming scratchpad, because this
    /// reproduction keeps whole feature maps resident (see DESIGN.md).
    pub local_mem_kb: u32,
    /// Global memory capacity in MiB.
    pub global_mem_mb: u32,
}

impl Resources {
    /// Total core count (`core_rows * core_cols`).
    pub fn cores(&self) -> u16 {
        self.core_rows * self.core_cols
    }

    /// Local memory capacity in 32-bit elements.
    pub fn local_mem_elems(&self) -> u32 {
        self.local_mem_kb * 1024 / 4
    }

    /// Global memory capacity in 32-bit elements.
    pub fn global_mem_elems(&self) -> u64 {
        self.global_mem_mb as u64 * 1024 * 1024 / 4
    }

    /// Physical columns one logical weight occupies.
    pub fn cells_per_weight(&self) -> u32 {
        self.weight_bits.div_ceil(self.cell_bits)
    }

    /// Bit-serial input phases per MVM.
    pub fn mvm_phases(&self) -> u32 {
        self.input_bits.div_ceil(self.dac_bits)
    }

    /// Logical weight columns one crossbar can hold.
    pub fn logical_cols_per_xbar(&self) -> u32 {
        self.xbar_cols / self.cells_per_weight()
    }

    /// Mesh position (row, col) of a core id (row-major).
    pub fn core_position(&self, core: u16) -> (u16, u16) {
        (core / self.core_cols, core % self.core_cols)
    }

    /// Manhattan hop distance between two cores on the mesh.
    pub fn mesh_hops(&self, a: u16, b: u16) -> u32 {
        let (ar, ac) = self.core_position(a);
        let (br, bc) = self.core_position(b);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }
}

/// Hardware performance parameters: how fast everything is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TimingParams {
    /// Core clock frequency in GHz.
    pub core_freq_ghz: f64,
    /// One analog crossbar read phase (DAC settle + array read), ns.
    pub xbar_read_ns: f64,
    /// One ADC conversion, ns.
    pub adc_sample_ns: f64,
    /// Vector-unit pipeline fill, cycles.
    pub vector_startup_cycles: u32,
    /// Cycles per vector lane-batch (usually 1).
    pub vector_cycles_per_batch: u32,
    /// Scalar ALU latency, cycles.
    pub scalar_op_cycles: u32,
    /// Decode stage latency, cycles.
    pub decode_cycles: u32,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched to execution units per cycle.
    pub dispatch_width: u32,
    /// Local scratchpad random-access latency, cycles.
    pub local_mem_access_cycles: u32,
    /// Global memory access latency, ns.
    pub global_mem_latency_ns: f64,
    /// Global memory streaming bandwidth, elements (32-bit) per ns.
    pub global_mem_bw_elems_per_ns: f64,
}

/// Mesh routing policy for the NoC.
///
/// The paper's chip routes dimension-ordered X-then-Y (§III-B); the other
/// policies open a design-space axis over the same mesh (O1TURN-style
/// per-message alternation balances load across the two dimension orders;
/// `adaptive` picks the less-congested minimal direction at each hop from
/// live link occupancy). All are minimal, deterministic and deadlock-free
/// on a mesh; the simulator's `Routing` trait is where further policies
/// plug in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum RoutingPolicy {
    /// Dimension-order routing, X (columns) first — the paper's default.
    #[default]
    Xy,
    /// Dimension-order routing, Y (rows) first.
    Yx,
    /// O1TURN-style: alternate XY / YX dimension order per message.
    XyYxAlternate,
    /// Congestion-aware minimal routing: at each hop, step into the
    /// minimal direction whose outgoing link frees earliest (ties broken
    /// deterministically by the message's injection number).
    Adaptive,
}

impl RoutingPolicy {
    /// Every selectable policy, in canonical order.
    pub const ALL: [RoutingPolicy; 4] = [
        RoutingPolicy::Xy,
        RoutingPolicy::Yx,
        RoutingPolicy::XyYxAlternate,
        RoutingPolicy::Adaptive,
    ];

    /// The canonical configuration-file / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::Xy => "xy",
            RoutingPolicy::Yx => "yx",
            RoutingPolicy::XyYxAlternate => "xy-yx",
            RoutingPolicy::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<RoutingPolicy, String> {
        match s {
            "xy" => Ok(RoutingPolicy::Xy),
            "yx" => Ok(RoutingPolicy::Yx),
            "xy-yx" | "o1turn" | "alternate" => Ok(RoutingPolicy::XyYxAlternate),
            "adaptive" => Ok(RoutingPolicy::Adaptive),
            other => Err(format!(
                "unknown routing policy `{other}` (want xy, yx, xy-yx or adaptive)"
            )),
        }
    }
}

impl TryFrom<String> for RoutingPolicy {
    type Error = String;

    fn try_from(s: String) -> Result<RoutingPolicy, String> {
        s.parse()
    }
}

impl From<RoutingPolicy> for String {
    fn from(r: RoutingPolicy) -> String {
        r.name().to_string()
    }
}

/// Interconnection (NoC) parameters. The chip uses a 2-D mesh with XY
/// routing (paper §III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct NocParams {
    /// NoC clock frequency in GHz.
    pub freq_ghz: f64,
    /// Flit width in bytes.
    pub flit_bytes: u32,
    /// Per-hop router + link traversal latency, NoC cycles.
    pub hop_cycles: u32,
    /// Link bandwidth in flits per NoC cycle (usually 1).
    pub link_flits_per_cycle: f64,
    /// Credit-based flow control: how many undelivered messages one
    /// `(sender, receiver, tag)` channel may hold in the receiver's queue.
    /// Transfers stay *synchronized* (a send completes only once the
    /// payload sits at the receiver), but a small hardware queue decouples
    /// sender and receiver enough to avoid rendezvous deadlocks.
    pub channel_credits: u32,
    /// Mesh routing policy (`xy`, `yx`, `xy-yx`, or `adaptive`). Defaults
    /// to `xy` — the paper's dimension-order routing — so configurations
    /// written before this knob existed keep their exact behaviour.
    #[serde(default)]
    pub routing: RoutingPolicy,
    /// Virtual channels per rendezvous channel: each `(sender, receiver,
    /// tag)` flow is split round-robin over this many VCs, each with its
    /// own `channel_credits` credit pool. Defaults to `1` — a single VC is
    /// exactly the pre-VC credit model, so older configurations keep their
    /// exact behaviour.
    #[serde(default = "default_virtual_channels")]
    pub virtual_channels: u32,
    /// Router pipeline stages a head flit traverses per hop: per-hop head
    /// latency is `hop_cycles * router_pipeline_depth` NoC cycles, while
    /// link throughput (serialization) is unchanged — pipelining deepens
    /// latency, not bandwidth. Defaults to `1` — the pre-pipeline flat hop
    /// cost, so older configurations keep their exact behaviour.
    #[serde(default = "default_router_pipeline_depth")]
    pub router_pipeline_depth: u32,
}

/// Serde default for [`NocParams::virtual_channels`]: one VC, the
/// pre-virtual-channel credit model.
fn default_virtual_channels() -> u32 {
    1
}

/// Serde default for [`NocParams::router_pipeline_depth`]: one stage, the
/// pre-pipeline flat hop cost.
fn default_router_pipeline_depth() -> u32 {
    1
}

/// Per-operation energies, picojoules. Defaults are ISAAC/PUMA-class
/// figures; the paper's results are normalized, so only relative costs
/// shape the curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EnergyParams {
    /// Per active memristor cell per read phase.
    pub xbar_pj_per_cell: f64,
    /// Per ADC conversion.
    pub adc_pj_per_sample: f64,
    /// Per DAC-driven input row per phase.
    pub dac_pj_per_input: f64,
    /// Per vector-unit element processed.
    pub vector_pj_per_elem: f64,
    /// Per scalar ALU operation.
    pub scalar_pj_per_op: f64,
    /// Per local-memory element read or written.
    pub local_mem_pj_per_elem: f64,
    /// Per global-memory element transferred.
    pub global_mem_pj_per_elem: f64,
    /// Per flit per mesh hop.
    pub noc_pj_per_flit_hop: f64,
    /// Fetch + decode overhead per instruction.
    pub frontend_pj_per_instr: f64,
    /// Static power per core, milliwatts.
    pub core_static_mw: f64,
    /// Chip-level static power (global memory, clocking), milliwatts.
    pub chip_static_mw: f64,
}

/// Simulator settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SimSettings {
    /// Execute data movement and arithmetic (functional simulation) in
    /// addition to timing. Scalar registers are always functional; this
    /// flag controls vector/matrix/transfer payloads.
    pub functional: bool,
    /// Safety stop: abort after this many core cycles (deadlock guard).
    pub max_cycles: u64,
    /// Record a per-instruction trace (slow; for debugging).
    pub trace: bool,
    /// Model the crossbar *structure hazard* (back-to-back `MVM`s on the
    /// same crossbars serialize). Disable only for ablation studies; real
    /// hardware cannot reuse a crossbar mid-computation.
    pub structure_hazard: bool,
}

/// The complete architecture configuration — the paper's "architecture
/// configuration file".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ArchConfig {
    /// Architectural resources.
    pub resources: Resources,
    /// Hardware performance parameters.
    pub timing: TimingParams,
    /// Per-operation energies.
    pub energy: EnergyParams,
    /// Interconnection parameters.
    pub noc: NocParams,
    /// Simulator settings.
    pub sim: SimSettings,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::paper_default()
    }
}

impl ArchConfig {
    /// The paper's evaluation chip (§IV-A): 64 cores in an 8×8 mesh, 512
    /// crossbars per core, 128×128 crossbars, one shared ADC per crossbar.
    pub fn paper_default() -> ArchConfig {
        ArchConfig {
            resources: Resources {
                core_rows: 8,
                core_cols: 8,
                xbars_per_core: 512,
                xbar_rows: 128,
                xbar_cols: 128,
                adcs_per_xbar: 1,
                weight_bits: 8,
                cell_bits: 2,
                input_bits: 8,
                dac_bits: 1,
                rob_size: 8,
                vector_lanes: 32,
                local_mem_kb: 16 * 1024,
                global_mem_mb: 1024,
            },
            timing: TimingParams {
                core_freq_ghz: 1.0,
                xbar_read_ns: 100.0,
                adc_sample_ns: 1.0,
                vector_startup_cycles: 2,
                vector_cycles_per_batch: 1,
                scalar_op_cycles: 1,
                decode_cycles: 1,
                fetch_width: 2,
                dispatch_width: 2,
                local_mem_access_cycles: 1,
                global_mem_latency_ns: 100.0,
                global_mem_bw_elems_per_ns: 8.0,
            },
            energy: EnergyParams {
                xbar_pj_per_cell: 0.002,
                adc_pj_per_sample: 2.0,
                dac_pj_per_input: 0.1,
                vector_pj_per_elem: 0.2,
                scalar_pj_per_op: 1.0,
                local_mem_pj_per_elem: 0.5,
                global_mem_pj_per_elem: 20.0,
                noc_pj_per_flit_hop: 1.5,
                frontend_pj_per_instr: 2.0,
                core_static_mw: 5.0,
                chip_static_mw: 50.0,
            },
            noc: NocParams {
                freq_ghz: 1.0,
                flit_bytes: 32,
                hop_cycles: 2,
                link_flits_per_cycle: 1.0,
                channel_credits: 2,
                routing: RoutingPolicy::Xy,
                virtual_channels: 1,
                router_pipeline_depth: 1,
            },
            sim: SimSettings {
                functional: false,
                max_cycles: 50_000_000_000,
                trace: false,
                structure_hazard: true,
            },
        }
    }

    /// A tiny chip for unit/integration tests: 3×3 cores, 8 crossbars of
    /// 16×16 per core, 8 vector lanes, functional simulation enabled.
    pub fn small_test() -> ArchConfig {
        let mut cfg = ArchConfig::paper_default();
        cfg.resources.core_rows = 3;
        cfg.resources.core_cols = 3;
        cfg.resources.xbars_per_core = 8;
        cfg.resources.xbar_rows = 16;
        cfg.resources.xbar_cols = 16;
        cfg.resources.cell_bits = 8; // one cell per weight: keeps tiles tiny
        cfg.resources.vector_lanes = 8;
        cfg.resources.local_mem_kb = 256;
        cfg.resources.global_mem_mb = 16;
        cfg.resources.rob_size = 4;
        cfg.sim.functional = true;
        cfg.sim.max_cycles = 100_000_000;
        cfg
    }

    /// Returns a copy with a different ROB capacity (Fig. 4 sweeps this).
    pub fn with_rob(mut self, rob_size: u32) -> ArchConfig {
        self.resources.rob_size = rob_size;
        self
    }

    /// Returns a copy with functional simulation switched on or off.
    pub fn with_functional(mut self, functional: bool) -> ArchConfig {
        self.sim.functional = functional;
        self
    }

    /// Returns a copy with a different mesh routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ArchConfig {
        self.noc.routing = routing;
        self
    }

    /// Returns a copy with a different virtual-channel count.
    pub fn with_virtual_channels(mut self, vcs: u32) -> ArchConfig {
        self.noc.virtual_channels = vcs;
        self
    }

    /// Returns a copy with a different router pipeline depth.
    pub fn with_router_pipeline_depth(mut self, depth: u32) -> ArchConfig {
        self.noc.router_pipeline_depth = depth;
        self
    }

    /// Serializes to pretty JSON (the on-disk configuration format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialization cannot fail")
    }

    /// Parses a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Parse`] on malformed JSON or unknown fields.
    pub fn from_json(text: &str) -> Result<ArchConfig, ArchError> {
        serde_json::from_str(text).map_err(|e| ArchError::Parse(e.to_string()))
    }

    /// Loads a configuration file.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Io`] if the file cannot be read or
    /// [`ArchError::Parse`] if it is malformed.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ArchConfig, ArchError> {
        let text = std::fs::read_to_string(path)?;
        ArchConfig::from_json(&text)
    }

    /// Writes the configuration to a file as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Io`] if the file cannot be written.
    pub fn to_file(&self, path: impl AsRef<Path>) -> Result<(), ArchError> {
        Ok(std::fs::write(path, self.to_json())?)
    }

    /// Checks internal consistency (positive sizes, divisibility rules,
    /// sane frequencies).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Invalid`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        fn bad(field: &'static str, msg: impl Into<String>) -> Result<(), ArchError> {
            Err(ArchError::Invalid {
                field,
                msg: msg.into(),
            })
        }
        let r = &self.resources;
        if r.core_rows == 0 || r.core_cols == 0 {
            return bad("resources.core_rows", "mesh must have at least one core");
        }
        if r.xbars_per_core == 0 {
            return bad("resources.xbars_per_core", "need at least one crossbar");
        }
        if r.xbar_rows == 0 || r.xbar_cols == 0 {
            return bad(
                "resources.xbar_rows",
                "crossbar dimensions must be positive",
            );
        }
        if r.adcs_per_xbar == 0 {
            return bad("resources.adcs_per_xbar", "need at least one ADC");
        }
        if r.cell_bits == 0 || r.weight_bits == 0 || r.input_bits == 0 || r.dac_bits == 0 {
            return bad("resources.weight_bits", "bit widths must be positive");
        }
        if r.cell_bits > r.weight_bits {
            return bad(
                "resources.cell_bits",
                format!(
                    "cell_bits {} exceeds weight_bits {}",
                    r.cell_bits, r.weight_bits
                ),
            );
        }
        if r.xbar_cols < r.cells_per_weight() {
            return bad(
                "resources.xbar_cols",
                "crossbar narrower than one logical weight",
            );
        }
        if r.rob_size == 0 {
            return bad("resources.rob_size", "ROB needs at least one slot");
        }
        if r.vector_lanes == 0 {
            return bad("resources.vector_lanes", "need at least one vector lane");
        }
        if r.local_mem_kb == 0 {
            return bad("resources.local_mem_kb", "local memory must be positive");
        }
        let t = &self.timing;
        if !(t.core_freq_ghz.is_finite() && t.core_freq_ghz > 0.0) {
            return bad("timing.core_freq_ghz", "frequency must be positive");
        }
        if !(t.xbar_read_ns.is_finite() && t.xbar_read_ns > 0.0) {
            return bad("timing.xbar_read_ns", "latency must be positive");
        }
        if !(t.adc_sample_ns.is_finite() && t.adc_sample_ns > 0.0) {
            return bad("timing.adc_sample_ns", "latency must be positive");
        }
        if t.fetch_width == 0 || t.dispatch_width == 0 {
            return bad("timing.fetch_width", "pipeline widths must be positive");
        }
        if !(t.global_mem_bw_elems_per_ns.is_finite() && t.global_mem_bw_elems_per_ns > 0.0) {
            return bad(
                "timing.global_mem_bw_elems_per_ns",
                "bandwidth must be positive",
            );
        }
        let n = &self.noc;
        if !(n.freq_ghz.is_finite() && n.freq_ghz > 0.0) {
            return bad("noc.freq_ghz", "frequency must be positive");
        }
        if n.flit_bytes == 0 {
            return bad("noc.flit_bytes", "flit size must be positive");
        }
        if !(n.link_flits_per_cycle.is_finite() && n.link_flits_per_cycle > 0.0) {
            return bad("noc.link_flits_per_cycle", "bandwidth must be positive");
        }
        if n.channel_credits == 0 {
            return bad("noc.channel_credits", "need at least one credit");
        }
        if n.virtual_channels == 0 {
            return bad("noc.virtual_channels", "need at least one virtual channel");
        }
        if n.router_pipeline_depth == 0 {
            return bad(
                "noc.router_pipeline_depth",
                "router pipeline needs at least one stage",
            );
        }
        let e = &self.energy;
        for (field, v) in [
            ("energy.xbar_pj_per_cell", e.xbar_pj_per_cell),
            ("energy.adc_pj_per_sample", e.adc_pj_per_sample),
            ("energy.dac_pj_per_input", e.dac_pj_per_input),
            ("energy.vector_pj_per_elem", e.vector_pj_per_elem),
            ("energy.scalar_pj_per_op", e.scalar_pj_per_op),
            ("energy.local_mem_pj_per_elem", e.local_mem_pj_per_elem),
            ("energy.global_mem_pj_per_elem", e.global_mem_pj_per_elem),
            ("energy.noc_pj_per_flit_hop", e.noc_pj_per_flit_hop),
            ("energy.frontend_pj_per_instr", e.frontend_pj_per_instr),
            ("energy.core_static_mw", e.core_static_mw),
            ("energy.chip_static_mw", e.chip_static_mw),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ArchError::Invalid {
                    field,
                    msg: "energies must be finite and non-negative".into(),
                });
            }
        }
        if self.sim.max_cycles == 0 {
            return bad("sim.max_cycles", "safety stop must be positive");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_paper() {
        let cfg = ArchConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.resources.cores(), 64);
        assert_eq!(cfg.resources.xbars_per_core, 512);
        assert_eq!(cfg.resources.xbar_rows, 128);
        assert_eq!(cfg.resources.xbar_cols, 128);
        assert_eq!(cfg.resources.adcs_per_xbar, 1);
    }

    #[test]
    fn small_test_is_valid() {
        ArchConfig::small_test().validate().unwrap();
    }

    #[test]
    fn derived_quantities() {
        let r = ArchConfig::paper_default().resources;
        assert_eq!(r.cells_per_weight(), 4); // 8-bit weights, 2-bit cells
        assert_eq!(r.mvm_phases(), 8); // 8-bit inputs, 1-bit DAC
        assert_eq!(r.logical_cols_per_xbar(), 32); // 128 / 4
        assert_eq!(r.local_mem_elems(), 16 * 1024 * 1024 / 4);
    }

    #[test]
    fn mesh_geometry() {
        let r = ArchConfig::paper_default().resources;
        assert_eq!(r.core_position(0), (0, 0));
        assert_eq!(r.core_position(9), (1, 1));
        assert_eq!(r.mesh_hops(0, 9), 2);
        assert_eq!(r.mesh_hops(0, 63), 14);
        assert_eq!(r.mesh_hops(5, 5), 0);
    }

    #[test]
    fn json_roundtrip() {
        let cfg = ArchConfig::paper_default();
        let text = cfg.to_json();
        assert_eq!(ArchConfig::from_json(&text).unwrap(), cfg);
    }

    #[test]
    fn unknown_fields_rejected() {
        let mut v: serde_json::Value =
            serde_json::from_str(&ArchConfig::paper_default().to_json()).unwrap();
        v["resources"]["warp_drive"] = serde_json::json!(9000);
        let text = serde_json::to_string(&v).unwrap();
        assert!(matches!(
            ArchConfig::from_json(&text),
            Err(ArchError::Parse(_))
        ));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut cfg = ArchConfig::paper_default();
        cfg.resources.xbars_per_core = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ArchConfig::paper_default();
        cfg.resources.cell_bits = 16;
        assert!(cfg.validate().is_err());

        let mut cfg = ArchConfig::paper_default();
        cfg.timing.core_freq_ghz = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ArchConfig::paper_default();
        cfg.energy.adc_pj_per_sample = f64::NAN;
        assert!(cfg.validate().is_err());

        let mut cfg = ArchConfig::paper_default();
        cfg.resources.rob_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_virtual_channels_rejected_with_field_path() {
        let mut cfg = ArchConfig::paper_default();
        cfg.noc.virtual_channels = 0;
        match cfg.validate().unwrap_err() {
            ArchError::Invalid { field, .. } => assert_eq!(field, "noc.virtual_channels"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn zero_router_pipeline_depth_rejected_with_field_path() {
        let mut cfg = ArchConfig::paper_default();
        cfg.noc.router_pipeline_depth = 0;
        match cfg.validate().unwrap_err() {
            ArchError::Invalid { field, .. } => assert_eq!(field, "noc.router_pipeline_depth"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Same field-path error style as the existing credit check.
        let mut cfg = ArchConfig::paper_default();
        cfg.noc.channel_credits = 0;
        match cfg.validate().unwrap_err() {
            ArchError::Invalid { field, .. } => assert_eq!(field, "noc.channel_credits"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn builders() {
        let cfg = ArchConfig::paper_default()
            .with_rob(16)
            .with_functional(true)
            .with_routing(RoutingPolicy::Yx);
        assert_eq!(cfg.resources.rob_size, 16);
        assert!(cfg.sim.functional);
        assert_eq!(cfg.noc.routing, RoutingPolicy::Yx);
    }

    #[test]
    fn routing_policy_names_roundtrip() {
        for policy in RoutingPolicy::ALL {
            assert_eq!(policy.name().parse::<RoutingPolicy>().unwrap(), policy);
            assert_eq!(policy.to_string(), policy.name());
        }
        assert_eq!(
            "o1turn".parse::<RoutingPolicy>().unwrap(),
            RoutingPolicy::XyYxAlternate
        );
        assert_eq!(
            "adaptive".parse::<RoutingPolicy>().unwrap(),
            RoutingPolicy::Adaptive
        );
        assert!("zigzag".parse::<RoutingPolicy>().is_err());
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::Xy);
    }

    #[test]
    fn router_model_knobs_default_and_roundtrip() {
        // Configurations written before the knobs existed stay loadable
        // and mean 1 VC / depth 1 — exactly what they simulated as before.
        let text = ArchConfig::paper_default().to_json();
        let legacy = text
            .replace(",\n    \"virtual_channels\": 1", "")
            .replace(",\n    \"router_pipeline_depth\": 1", "");
        assert_ne!(legacy, text, "the default config serializes both knobs");
        let cfg = ArchConfig::from_json(&legacy).unwrap();
        assert_eq!(cfg.noc.virtual_channels, 1);
        assert_eq!(cfg.noc.router_pipeline_depth, 1);
        // Non-default values survive a JSON roundtrip.
        let cfg = ArchConfig::paper_default()
            .with_virtual_channels(4)
            .with_router_pipeline_depth(3);
        let back = ArchConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.noc.virtual_channels, 4);
        assert_eq!(back.noc.router_pipeline_depth, 3);
        cfg.validate().unwrap();
    }

    #[test]
    fn routing_field_defaults_and_roundtrips() {
        // Configurations written before the knob existed stay loadable
        // (and mean XY, exactly what they simulated as before).
        let text = ArchConfig::paper_default().to_json();
        let legacy = text.replace(",\n    \"routing\": \"xy\"", "");
        assert_ne!(legacy, text, "the default config serializes the knob");
        let cfg = ArchConfig::from_json(&legacy).unwrap();
        assert_eq!(cfg.noc.routing, RoutingPolicy::Xy);
        // Non-default values survive a JSON roundtrip.
        let cfg = ArchConfig::paper_default().with_routing(RoutingPolicy::XyYxAlternate);
        let back = ArchConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.noc.routing, RoutingPolicy::XyYxAlternate);
        // A bad name is a parse error, not a silent default.
        let bad = cfg.to_json().replace("xy-yx", "zigzag");
        assert!(matches!(
            ArchConfig::from_json(&bad),
            Err(ArchError::Parse(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pimsim-arch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("arch.json");
        let cfg = ArchConfig::small_test();
        cfg.to_file(&path).unwrap();
        assert_eq!(ArchConfig::from_file(&path).unwrap(), cfg);
        assert!(ArchConfig::from_file(dir.join("missing.json")).is_err());
    }
}

//! Compilation smoke tests over the model zoo and both mapping policies.

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_isa::InstrClass;
use pimsim_nn::zoo;

#[test]
fn zoo_compiles_under_both_policies_on_paper_chip() {
    let arch = ArchConfig::paper_default();
    for name in [
        "alexnet",
        "googlenet",
        "resnet18",
        "squeezenet",
        "vgg8",
        "vgg16",
    ] {
        let hw = if name.starts_with("vgg") { 32 } else { 64 };
        let net = zoo::by_name(name, hw).unwrap();
        for policy in [
            MappingPolicy::UtilizationFirst,
            MappingPolicy::PerformanceFirst,
        ] {
            let compiled = Compiler::new(&arch)
                .mapping(policy)
                .compile(&net)
                .unwrap_or_else(|e| panic!("{name} under {policy}: {e}"));
            assert!(
                compiled.program.total_instructions() > 100,
                "{name} under {policy} produced a trivial program"
            );
            // All four instruction classes appear in a compiled CNN.
            let mut classes = [0usize; 4];
            for core in &compiled.program.cores {
                let h = core.class_histogram();
                for i in 0..4 {
                    classes[i] += h[i];
                }
            }
            assert!(classes[0] > 0, "{name}: no matrix instructions");
            assert!(classes[1] > 0, "{name}: no vector instructions");
            assert!(classes[2] > 0, "{name}: no transfer instructions");
            assert!(classes[3] > 0, "{name}: no scalar instructions");
            let _ = InstrClass::Matrix;
        }
    }
}

#[test]
fn functional_compile_attaches_weights_and_input() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let compiled = Compiler::new(&arch).compile(&net).unwrap();
    assert!(!compiled.program.global_init.is_empty(), "input staged");
    let has_weights = compiled
        .program
        .cores
        .iter()
        .flat_map(|c| &c.groups)
        .any(|g| g.weights.is_some());
    assert!(has_weights, "functional compile should attach weights");
}

#[test]
fn timing_only_compile_stays_lean() {
    let arch = ArchConfig::paper_default();
    let net = zoo::vgg8(32);
    let compiled = Compiler::new(&arch)
        .functional(false)
        .compile(&net)
        .unwrap();
    assert!(compiled.program.global_init.is_empty());
    assert!(compiled
        .program
        .cores
        .iter()
        .flat_map(|c| &c.groups)
        .all(|g| g.weights.is_none()));
}

#[test]
fn tags_align_with_instructions() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    let compiled = Compiler::new(&arch).compile(&net).unwrap();
    for core in &compiled.program.cores {
        if !core.instrs.is_empty() {
            assert_eq!(core.instr_tags.len(), core.instrs.len());
        }
    }
    // Tag values reference real nodes.
    let n = compiled.node_names.len() as u16;
    for core in &compiled.program.cores {
        for &t in &core.instr_tags {
            assert!(t < n, "tag {t} out of range");
        }
    }
}

#[test]
fn unmappable_reports_typed_error() {
    let mut arch = ArchConfig::small_test();
    arch.resources.core_rows = 1;
    arch.resources.core_cols = 1;
    arch.resources.xbars_per_core = 2;
    let net = zoo::vgg8(32);
    let e = Compiler::new(&arch).compile(&net).unwrap_err();
    assert!(
        matches!(e, pimsim_compiler::CompileError::Unmappable { .. }),
        "got {e}"
    );
}

/// Every zoo network, under both policies, must come out of codegen
/// *analysis-clean*: no dataflow warnings, no rendezvous errors, and a
/// complete send/recv pairing. This is the compiler's contract with
/// `pimsim-analyze` — a regression here means codegen emitted a program
/// with a statically-detectable defect.
#[test]
fn zoo_compiles_analysis_clean() {
    let arch = ArchConfig::paper_default();
    for name in zoo::NAMES {
        let hw = if name.starts_with("vgg") { 32 } else { 64 };
        let net = zoo::by_name(name, hw).unwrap();
        for policy in [
            MappingPolicy::UtilizationFirst,
            MappingPolicy::PerformanceFirst,
        ] {
            let compiled = Compiler::new(&arch)
                .mapping(policy)
                .compile(&net)
                .unwrap_or_else(|e| panic!("{name} under {policy}: {e}"));
            let analysis = pimsim_analyze::analyze(&compiled.program, &arch);
            assert!(
                analysis.diagnostics.is_empty(),
                "{name} under {policy} is not analysis-clean:\n{}",
                analysis
                    .diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert!(
                analysis.rendezvous.complete,
                "{name} under {policy}: rendezvous map incomplete"
            );
        }
    }
}

/// Regression test for the crossed-edge deadlock (found by `pimsim check`):
/// resnet34 under UtilizationFirst places `layer2.3/add` (producer P0) and
/// `layer3.0/conv1` (P1) on one core and `layer3.0/conv2` (C1, consuming
/// P1) and `layer3.0/downsample` (C0, consuming P0) on another, with
/// section order P0 < P1 < C1 < C0. The sender streams P0→C0 rows first
/// while the receiver blocks in C1 on P1 rows the sender has not reached —
/// with 2 channel credits the fabric wedged at runtime. Codegen now drains
/// crossed edges eagerly so each core pair's receive order matches its
/// send order; the analyzer's abstract execution certifies it.
#[test]
fn resnet34_utilization_first_has_no_crossed_edge_deadlock() {
    let arch = ArchConfig::paper_default();
    let net = zoo::by_name("resnet34", 64).unwrap();
    let compiled = Compiler::new(&arch)
        .mapping(MappingPolicy::UtilizationFirst)
        .compile(&net)
        .unwrap();
    let analysis = pimsim_analyze::analyze(&compiled.program, &arch);
    let deadlocks: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.kind == pimsim_analyze::DiagKind::DeadlockCycle)
        .collect();
    assert!(deadlocks.is_empty(), "static deadlock: {deadlocks:?}");
    assert!(analysis.rendezvous.complete);

    // The receive order on every core now matches each sender's send
    // order — the property whose violation caused the wedge.
    use pimsim_isa::Instruction as I;
    use std::collections::HashMap;
    let mut sent: HashMap<(u16, u16), Vec<u16>> = HashMap::new();
    let mut recvd: HashMap<(u16, u16), Vec<u16>> = HashMap::new();
    for (c, core) in compiled.program.cores.iter().enumerate() {
        for i in &core.instrs {
            match i {
                I::Send { peer, tag, .. } => sent.entry((c as u16, peer.0)).or_default().push(*tag),
                I::Recv { peer, tag, .. } | I::Recv2d { peer, tag, .. } => {
                    recvd.entry((peer.0, c as u16)).or_default().push(*tag)
                }
                _ => {}
            }
        }
    }
    for (pair, tags) in &sent {
        assert_eq!(
            Some(tags),
            recvd.get(pair),
            "send/recv tag order differs on channel {pair:?}"
        );
    }
}

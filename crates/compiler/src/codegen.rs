//! Code generation: placement → per-core instruction streams.
//!
//! ## Execution model
//!
//! Every core's stream is a sequence of *node sections* in topological
//! order. A weight layer's section, per output row: incrementally acquire
//! the input rows its windows need (`RECV`/`GLOAD`; nothing if the producer
//! lives on the same core), then for every output pixel assemble the im2col
//! window with one `VCOPY2D`, fire one `MVM` per crossbar group (row-block),
//! reduce partial sums with `VADD`, and run the fused epilogue (bias add,
//! `VSRAI` requantization, activation) in place — finally the layer's *home*
//! core forwards the completed row to every consumer (local `VCOPY`/
//! `VCOPY2D`, remote synchronized `SEND`).
//!
//! ## Deadlock freedom
//!
//! Transfers deadlock only on inconsistent orderings. The generator
//! enforces one global order everywhere: cores execute node sections in
//! node-id order; producers forward each row to consumer edges sorted by
//! `(consumer id, edge index, core)`; multi-input consumers drain their
//! input edges in producer order (fully, except the last, which is
//! pipelined row by row).
//!
//! Section order alone is not enough, though: two edges between the same
//! core pair can *cross* — an early producer feeding a late consumer
//! section while a later producer feeds an earlier one (`P0 < P1 < C1 <
//! C0` with `P0→C0`, `P1→C1`, both `P`s on one core and both `C`s on
//! another is perfectly topological). The sender then streams `P0→C0`
//! rows first while the receiver blocks in `C1` waiting for `P1` rows the
//! sender hasn't reached, and the credit-limited channel wedges. So the
//! receive side additionally drains pending crossed edges eagerly
//! ([`Emitter::drain_pending_before`]): before the first `RECV` of any
//! remote edge, every already-sent edge from the same sender with an
//! earlier producer is received in full into its consumer's buffer. Each
//! core pair's receive order therefore matches its send order, and
//! `pimsim check`'s rendezvous pass certifies the result per program.
//!
//! ## Scratch rotation
//!
//! Per-pixel scratch (window + accumulators) rotates over
//! [`SCRATCH_SLOTS`] slots so consecutive pixels have no false WAW hazards
//! and the ROB (paper Fig. 4) can overlap them.

use std::collections::HashMap;

use pimsim_arch::ArchConfig;
use pimsim_isa::{
    Addr, CoreId, GroupConfig, GroupId, Instruction, PoolOp, Program, ProgramLimits, Reg, SImmOp,
    VBinOp, VImmOp, VUnOp, WeightMatrix,
};
use pimsim_nn::{Activation, Network, NodeId, PortRef, WeightGen};
use serde::{Deserialize, Serialize};

use crate::error::CompileError;
use crate::lower::{resolve_alias, LoweredKind, LoweredNode};
use crate::mapping::{MappingPolicy, Placement, Slice};
use crate::Result;

/// Scratch-slot rotation depth (bounds cross-pixel WAW serialization).
pub const SCRATCH_SLOTS: u32 = 4;

const LEN_MAX: u32 = (1 << 18) - 1; // transfer/vector length field
const ABS_MAX: i32 = (1 << 21) - 1; // absolute r0-relative offset
const WIN_MAX: u32 = 63; // VPOOL window field

/// Where the network output lands in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputSpec {
    /// First element address in global memory.
    pub gaddr: u64,
    /// Total output elements.
    pub elems: u32,
}

/// The complete compilation artifact.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The executable program (validated).
    pub program: Program,
    /// Inferences compiled back to back (outputs land at
    /// `output.gaddr + i * output.elems` for image `i`).
    pub batch: u32,
    /// Where weights landed (for reports and tests).
    pub placement: Placement,
    /// Where the output tensor lands in global memory.
    pub output: OutputSpec,
    /// Network input element count (staged at global address 0).
    pub input_elems: u32,
    /// Node-id → name table (instruction tags index into this).
    pub node_names: Vec<String>,
    /// The mapping policy used.
    pub policy: MappingPolicy,
}

/// Key for every local-memory buffer the generator plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BufKey {
    /// Consumer-side storage for one input edge on one compute core.
    EdgeIn { node: u32, edge: u32, core: u16 },
    /// Row-assembly buffer (home: full channels; slice cores: their cols).
    Staging { node: u32, core: u16 },
    /// Rotating window/accumulator scratch.
    Scratch { node: u32, core: u16 },
    /// Bias values.
    Bias { node: u32, core: u16 },
    /// Fully materialized output (branch points forward edge-major).
    OutBuf { node: u32 },
    /// Home-side contiguous accumulator for a row-split column range.
    AccRow { node: u32, col_start: u32 },
    /// Home-side landing area for one remote partial-sum piece.
    PartialIn { node: u32, slice: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Buf {
    base: u32,
    #[allow(dead_code)]
    elems: u32,
}

/// Geometry of one consumer edge on one compute core.
#[derive(Debug, Clone, Copy)]
struct EdgeDst {
    buf: u32,
    /// Consumer-side padding (its buffer is `(H+2p)(W+2p)C_total`).
    pad: u32,
    /// Consumer-buffer width including padding.
    w_pad: u32,
    /// Consumer-buffer channels (total across concat branches).
    c_total: u32,
    /// Channel offset of this producer within a pixel (concat).
    chan_off: u32,
    /// Producer row geometry.
    src_w: u32,
    src_c: u32,
}

impl EdgeDst {
    fn row_base(&self, y: u32) -> u32 {
        self.buf + ((y + self.pad) * self.w_pad + self.pad) * self.c_total + self.chan_off
    }
    fn interleaved(&self) -> bool {
        self.c_total != self.src_c || self.chan_off != 0
    }
}

struct Emitter<'a> {
    arch: &'a ArchConfig,
    input_shape: pimsim_nn::Shape,
    lowered: &'a [LoweredNode],
    placement: &'a Placement,
    progs: Vec<pimsim_isa::CoreProgram>,
    tags: Vec<Vec<u16>>,
    mem_next: Vec<u32>,
    bufs: HashMap<BufKey, Buf>,
    edge_tags: HashMap<(u32, u32, u16), u16>,
    gather_tags: HashMap<u32, u16>,
    /// Remote edges whose sends are emitted but whose consumer section has
    /// not yet received: `(producer, consumer, edge, consumer core, sender)`.
    /// Producer-first ordering is the cross-core drain order.
    pending_remote: std::collections::BTreeSet<(u32, u32, u32, u16, u16)>,
    /// `(consumer, edge, core)` edges whose consumer section has begun
    /// receiving through the normal incremental path.
    drain_started: std::collections::HashSet<(u32, u32, u16)>,
    /// `(consumer, edge, core)` edges fully received ahead of their
    /// section by [`Emitter::drain_pending_before`].
    hoist_drained: std::collections::HashSet<(u32, u32, u16)>,
    next_tag: u32,
    weights: Option<WeightGen>,
    shift: u32,
    cur_tag: u16,
    /// Per-core rotating base-register cache: (reg index 1..=8, value).
    reg_cache: Vec<Vec<(u8, u32)>>,
    reg_next: Vec<u8>,
    /// Per-core next free physical crossbar.
    xbar_next: Vec<u32>,
    /// Per (node, slice-index-in-node) → (core, group ids).
    slice_groups: HashMap<(u32, u32), Vec<GroupId>>,
}

/// Entry point: emits the full program.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit(
    net: &Network,
    lowered: &[LoweredNode],
    placement: &Placement,
    arch: &ArchConfig,
    policy: MappingPolicy,
    shift: u32,
    weights: Option<WeightGen>,
    batch: u32,
) -> Result<Compiled> {
    let n_cores = arch.resources.cores() as usize;
    let mut e = Emitter {
        arch,
        input_shape: net.input_shape,
        lowered,
        placement,
        progs: vec![pimsim_isa::CoreProgram::default(); n_cores],
        tags: vec![Vec::new(); n_cores],
        mem_next: vec![0; n_cores],
        bufs: HashMap::new(),
        edge_tags: HashMap::new(),
        gather_tags: HashMap::new(),
        pending_remote: std::collections::BTreeSet::new(),
        drain_started: std::collections::HashSet::new(),
        hoist_drained: std::collections::HashSet::new(),
        next_tag: 0,
        weights,
        shift,
        cur_tag: 0,
        reg_cache: vec![Vec::new(); n_cores],
        reg_next: vec![1; n_cores],
        xbar_next: vec![0; n_cores],
        slice_groups: HashMap::new(),
    };

    e.plan_buffers()?;
    e.build_groups()?;

    let out_node = net.output_node()?;
    let input_elems = net.input_shape.elems();
    let out_shape = lowered[out_node.as_usize()].out_shape;
    let out_gaddr = (input_elems as u64).next_multiple_of(64);

    for img in 0..batch {
        let img_out = out_gaddr + img as u64 * out_shape.elems() as u64;
        // Transfer bookkeeping is per inference: every edge sends and
        // receives again for the next image.
        e.pending_remote.clear();
        e.drain_started.clear();
        e.hoist_drained.clear();
        for node in lowered {
            e.cur_tag = node.id.0 as u16;
            match &node.kind {
                LoweredKind::Alias => {}
                LoweredKind::Matrix(_) => e.emit_matrix(node, out_node, img_out)?,
                LoweredKind::Pool { .. } => e.emit_pool(node, out_node, img_out)?,
                LoweredKind::GlobalPool => e.emit_global_pool(node, out_node, img_out)?,
                LoweredKind::Add { .. } => e.emit_add(node, out_node, img_out)?,
                LoweredKind::Concat => e.emit_concat(node, out_node, img_out)?,
                LoweredKind::Activation(_) => e.emit_activation(node, out_node, img_out)?,
            }
        }
    }

    // Halt every active core.
    for c in 0..n_cores {
        if !e.progs[c].instrs.is_empty() || !e.progs[c].groups.is_empty() {
            e.push(c as u16, Instruction::Halt);
        }
    }

    let mut program = Program::with_cores(n_cores);
    for (c, (prog, tags)) in e.progs.into_iter().zip(e.tags).enumerate() {
        program.cores[c] = prog;
        program.cores[c].instr_tags = tags;
    }
    program.meta.name = net.name.clone();
    program.meta.mapping = policy.to_string();
    program.meta.notes = format!("requant_shift={shift}");

    // Stage the input for functional runs.
    if let Some(gen) = e.weights {
        program.global_init = vec![(0, gen.input(input_elems))];
    }

    let limits = ProgramLimits {
        cores: arch.resources.cores(),
        xbars_per_core: arch.resources.xbars_per_core,
        local_mem_elems: arch.resources.local_mem_elems(),
        global_mem_elems: arch.resources.global_mem_elems(),
    };
    program.validate(&limits)?;

    Ok(Compiled {
        program,
        batch,
        placement: placement.clone(),
        output: OutputSpec {
            gaddr: out_gaddr,
            elems: out_shape.elems(),
        },
        input_elems,
        node_names: lowered.iter().map(|n| n.name.clone()).collect(),
        policy,
    })
}

impl<'a> Emitter<'a> {
    // ------------------------------------------------------------ helpers --

    fn push(&mut self, core: u16, instr: Instruction) {
        self.progs[core as usize].instrs.push(instr);
        self.tags[core as usize].push(self.cur_tag);
    }

    fn alloc(&mut self, core: u16, elems: u32, what: &str) -> Result<u32> {
        let cap = self.arch.resources.local_mem_elems();
        let base = self.mem_next[core as usize];
        let end = base as u64 + elems as u64;
        if end > cap as u64 {
            return Err(CompileError::LocalMemoryOverflow {
                core,
                needed: end,
                available: cap as u64,
                context: what.to_string(),
            });
        }
        self.mem_next[core as usize] = end as u32;
        Ok(base)
    }

    fn buf(&self, key: BufKey) -> Result<Buf> {
        self.bufs
            .get(&key)
            .copied()
            .ok_or_else(|| CompileError::Internal(format!("missing buffer {key:?}")))
    }

    fn new_tag(&mut self) -> Result<u16> {
        let t = self.next_tag;
        self.next_tag += 1;
        u16::try_from(t).map_err(|_| CompileError::TagOverflow)
    }

    /// Local-memory operand for absolute element address `abs`, emitting a
    /// base-register load if the offset does not fit the encoding.
    fn addr(&mut self, core: u16, abs: u32) -> Result<Addr> {
        if abs as i32 <= ABS_MAX && abs <= i32::MAX as u32 {
            return Ok(Addr::new(Reg::R0, abs as i32)?);
        }
        // Look for a cached base register within range.
        let cache = &self.reg_cache[core as usize];
        for &(reg, value) in cache {
            let off = abs as i64 - value as i64;
            if (0..=ABS_MAX as i64).contains(&off) {
                return Ok(Addr::new(Reg::new(reg)?, off as i32)?);
            }
        }
        // Load a new 1 MiB-aligned base into a rotating register (r1..r8).
        let base = abs & !((1u32 << 20) - 1);
        let reg = self.reg_next[core as usize];
        self.reg_next[core as usize] = if reg >= 8 { 1 } else { reg + 1 };
        let cache = &mut self.reg_cache[core as usize];
        cache.retain(|&(r, _)| r != reg);
        cache.push((reg, base));
        self.push(
            core,
            Instruction::SImm {
                op: SImmOp::Add,
                rd: Reg::new(reg)?,
                rs1: Reg::R0,
                imm: base as i32,
            },
        );
        Ok(Addr::new(Reg::new(reg)?, (abs - base) as i32)?)
    }

    /// Global-memory operand (element address).
    fn gaddr(&mut self, core: u16, abs: u64) -> Result<Addr> {
        let abs32 = u32::try_from(abs)
            .map_err(|_| CompileError::Internal(format!("global address {abs} exceeds 32 bits")))?;
        self.addr(core, abs32)
    }

    /// Chunked local-to-local contiguous copy.
    fn copy_local(&mut self, core: u16, dst: u32, src: u32, len: u32) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let d = self.addr(core, dst + done)?;
            let s = self.addr(core, src + done)?;
            self.push(
                core,
                Instruction::VUn {
                    op: VUnOp::Copy,
                    dst: d,
                    src: s,
                    len: n,
                },
            );
            done += n;
        }
        Ok(())
    }

    /// Chunked synchronized send.
    fn send(&mut self, core: u16, peer: u16, src: u32, len: u32, tag: u16) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let s = self.addr(core, src + done)?;
            self.push(
                core,
                Instruction::Send {
                    peer: CoreId(peer),
                    src: s,
                    len: n,
                    tag,
                },
            );
            done += n;
        }
        Ok(())
    }

    /// Chunked synchronized contiguous receive.
    fn recv(&mut self, core: u16, peer: u16, dst: u32, len: u32, tag: u16) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let d = self.addr(core, dst + done)?;
            self.push(
                core,
                Instruction::Recv {
                    peer: CoreId(peer),
                    dst: d,
                    len: n,
                    tag,
                },
            );
            done += n;
        }
        Ok(())
    }

    /// Chunked global load into local memory.
    fn gload(&mut self, core: u16, dst: u32, gsrc: u64, len: u32) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let d = self.addr(core, dst + done)?;
            let g = self.gaddr(core, gsrc + done as u64)?;
            self.push(
                core,
                Instruction::GLoad {
                    dst: d,
                    gaddr: g,
                    len: n,
                },
            );
            done += n;
        }
        Ok(())
    }

    /// Chunked global store from local memory.
    fn gstore(&mut self, core: u16, gdst: u64, src: u32, len: u32) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let g = self.gaddr(core, gdst + done as u64)?;
            let s = self.addr(core, src + done)?;
            self.push(
                core,
                Instruction::GStore {
                    gaddr: g,
                    src: s,
                    len: n,
                },
            );
            done += n;
        }
        Ok(())
    }

    /// Chunked element-wise binary op over contiguous vectors.
    fn vbin(&mut self, core: u16, op: VBinOp, dst: u32, a: u32, b: u32, len: u32) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let d = self.addr(core, dst + done)?;
            let aa = self.addr(core, a + done)?;
            let bb = self.addr(core, b + done)?;
            self.push(
                core,
                Instruction::VBin {
                    op,
                    dst: d,
                    a: aa,
                    b: bb,
                    len: n,
                },
            );
            done += n;
        }
        Ok(())
    }

    fn vun(&mut self, core: u16, op: VUnOp, dst: u32, src: u32, len: u32) -> Result<()> {
        let mut done = 0;
        while done < len {
            let n = (len - done).min(LEN_MAX);
            let d = self.addr(core, dst + done)?;
            let s = self.addr(core, src + done)?;
            self.push(
                core,
                Instruction::VUn {
                    op,
                    dst: d,
                    src: s,
                    len: n,
                },
            );
            done += n;
        }
        Ok(())
    }

    fn activation_op(&mut self, core: u16, act: Activation, at: u32, len: u32) -> Result<()> {
        let op = match act {
            Activation::Relu => VUnOp::Relu,
            Activation::Sigmoid => VUnOp::Sigmoid,
            Activation::Tanh => VUnOp::Tanh,
        };
        self.vun(core, op, at, at, len)
    }

    // ------------------------------------------------------ buffer planning --

    /// Geometry of a node's input edge `e` as seen on compute core `cc`.
    /// The *wire* geometry (rows, elements per row) comes from the
    /// effective producer (aliases like flatten change the logical shape
    /// but not the bytes); the *placement* geometry (padding, channel
    /// interleave) comes from the consumer.
    fn edge_dst(&self, node: &LoweredNode, e: usize, cc: u16) -> Result<EdgeDst> {
        // Effective wire shape.
        let src_shape = match resolve_alias(self.lowered, node.inputs[e]) {
            PortRef::Input => self.input_shape,
            PortRef::Node(id) => self.lowered[id.as_usize()].out_shape,
        };
        if matches!(node.kind, LoweredKind::Concat) && src_shape != node.in_shapes[e] {
            return Err(CompileError::Internal(format!(
                "concat input {e} of {} is reshaped ({} vs {}); aliasing into concat is unsupported",
                node.name, src_shape, node.in_shapes[e]
            )));
        }
        let (pad, c_total, chan_off, buf_key) = match &node.kind {
            LoweredKind::Matrix(m) if m.kernel > 0 => (
                m.padding,
                src_shape.channels,
                0,
                BufKey::EdgeIn {
                    node: node.id.0,
                    edge: 0,
                    core: cc,
                },
            ),
            LoweredKind::Matrix(_) => (
                0,
                src_shape.channels,
                0,
                BufKey::EdgeIn {
                    node: node.id.0,
                    edge: 0,
                    core: cc,
                },
            ),
            LoweredKind::Pool { padding, .. } => (
                *padding,
                src_shape.channels,
                0,
                BufKey::EdgeIn {
                    node: node.id.0,
                    edge: 0,
                    core: cc,
                },
            ),
            LoweredKind::Concat => {
                // One assembly buffer; branch e lands at its channel offset.
                let off: u32 = node.in_shapes[..e].iter().map(|s| s.channels).sum();
                (
                    0,
                    node.out_shape.channels,
                    off,
                    BufKey::EdgeIn {
                        node: node.id.0,
                        edge: 0,
                        core: cc,
                    },
                )
            }
            _ => (
                0,
                src_shape.channels,
                0,
                BufKey::EdgeIn {
                    node: node.id.0,
                    edge: e as u32,
                    core: cc,
                },
            ),
        };
        let buf = self.buf(buf_key)?;
        // For flat sources (linear inputs, gap outputs) the "image" is the
        // producer's row structure.
        let w_pad = match &node.kind {
            LoweredKind::Matrix(m) if m.kernel > 0 => src_shape.width + 2 * pad,
            LoweredKind::Pool { .. } => src_shape.width + 2 * pad,
            _ => src_shape.width,
        };
        Ok(EdgeDst {
            buf: buf.base,
            pad,
            w_pad,
            c_total,
            chan_off,
            src_w: src_shape.width,
            src_c: src_shape.channels,
        })
    }

    fn plan_buffers(&mut self) -> Result<()> {
        let xr = self.arch.resources.xbar_rows;
        let placement = self.placement;
        let slices_of = |id: NodeId| -> Vec<Slice> {
            placement.node_slices[id.as_usize()]
                .iter()
                .map(|&si| placement.slices[si].clone())
                .collect()
        };
        for node in self.lowered {
            let nid = node.id.0;
            let name = &node.name;
            // Every node materializes its whole output and forwards
            // edge-major (see the deadlock-freedom argument in the module
            // docs); concat already assembles a full buffer, aliases emit
            // nothing.
            if !matches!(node.kind, LoweredKind::Alias | LoweredKind::Concat) {
                let home = self.placement.home[node.id.as_usize()];
                let elems = node.out_shape.elems();
                let b = self.alloc(home, elems, &format!("{name} output buffer"))?;
                self.bufs
                    .insert(BufKey::OutBuf { node: nid }, Buf { base: b, elems });
            }
            match &node.kind {
                LoweredKind::Alias => {}
                LoweredKind::Matrix(m) => {
                    let cores = self.placement.compute_cores(node.id);
                    let home = self.placement.home[node.id.as_usize()];
                    let in_s = node.in_shapes[0];
                    let out_s = node.out_shape;
                    let in_elems = if m.kernel > 0 {
                        (in_s.height + 2 * m.padding) * (in_s.width + 2 * m.padding) * in_s.channels
                    } else {
                        in_s.elems()
                    };
                    for &cc in &cores {
                        let b = self.alloc(cc, in_elems, &format!("{name} input"))?;
                        self.bufs.insert(
                            BufKey::EdgeIn {
                                node: nid,
                                edge: 0,
                                core: cc,
                            },
                            Buf {
                                base: b,
                                elems: in_elems,
                            },
                        );
                        // Scratch: rotating window + accumulators.
                        let max_cols = slices_of(node.id)
                            .iter()
                            .filter(|s| s.core == cc)
                            .map(|s| s.cols)
                            .max()
                            .unwrap_or(out_s.channels);
                        let win = if m.kernel > 0 { m.rows } else { 0 };
                        // win + accumulator + one partial per crossbar group
                        // (distinct buffers so MVMs on different groups have
                        // no false WAW hazards and can run concurrently).
                        let max_groups = m.rows.div_ceil(self.arch.resources.xbar_rows);
                        let slot = win + (1 + max_groups) * max_cols.max(1);
                        let b = self.alloc(cc, SCRATCH_SLOTS * slot, &format!("{name} scratch"))?;
                        self.bufs.insert(
                            BufKey::Scratch {
                                node: nid,
                                core: cc,
                            },
                            Buf {
                                base: b,
                                elems: SCRATCH_SLOTS * slot,
                            },
                        );
                        // Staging: home assembles full channels.
                        let c_here = if cc == home {
                            out_s.channels
                        } else {
                            slices_of(node.id)
                                .iter()
                                .filter(|s| s.core == cc)
                                .map(|s| s.cols)
                                .sum()
                        };
                        // Non-home compute cores materialize their whole
                        // column-slice output, then ship it to home row by
                        // row after computing — interleaving gather sends
                        // with input receives would couple backpressure
                        // loops across the producer's forward phase.
                        if cc != home {
                            let st = out_s.height * out_s.width * c_here.max(1);
                            let b = self.alloc(cc, st, &format!("{name} slice output"))?;
                            self.bufs.insert(
                                BufKey::Staging {
                                    node: nid,
                                    core: cc,
                                },
                                Buf { base: b, elems: st },
                            );
                        }
                        // Bias: full vector at home, slice cols elsewhere.
                        let bias_elems = if cc == home { m.cols } else { c_here };
                        let b = self.alloc(cc, bias_elems.max(1), &format!("{name} bias"))?;
                        self.bufs.insert(
                            BufKey::Bias {
                                node: nid,
                                core: cc,
                            },
                            Buf {
                                base: b,
                                elems: bias_elems,
                            },
                        );
                    }
                    // Row-split support at home.
                    let mut partial_ranges: Vec<u32> = Vec::new();
                    for (si_local, s) in slices_of(node.id).iter().enumerate() {
                        if !s.covers_all_rows(m.rows) {
                            if !partial_ranges.contains(&s.col_start) {
                                partial_ranges.push(s.col_start);
                                let elems = out_s.height * out_s.width * s.cols;
                                let acc = self.alloc(home, elems, &format!("{name} accrow"))?;
                                self.bufs.insert(
                                    BufKey::AccRow {
                                        node: nid,
                                        col_start: s.col_start,
                                    },
                                    Buf { base: acc, elems },
                                );
                            }
                            if s.core != home {
                                let p = self.alloc(
                                    home,
                                    out_s.width * s.cols,
                                    &format!("{name} partial-in"),
                                )?;
                                self.bufs.insert(
                                    BufKey::PartialIn {
                                        node: nid,
                                        slice: si_local as u32,
                                    },
                                    Buf {
                                        base: p,
                                        elems: out_s.width * s.cols,
                                    },
                                );
                            }
                        }
                    }
                    let _ = xr;
                }
                LoweredKind::Pool { padding, .. } => {
                    let home = self.placement.home[node.id.as_usize()];
                    let s = node.in_shapes[0];
                    let elems = (s.height + 2 * padding) * (s.width + 2 * padding) * s.channels;
                    let b = self.alloc(home, elems, &format!("{name} input"))?;
                    self.bufs.insert(
                        BufKey::EdgeIn {
                            node: nid,
                            edge: 0,
                            core: home,
                        },
                        Buf { base: b, elems },
                    );
                }
                LoweredKind::GlobalPool | LoweredKind::Activation(_) => {
                    let home = self.placement.home[node.id.as_usize()];
                    let s = node.in_shapes[0];
                    let b = self.alloc(home, s.elems(), &format!("{name} input"))?;
                    self.bufs.insert(
                        BufKey::EdgeIn {
                            node: nid,
                            edge: 0,
                            core: home,
                        },
                        Buf {
                            base: b,
                            elems: s.elems(),
                        },
                    );
                }
                LoweredKind::Add { .. } => {
                    let home = self.placement.home[node.id.as_usize()];
                    for e in 0..2u32 {
                        let s = node.in_shapes[e as usize];
                        let b = self.alloc(home, s.elems(), &format!("{name} input {e}"))?;
                        self.bufs.insert(
                            BufKey::EdgeIn {
                                node: nid,
                                edge: e,
                                core: home,
                            },
                            Buf {
                                base: b,
                                elems: s.elems(),
                            },
                        );
                    }
                }
                LoweredKind::Concat => {
                    let home = self.placement.home[node.id.as_usize()];
                    let elems = node.out_shape.elems();
                    let b = self.alloc(home, elems, &format!("{name} assembly"))?;
                    self.bufs.insert(
                        BufKey::EdgeIn {
                            node: nid,
                            edge: 0,
                            core: home,
                        },
                        Buf { base: b, elems },
                    );
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------ group building --

    fn build_groups(&mut self) -> Result<()> {
        let xr = self.arch.resources.xbar_rows;
        let lcpx = self.arch.resources.logical_cols_per_xbar().max(1);
        for node in self.lowered {
            let Some(m) = node.matrix() else { continue };
            let full = self
                .weights
                .as_ref()
                .map(|g| g.matrix(node.id, m.rows, m.cols));
            for (si_local, s) in self.placement.node_slices[node.id.as_usize()]
                .iter()
                .map(|&si| &self.placement.slices[si])
                .enumerate()
            {
                let core = s.core as usize;
                let mut gids = Vec::new();
                let rbs = s.rows.div_ceil(xr);
                let xbars_per_group = s.cols.div_ceil(lcpx);
                for rb in 0..rbs {
                    let row0 = s.row_start + rb * xr;
                    let rows = xr.min(s.row_start + s.rows - row0);
                    let gid = GroupId(self.progs[core].groups.len() as u16);
                    if gid.0 as u32 >= (1 << 12) {
                        return Err(CompileError::Internal(format!(
                            "group id overflow on core {core}"
                        )));
                    }
                    let xbar0 = self.xbar_next[core];
                    self.xbar_next[core] += xbars_per_group;
                    let xbar_ids: Vec<u32> = (xbar0..xbar0 + xbars_per_group).collect();
                    let mut g = GroupConfig::new(gid, rows, s.cols, xbar_ids);
                    if let Some(full) = &full {
                        let mut w = WeightMatrix::zeros(rows, s.cols);
                        for r in 0..rows {
                            for c in 0..s.cols {
                                let v = full[((row0 + r) as usize) * m.cols as usize
                                    + (s.col_start + c) as usize];
                                w.set(r, c, v);
                            }
                        }
                        g = g.with_weights(w)?;
                    }
                    self.progs[core].groups.push(g);
                    gids.push(gid);
                }
                self.slice_groups.insert((node.id.0, si_local as u32), gids);
            }
        }
        Ok(())
    }

    // -------------------------------------------------- input acquisition --

    /// Emits acquisition of source rows `from..=to` of edge `e` on core
    /// `cc` (RECV / GLOAD; local producers need nothing).
    ///
    /// Before the first `RECV` of a remote edge, any *pending* remote edge
    /// into `cc` from the same sender whose producer section is earlier is
    /// drained in full (see [`Emitter::drain_pending_before`]): the
    /// consumer core's receive order then matches the sender's send order,
    /// which is what keeps the credit-limited channels of the fabric from
    /// wedging when two edges between the same core pair cross (an early
    /// producer feeding a late consumer section and vice versa — e.g. a
    /// residual `add` output skipping ahead past the conv chain).
    fn acquire_rows(
        &mut self,
        node: &LoweredNode,
        e: usize,
        cc: u16,
        from: u32,
        to_incl: u32,
    ) -> Result<()> {
        if from > to_incl {
            return Ok(());
        }
        if let PortRef::Node(src_id) = resolve_alias(self.lowered, node.inputs[e]) {
            let src_home = self.placement.home[src_id.as_usize()];
            if src_home != cc {
                let key = (node.id.0, e as u32, cc);
                if self.hoist_drained.contains(&key) {
                    return Ok(()); // already received by an earlier hoist
                }
                if self.drain_started.insert(key) {
                    self.drain_pending_before(src_id.0, cc, src_home)?;
                }
            }
        }
        self.acquire_rows_inner(node, e, cc, from, to_incl)
    }

    /// Fully drains every pending remote edge into `cc` from `sender`
    /// whose producer precedes `producer` in the global section order.
    /// Receives land in the consumer's regular edge buffer; the consumer's
    /// own section later finds the rows already local and skips the `RECV`s.
    fn drain_pending_before(&mut self, producer: u32, cc: u16, sender: u16) -> Result<()> {
        // `pending_remote` is a `BTreeSet` keyed producer-first, so the
        // drain happens in producer order — the same order `sender` sent.
        let todo: Vec<(u32, u32, u32)> = self
            .pending_remote
            .iter()
            .filter(|&&(p, cons, edge, pcc, psender)| {
                p < producer
                    && pcc == cc
                    && psender == sender
                    && !self.drain_started.contains(&(cons, edge, cc))
                    && !self.hoist_drained.contains(&(cons, edge, cc))
            })
            .map(|&(_, cons, edge, _, _)| (cons, edge, cc as u32))
            .collect();
        for (cons, edge, _) in todo {
            self.hoist_drained.insert((cons, edge, cc));
            let lowered = self.lowered;
            let cons_node = &lowered[cons as usize];
            let rows = self.eff_rows(cons_node, edge as usize);
            if rows == 0 {
                continue;
            }
            let saved = self.cur_tag;
            self.cur_tag = cons as u16;
            self.acquire_rows_inner(cons_node, edge as usize, cc, 0, rows - 1)?;
            self.cur_tag = saved;
        }
        Ok(())
    }

    fn acquire_rows_inner(
        &mut self,
        node: &LoweredNode,
        e: usize,
        cc: u16,
        from: u32,
        to_incl: u32,
    ) -> Result<()> {
        if from > to_incl {
            return Ok(());
        }
        let dst = self.edge_dst(node, e, cc)?;
        let src = resolve_alias(self.lowered, node.inputs[e]);
        let row_len = dst.src_w * dst.src_c;
        match src {
            PortRef::Input => {
                let in_shape = self.lowered[0].in_shapes.first().copied();
                let _ = in_shape;
                for y in from..=to_incl {
                    let g = (y as u64) * row_len as u64;
                    if dst.interleaved() {
                        return Err(CompileError::Internal(
                            "interleaved global load is not supported".into(),
                        ));
                    }
                    self.gload(cc, dst.row_base(y), g, row_len)?;
                }
            }
            PortRef::Node(src_id) => {
                let src_home = self.placement.home[src_id.as_usize()];
                if src_home == cc {
                    return Ok(()); // producer wrote locally
                }
                let tag = self.tag_for(node.id.0, e as u32, cc)?;
                for y in from..=to_incl {
                    if dst.interleaved() {
                        let d = self.addr(cc, dst.row_base(y))?;
                        self.push(
                            cc,
                            Instruction::Recv2d {
                                peer: CoreId(src_home),
                                dst: d,
                                block_len: dst.src_c,
                                blocks: dst.src_w,
                                dst_stride: dst.c_total as i32,
                                tag,
                            },
                        );
                    } else {
                        self.recv(cc, src_home, dst.row_base(y), row_len, tag)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn tag_for(&mut self, node: u32, edge: u32, core: u16) -> Result<u16> {
        if let Some(&t) = self.edge_tags.get(&(node, edge, core)) {
            return Ok(t);
        }
        let t = self.new_tag()?;
        self.edge_tags.insert((node, edge, core), t);
        Ok(t)
    }

    /// Source rows needed before producing output row `y` of a windowed op.
    fn rows_needed(y: u32, kernel: u32, stride: u32, padding: u32, h_in: u32) -> u32 {
        (y * stride + kernel)
            .saturating_sub(padding + 1)
            .min(h_in - 1)
    }

    // ------------------------------------------------------- row forwarding --

    /// Consumers of `node`'s output: `(consumer, edge index)` sorted by the
    /// global order.
    fn consumers_of(&self, node: NodeId) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for n in self.lowered {
            if matches!(n.kind, LoweredKind::Alias) {
                continue;
            }
            for (e, p) in n.inputs.iter().enumerate() {
                if resolve_alias(self.lowered, *p) == PortRef::Node(node) {
                    out.push((n.id, e));
                }
            }
        }
        out.sort_by_key(|(id, e)| (id.0, *e));
        out
    }

    /// Number of wire rows an edge carries: the *effective* producer's
    /// height (aliases such as flatten reshape logically, but the producer
    /// still forwards its own rows).
    fn eff_rows(&self, node: &LoweredNode, e: usize) -> u32 {
        match resolve_alias(self.lowered, node.inputs[e]) {
            PortRef::Input => self.input_shape.height,
            PortRef::Node(id) => self.lowered[id.as_usize()].out_shape.height,
        }
    }

    /// A node's input edges sorted by (effective producer id, edge index)
    /// — the global drain order (network input counts as the earliest
    /// producer).
    fn edges_in_drain_order(&self, node: &LoweredNode) -> Vec<usize> {
        let mut edges: Vec<usize> = (0..node.inputs.len()).collect();
        edges.sort_by_key(|&e| {
            let key = match resolve_alias(self.lowered, node.inputs[e]) {
                PortRef::Input => -1i64,
                PortRef::Node(id) => id.0 as i64,
            };
            (key, e)
        });
        edges
    }

    /// Forwards row `y` of `node` along one consumer edge.
    fn forward_row_to(
        &mut self,
        node: &LoweredNode,
        cid: NodeId,
        e: usize,
        y: u32,
        src_row: u32,
    ) -> Result<()> {
        let home = self.placement.home[node.id.as_usize()];
        let row_len = node.out_shape.width * node.out_shape.channels;
        let consumer = &self.lowered[cid.as_usize()];
        let mut cores = self.placement.compute_cores(cid);
        cores.sort_unstable();
        for cc in cores {
            let dst = self.edge_dst(consumer, e, cc)?;
            if cc == home {
                if dst.interleaved() {
                    let d = self.addr(cc, dst.row_base(y))?;
                    let s = self.addr(cc, src_row)?;
                    self.push(
                        cc,
                        Instruction::VCopy2d {
                            dst: d,
                            src: s,
                            block_len: dst.src_c,
                            blocks: dst.src_w,
                            src_stride: dst.src_c as i32,
                            dst_stride: dst.c_total as i32,
                        },
                    );
                } else {
                    self.copy_local(cc, dst.row_base(y), src_row, row_len)?;
                }
            } else {
                let tag = self.tag_for(cid.0, e as u32, cc)?;
                self.pending_remote
                    .insert((node.id.0, cid.0, e as u32, cc, home));
                self.send(home, cc, src_row, row_len, tag)?;
            }
        }
        Ok(())
    }

    /// Edge-major forwarding from a fully materialized output buffer, or a
    /// streaming `GSTORE` when this is the network's output node.
    fn finish_section(
        &mut self,
        node: &LoweredNode,
        outbuf: u32,
        out_node: NodeId,
        out_gaddr: u64,
    ) -> Result<()> {
        let row_len = node.out_shape.width * node.out_shape.channels;
        if node.id == out_node {
            for y in 0..node.out_shape.height {
                self.gstore(
                    self.placement.home[node.id.as_usize()],
                    out_gaddr + (y as u64) * row_len as u64,
                    outbuf + y * row_len,
                    row_len,
                )?;
            }
            return Ok(());
        }
        for (cid, e) in self.consumers_of(node.id) {
            for y in 0..node.out_shape.height {
                self.forward_row_to(node, cid, e, y, outbuf + y * row_len)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------- matrix nodes --

    fn emit_matrix(&mut self, node: &LoweredNode, out_node: NodeId, out_gaddr: u64) -> Result<()> {
        let m = node.matrix().expect("matrix node").clone();
        let home = self.placement.home[node.id.as_usize()];
        let out_s = node.out_shape;
        let in_s = node.in_shapes[0];
        let xr = self.arch.resources.xbar_rows;

        // Stage bias into local memory.
        if let Some(gen) = self.weights {
            let full_bias = gen.bias(node.id, m.cols);
            let cores = self.placement.compute_cores(node.id);
            for cc in cores {
                let b = self.buf(BufKey::Bias {
                    node: node.id.0,
                    core: cc,
                })?;
                let vals = if cc == home {
                    full_bias.clone()
                } else {
                    let mut v = Vec::new();
                    for s in self.placement.node_slices[node.id.as_usize()]
                        .iter()
                        .map(|&si| &self.placement.slices[si])
                        .filter(|s| s.core == cc)
                    {
                        v.extend_from_slice(
                            &full_bias[s.col_start as usize..(s.col_start + s.cols) as usize],
                        );
                    }
                    v
                };
                if !vals.is_empty() {
                    self.progs[cc as usize].local_init.push((b.base, vals));
                }
            }
        }

        // Slices grouped per core; remember each slice's local staging
        // column offset on its core.
        let slices: Vec<(u32, Slice)> = self.placement.node_slices[node.id.as_usize()]
            .iter()
            .enumerate()
            .map(|(i, &si)| (i as u32, self.placement.slices[si].clone()))
            .collect();
        let mut cores: Vec<u16> = slices.iter().map(|(_, s)| s.core).collect();
        cores.dedup();
        let mut seen = Vec::new();
        cores.retain(|c| {
            if seen.contains(c) {
                false
            } else {
                seen.push(*c);
                true
            }
        });
        // Home first for readability; ordering across cores is irrelevant.
        cores.sort_unstable_by_key(|&c| (c != home, c));

        let (h_out, w_out) = (out_s.height, out_s.width);
        let is_linear = m.is_linear();
        let rows_src = if is_linear {
            self.eff_rows(node, 0)
        } else {
            in_s.height
        };

        // Per core: emit its section.
        for &cc in &cores {
            let my: Vec<(u32, Slice)> = slices
                .iter()
                .filter(|(_, s)| s.core == cc)
                .cloned()
                .collect();
            let in_buf = self
                .buf(BufKey::EdgeIn {
                    node: node.id.0,
                    edge: 0,
                    core: cc,
                })?
                .base;
            let scratch = self
                .buf(BufKey::Scratch {
                    node: node.id.0,
                    core: cc,
                })?
                .base;
            let staging = if cc == home {
                0
            } else {
                self.buf(BufKey::Staging {
                    node: node.id.0,
                    core: cc,
                })?
                .base
            };
            let bias = self
                .buf(BufKey::Bias {
                    node: node.id.0,
                    core: cc,
                })?
                .base;
            let max_cols = my.iter().map(|(_, s)| s.cols).max().unwrap_or(1);
            let win_len = if is_linear { 0 } else { m.rows };
            let max_groups = m.rows.div_ceil(xr);
            let slot_len = win_len + (1 + max_groups) * max_cols;
            // Local staging column offsets (non-home cores pack their slices).
            let mut local_off = HashMap::new();
            let mut acc_off = 0u32;
            for (si, s) in &my {
                if cc == home {
                    local_off.insert(*si, s.col_start);
                } else {
                    local_off.insert(*si, acc_off);
                    acc_off += s.cols;
                }
            }
            let c_here: u32 = if cc == home {
                out_s.channels
            } else {
                my.iter().map(|(_, s)| s.cols).sum()
            };

            let w_pad_elems = (in_s.width + 2 * m.padding) * in_s.channels;
            let mut acquired: i64 = -1;
            let outbuf = if cc == home {
                self.buf(BufKey::OutBuf { node: node.id.0 })?.base
            } else {
                0
            };
            let row_len_out = w_out * c_here;

            for y in 0..h_out {
                // Where this core assembles output row `y` (home: the
                // materialized output; slice cores: the slice buffer).
                let row_base = if cc == home {
                    outbuf + y * row_len_out
                } else {
                    staging + y * row_len_out
                };
                // Acquire the input rows this output row needs.
                if is_linear {
                    if y == 0 {
                        self.acquire_rows(node, 0, cc, 0, rows_src - 1)?;
                    }
                } else {
                    let need = Self::rows_needed(y, m.kernel, m.stride, m.padding, in_s.height);
                    if need as i64 > acquired {
                        self.acquire_rows(node, 0, cc, (acquired + 1) as u32, need)?;
                        acquired = need as i64;
                    }
                }

                for x in 0..w_out {
                    let slot = scratch + (x % SCRATCH_SLOTS) * slot_len;
                    let win = slot;
                    let acc = slot + win_len;
                    let parts = slot + win_len + max_cols;

                    // Assemble the im2col window (skip for linear and for
                    // pointwise stride-1 unpadded convs, which read the
                    // input buffer directly).
                    let direct_src: Option<u32> = if is_linear {
                        Some(in_buf)
                    } else if m.kernel == 1 && m.stride == 1 && m.padding == 0 {
                        Some(in_buf + (y * in_s.width + x) * in_s.channels)
                    } else {
                        let src0 = in_buf
                            + (y * m.stride * (in_s.width + 2 * m.padding) + x * m.stride)
                                * in_s.channels;
                        let d = self.addr(cc, win)?;
                        let s = self.addr(cc, src0)?;
                        self.push(
                            cc,
                            Instruction::VCopy2d {
                                dst: d,
                                src: s,
                                block_len: m.kernel * in_s.channels,
                                blocks: m.kernel,
                                src_stride: w_pad_elems as i32,
                                dst_stride: (m.kernel * in_s.channels) as i32,
                            },
                        );
                        None
                    };

                    for (si, s) in &my {
                        let gids = self.slice_groups[&(node.id.0, *si)].clone();
                        let complete = s.covers_all_rows(m.rows);
                        let loff = local_off[si];
                        // Raw accumulation target: complete slices at home
                        // write straight into staging via the epilogue;
                        // everything else accumulates in scratch first.
                        let seg_dst = if complete {
                            row_base + x * c_here + loff
                        } else if cc == home {
                            let accrow = self
                                .buf(BufKey::AccRow {
                                    node: node.id.0,
                                    col_start: s.col_start,
                                })?
                                .base;
                            accrow + (y * w_out + x) * s.cols
                        } else {
                            row_base + x * c_here + loff
                        };
                        let n_g = gids.len();
                        for (gi, gid) in gids.iter().enumerate() {
                            let g_rows = self.progs[cc as usize].groups[gid.as_usize()].input_len;
                            let row0 = s.row_start + (gi as u32) * xr;
                            let src = match direct_src {
                                Some(b) => b + row0,
                                None => win + row0,
                            };
                            let mvm_dst = if gi == 0 {
                                acc
                            } else {
                                parts + (gi as u32 - 1) * max_cols
                            };
                            let d = self.addr(cc, mvm_dst)?;
                            let sa = self.addr(cc, src)?;
                            self.push(
                                cc,
                                Instruction::Mvm {
                                    group: *gid,
                                    dst: d,
                                    src: sa,
                                    len: g_rows,
                                },
                            );
                            if gi > 0 {
                                // Fold the partial into the accumulator; the
                                // last fold lands in the segment target.
                                let fold_dst = if gi + 1 == n_g { seg_dst } else { acc };
                                let part = parts + (gi as u32 - 1) * max_cols;
                                self.vbin(cc, VBinOp::Add, fold_dst, acc, part, s.cols)?;
                            } else if n_g == 1 {
                                self.copy_local(cc, seg_dst, acc, s.cols)?;
                            }
                        }
                        // Epilogue for complete slices (bias, requant, act).
                        if complete {
                            let at = seg_dst;
                            let bias_at = bias + if cc == home { s.col_start } else { loff };
                            self.vbin(cc, VBinOp::Add, at, at, bias_at, s.cols)?;
                            let d = self.addr(cc, at)?;
                            self.push(
                                cc,
                                Instruction::VImm {
                                    op: VImmOp::Sra,
                                    dst: d,
                                    src: d,
                                    imm: self.shift as i32,
                                    len: s.cols,
                                },
                            );
                            if let Some(act) = m.activation {
                                self.activation_op(cc, act, at, s.cols)?;
                            }
                        }
                    }
                }
            }
            // Windows may not cover the bottom input rows (e.g. stride-2
            // pointwise convs); drain them anyway so every sent row is
            // consumed and channel credits never leak.
            if !is_linear && acquired + 1 < rows_src as i64 {
                self.acquire_rows(node, 0, cc, (acquired + 1) as u32, rows_src - 1)?;
            }
            if cc == home {
                // Phase B: drain remote slices (complete ones interleave
                // straight into the output; raw partials fold into the
                // accumulator), then run the epilogue for row-split ranges.
                for y in 0..h_out {
                    let row_base = outbuf + y * row_len_out;
                    for (si, sl) in &slices {
                        if sl.core == home {
                            continue;
                        }
                        let complete = sl.covers_all_rows(m.rows);
                        let tag = self.gather_tag(node.id.0, *si)?;
                        if complete {
                            let d = self.addr(home, row_base + sl.col_start)?;
                            self.push(
                                home,
                                Instruction::Recv2d {
                                    peer: CoreId(sl.core),
                                    dst: d,
                                    block_len: sl.cols,
                                    blocks: w_out,
                                    dst_stride: out_s.channels as i32,
                                    tag,
                                },
                            );
                        } else {
                            let pin = self
                                .buf(BufKey::PartialIn {
                                    node: node.id.0,
                                    slice: *si,
                                })?
                                .base;
                            self.recv(home, sl.core, pin, w_out * sl.cols, tag)?;
                            let accrow = self
                                .buf(BufKey::AccRow {
                                    node: node.id.0,
                                    col_start: sl.col_start,
                                })?
                                .base;
                            self.vbin(
                                home,
                                VBinOp::Add,
                                accrow + y * w_out * sl.cols,
                                accrow + y * w_out * sl.cols,
                                pin,
                                w_out * sl.cols,
                            )?;
                        }
                    }
                    let mut done_ranges: Vec<u32> = Vec::new();
                    for (_, sl) in &slices {
                        if sl.covers_all_rows(m.rows) || done_ranges.contains(&sl.col_start) {
                            continue;
                        }
                        done_ranges.push(sl.col_start);
                        let accrow = self
                            .buf(BufKey::AccRow {
                                node: node.id.0,
                                col_start: sl.col_start,
                            })?
                            .base;
                        for x in 0..w_out {
                            let dst = row_base + x * out_s.channels + sl.col_start;
                            self.vbin(
                                home,
                                VBinOp::Add,
                                dst,
                                accrow + (y * w_out + x) * sl.cols,
                                bias + sl.col_start,
                                sl.cols,
                            )?;
                            let d = self.addr(home, dst)?;
                            self.push(
                                home,
                                Instruction::VImm {
                                    op: VImmOp::Sra,
                                    dst: d,
                                    src: d,
                                    imm: self.shift as i32,
                                    len: sl.cols,
                                },
                            );
                            if let Some(act) = m.activation {
                                self.activation_op(home, act, dst, sl.cols)?;
                            }
                        }
                    }
                }
                self.finish_section(node, outbuf, out_node, out_gaddr)?;
            } else {
                // Ship each slice segment to home, row by row in order.
                for y in 0..h_out {
                    for (si, sl) in &my {
                        let tag = self.gather_tag(node.id.0, *si)?;
                        let src = staging + y * row_len_out + local_off[si];
                        // Per-pixel segments of this slice are strided by
                        // c_here; contiguous only when the slice owns the
                        // whole local row.
                        if sl.cols == c_here {
                            self.send(cc, home, src, w_out * sl.cols, tag)?;
                        } else {
                            // Compact the strided segment into the scratch
                            // area, then send contiguously.
                            let d = self.addr(cc, scratch)?;
                            let sa = self.addr(cc, src)?;
                            self.push(
                                cc,
                                Instruction::VCopy2d {
                                    dst: d,
                                    src: sa,
                                    block_len: sl.cols,
                                    blocks: w_out,
                                    src_stride: c_here as i32,
                                    dst_stride: sl.cols as i32,
                                },
                            );
                            self.send(cc, home, scratch, w_out * sl.cols, tag)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// One gather channel per (node, slice) so a core holding several
    /// slices of the same layer ships each segment on its own tag.
    fn gather_tag(&mut self, node: u32, slice: u32) -> Result<u16> {
        let key = node << 16 | slice;
        if let Some(&t) = self.gather_tags.get(&key) {
            return Ok(t);
        }
        let t = self.new_tag()?;
        self.gather_tags.insert(key, t);
        Ok(t)
    }

    // -------------------------------------------------------- other nodes --

    fn emit_pool(&mut self, node: &LoweredNode, out_node: NodeId, out_gaddr: u64) -> Result<()> {
        let LoweredKind::Pool {
            is_max,
            kernel,
            stride,
            padding,
        } = node.kind
        else {
            unreachable!("emit_pool on non-pool");
        };
        if kernel > WIN_MAX {
            return Err(CompileError::Internal(format!(
                "pool window {kernel} exceeds the ISA limit {WIN_MAX}"
            )));
        }
        let home = self.placement.home[node.id.as_usize()];
        let in_s = node.in_shapes[0];
        let out_s = node.out_shape;
        let in_buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 0,
                core: home,
            })?
            .base;
        let w_pad_elems = (in_s.width + 2 * padding) * in_s.channels;
        let op = if is_max { PoolOp::Max } else { PoolOp::Avg };
        let mut acquired: i64 = -1;
        let outbuf = self.buf(BufKey::OutBuf { node: node.id.0 })?.base;
        let row_len = out_s.width * out_s.channels;
        for y in 0..out_s.height {
            let row_base = outbuf + y * row_len;
            let need = Self::rows_needed(y, kernel, stride, padding, in_s.height);
            if need as i64 > acquired {
                self.acquire_rows(node, 0, home, (acquired + 1) as u32, need)?;
                acquired = need as i64;
            }
            for x in 0..out_s.width {
                let src =
                    in_buf + (y * stride * (in_s.width + 2 * padding) + x * stride) * in_s.channels;
                let d = self.addr(home, row_base + x * out_s.channels)?;
                let s = self.addr(home, src)?;
                self.push(
                    home,
                    Instruction::VPool {
                        op,
                        dst: d,
                        src: s,
                        channels: in_s.channels,
                        win_w: kernel,
                        win_h: kernel,
                        row_stride: w_pad_elems as i32,
                    },
                );
            }
        }
        if acquired + 1 < in_s.height as i64 {
            self.acquire_rows(node, 0, home, (acquired + 1) as u32, in_s.height - 1)?;
        }
        self.finish_section(node, outbuf, out_node, out_gaddr)?;
        Ok(())
    }

    fn emit_global_pool(
        &mut self,
        node: &LoweredNode,
        out_node: NodeId,
        out_gaddr: u64,
    ) -> Result<()> {
        let home = self.placement.home[node.id.as_usize()];
        let in_s = node.in_shapes[0];
        if in_s.width > WIN_MAX || in_s.height > WIN_MAX {
            return Err(CompileError::Internal(format!(
                "global pool over {}x{} exceeds the ISA window limit {WIN_MAX}",
                in_s.height, in_s.width
            )));
        }
        let in_buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 0,
                core: home,
            })?
            .base;
        self.acquire_rows(node, 0, home, 0, self.eff_rows(node, 0) - 1)?;
        let outbuf = self.buf(BufKey::OutBuf { node: node.id.0 })?.base;
        let d = self.addr(home, outbuf)?;
        let s = self.addr(home, in_buf)?;
        self.push(
            home,
            Instruction::VPool {
                op: PoolOp::Avg,
                dst: d,
                src: s,
                channels: in_s.channels,
                win_w: in_s.width,
                win_h: in_s.height,
                row_stride: (in_s.width * in_s.channels) as i32,
            },
        );
        self.finish_section(node, outbuf, out_node, out_gaddr)?;
        Ok(())
    }

    fn emit_activation(
        &mut self,
        node: &LoweredNode,
        out_node: NodeId,
        out_gaddr: u64,
    ) -> Result<()> {
        let LoweredKind::Activation(act) = node.kind else {
            unreachable!("emit_activation on non-activation");
        };
        let home = self.placement.home[node.id.as_usize()];
        let in_s = node.in_shapes[0];
        let in_buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 0,
                core: home,
            })?
            .base;
        let row = in_s.width * in_s.channels;
        let outbuf = self.buf(BufKey::OutBuf { node: node.id.0 })?.base;
        let eff = self.eff_rows(node, 0);
        if eff != in_s.height {
            self.acquire_rows(node, 0, home, 0, eff - 1)?;
        }
        for y in 0..in_s.height {
            if eff == in_s.height {
                self.acquire_rows(node, 0, home, y, y)?;
            }
            let src = in_buf + y * row;
            let op = match act {
                Activation::Relu => VUnOp::Relu,
                Activation::Sigmoid => VUnOp::Sigmoid,
                Activation::Tanh => VUnOp::Tanh,
            };
            self.vun(home, op, outbuf + y * row, src, row)?;
        }
        self.finish_section(node, outbuf, out_node, out_gaddr)?;
        Ok(())
    }

    fn emit_add(&mut self, node: &LoweredNode, out_node: NodeId, out_gaddr: u64) -> Result<()> {
        let LoweredKind::Add { activation } = node.kind else {
            unreachable!("emit_add on non-add");
        };
        let home = self.placement.home[node.id.as_usize()];
        let s = node.out_shape;
        let a_buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 0,
                core: home,
            })?
            .base;
        let b_buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 1,
                core: home,
            })?
            .base;
        let row = s.width * s.channels;
        let outbuf = self.buf(BufKey::OutBuf { node: node.id.0 })?.base;
        // Drain edges in producer order; the last one pipelines row by row
        // with the adds.
        let order = self.edges_in_drain_order(node);
        let (&last, earlier) = order.split_last().expect("add has two edges");
        for &e in earlier {
            self.acquire_rows(node, e, home, 0, self.eff_rows(node, e) - 1)?;
        }
        let eff_last = self.eff_rows(node, last);
        if eff_last != s.height {
            self.acquire_rows(node, last, home, 0, eff_last - 1)?;
        }
        for y in 0..s.height {
            if eff_last == s.height {
                self.acquire_rows(node, last, home, y, y)?;
            }
            self.vbin(
                home,
                VBinOp::Add,
                outbuf + y * row,
                a_buf + y * row,
                b_buf + y * row,
                row,
            )?;
            if let Some(act) = activation {
                self.activation_op(home, act, outbuf + y * row, row)?;
            }
        }
        self.finish_section(node, outbuf, out_node, out_gaddr)?;
        Ok(())
    }

    fn emit_concat(&mut self, node: &LoweredNode, out_node: NodeId, out_gaddr: u64) -> Result<()> {
        let home = self.placement.home[node.id.as_usize()];
        let s = node.out_shape;
        let buf = self
            .buf(BufKey::EdgeIn {
                node: node.id.0,
                edge: 0,
                core: home,
            })?
            .base;
        // Drain every branch fully, in producer order.
        for e in self.edges_in_drain_order(node) {
            let h = self.eff_rows(node, e);
            self.acquire_rows(node, e, home, 0, h - 1)?;
        }
        let _ = s;
        // The assembly buffer is already a full output.
        self.finish_section(node, buf, out_node, out_gaddr)?;
        Ok(())
    }
}

#![warn(missing_docs)]

//! The PIMSIM-NN compiler: network description → per-core instruction
//! streams.
//!
//! Modeled after PIMCOMP (paper §III-A), the pipeline is:
//!
//! 1. **Lowering** ([`lower`]) — convolution/linear layers become weight
//!    matrices (im2col on the HWC layout); the remaining operators become
//!    vector/transfer work.
//! 2. **Mapping** ([`mapping`]) — weight matrices are tiled onto crossbars
//!    and assigned to cores under one of the paper's two policies:
//!    [`MappingPolicy::UtilizationFirst`] (pack cores tightly; one core may
//!    hold several layers and a matrix may be split across cores) or
//!    [`MappingPolicy::PerformanceFirst`] (each core holds at most one
//!    layer's weights).
//! 3. **Code generation** (producing a [`Compiled`]) — emits the four instruction
//!    classes with operator fusion (bias, requantization and activation run
//!    on MVM outputs in place), crossbar *group* formation per row-block,
//!    synchronized row-granular transfers between producer and consumer
//!    cores, and per-instruction layer tags for the communication-ratio
//!    statistics of Fig. 5.
//!
//! # Example
//!
//! ```rust
//! use pimsim_arch::ArchConfig;
//! use pimsim_compiler::{Compiler, MappingPolicy};
//! use pimsim_nn::zoo;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::small_test();
//! let net = zoo::tiny_cnn();
//! let compiled = Compiler::new(&arch)
//!     .mapping(MappingPolicy::PerformanceFirst)
//!     .compile(&net)?;
//! assert!(compiled.program.total_instructions() > 0);
//! // Every weight layer got crossbars on some core:
//! assert!(compiled.placement.cores_used >= 1);
//! # Ok(())
//! # }
//! ```

mod codegen;
mod error;
mod lower;
pub mod mapping;

pub use codegen::{Compiled, OutputSpec};
pub use error::CompileError;
pub use lower::{lower, LoweredKind, LoweredNode, MatrixOp};
pub use mapping::{MappingPolicy, Placement, Slice};

use pimsim_arch::ArchConfig;
use pimsim_nn::{Network, WeightGen, DEFAULT_REQUANT_SHIFT};

/// Result alias for fallible compilation.
pub type Result<T> = std::result::Result<T, CompileError>;

/// Compiles networks against a fixed architecture configuration.
///
/// Non-consuming builder: configure, then call [`Compiler::compile`] any
/// number of times.
#[derive(Debug, Clone)]
pub struct Compiler<'a> {
    arch: &'a ArchConfig,
    policy: MappingPolicy,
    requant_shift: u32,
    functional: Option<bool>,
    batch: u32,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for `arch` with the performance-first policy and
    /// the default requantization shift.
    pub fn new(arch: &'a ArchConfig) -> Self {
        Compiler {
            arch,
            policy: MappingPolicy::PerformanceFirst,
            requant_shift: DEFAULT_REQUANT_SHIFT,
            functional: None,
            batch: 1,
        }
    }

    /// Number of inferences compiled back to back. With more than one, a
    /// core starts the next image as soon as its buffers free up, so
    /// independent layer cores pipeline across images — the throughput
    /// set-up PIM compilers target. Per-image latency is total latency
    /// divided by the batch.
    pub fn batch(&mut self, batch: u32) -> &mut Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects the mapping policy (paper §III-A).
    pub fn mapping(&mut self, policy: MappingPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Overrides the requantization shift applied after every weight layer
    /// (must match the golden model's when comparing outputs).
    pub fn requant_shift(&mut self, shift: u32) -> &mut Self {
        self.requant_shift = shift;
        self
    }

    /// Forces weight material on/off. Default: follow
    /// `arch.sim.functional` (weights and input data are only attached for
    /// functional simulation; timing-only programs stay small).
    pub fn functional(&mut self, functional: bool) -> &mut Self {
        self.functional = Some(functional);
        self
    }

    /// Compiles `net` into a [`Compiled`] artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the network is malformed, does not fit
    /// the chip (crossbars, local memory, tag space) or exceeds ISA
    /// encoding limits.
    pub fn compile(&self, net: &Network) -> Result<Compiled> {
        self.arch.validate()?;
        net.validate()?;
        let lowered = lower::lower(net)?;
        let placement = mapping::place(&lowered, self.arch, self.policy)?;
        let functional = self.functional.unwrap_or(self.arch.sim.functional);
        let weights = functional.then(|| WeightGen::for_network(net));
        codegen::emit(
            net,
            &lowered,
            &placement,
            self.arch,
            self.policy,
            self.requant_shift,
            weights,
            self.batch,
        )
    }
}

//! Lowering: network layers → weight matrices + vector/transfer operators.
//!
//! Convolutions become im2col weight matrices of `kernel² × in_channels`
//! rows by `out_channels` columns (HWC window order, matching both the
//! golden model and the `VCOPY2D` gather the code generator emits). Flatten
//! layers become pure aliases (HWC is already flat in memory). Everything
//! else keeps its operator identity for the vector/transfer code generator.

use pimsim_nn::{Activation, Layer, Network, NodeId, PortRef, Shape};

use crate::error::CompileError;

/// A lowered weight operator (convolution or linear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixOp {
    /// Weight matrix rows (`kernel² × in_channels`, or `in_features`).
    pub rows: u32,
    /// Weight matrix columns (`out_channels` / `out_features`).
    pub cols: u32,
    /// Convolution kernel edge; `0` marks a linear layer.
    pub kernel: u32,
    /// Convolution stride (1 for linear).
    pub stride: u32,
    /// Convolution padding (0 for linear).
    pub padding: u32,
    /// Fused activation.
    pub activation: Option<Activation>,
}

impl MatrixOp {
    /// `true` for linear (fully connected) layers.
    pub fn is_linear(&self) -> bool {
        self.kernel == 0
    }
}

/// The operator category after lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoweredKind {
    /// Crossbar MVM work.
    Matrix(MatrixOp),
    /// Windowed pooling (max or average).
    Pool {
        /// `true` for max pooling, `false` for average.
        is_max: bool,
        /// Window edge.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Padding.
        padding: u32,
    },
    /// Global average pooling.
    GlobalPool,
    /// Element-wise residual add.
    Add {
        /// Fused activation on the sum.
        activation: Option<Activation>,
    },
    /// Channel concatenation.
    Concat,
    /// Standalone activation.
    Activation(Activation),
    /// Pure reinterpretation (flatten): no code, no buffers.
    Alias,
}

/// One node after lowering, with resolved shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredNode {
    /// The original node id.
    pub id: NodeId,
    /// The original node name.
    pub name: String,
    /// The operator category.
    pub kind: LoweredKind,
    /// Input ports (as in the network, unresolved aliases included).
    pub inputs: Vec<PortRef>,
    /// Shapes of the inputs, in order.
    pub in_shapes: Vec<Shape>,
    /// Output shape.
    pub out_shape: Shape,
}

impl LoweredNode {
    /// The weight operator, if this is a matrix node.
    pub fn matrix(&self) -> Option<&MatrixOp> {
        match &self.kind {
            LoweredKind::Matrix(m) => Some(m),
            _ => None,
        }
    }
}

/// Lowers a validated network.
///
/// # Errors
///
/// Returns [`CompileError::Network`] for malformed graphs (propagated from
/// validation/shape inference).
pub fn lower(net: &Network) -> Result<Vec<LoweredNode>, CompileError> {
    let shapes = net.inferred_shapes()?;
    let mut out = Vec::with_capacity(net.nodes.len());
    for (i, node) in net.nodes.iter().enumerate() {
        let in_shapes: Vec<Shape> = node
            .inputs
            .iter()
            .map(|p| match p {
                PortRef::Input => net.input_shape,
                PortRef::Node(id) => shapes[id.as_usize()],
            })
            .collect();
        let kind = match &node.layer {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                activation,
            } => LoweredKind::Matrix(MatrixOp {
                rows: kernel * kernel * in_shapes[0].channels,
                cols: *out_channels,
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
                activation: *activation,
            }),
            Layer::Linear {
                out_features,
                activation,
            } => LoweredKind::Matrix(MatrixOp {
                rows: in_shapes[0].elems(),
                cols: *out_features,
                kernel: 0,
                stride: 1,
                padding: 0,
                activation: *activation,
            }),
            Layer::MaxPool2d {
                kernel,
                stride,
                padding,
            } => LoweredKind::Pool {
                is_max: true,
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
            },
            Layer::AvgPool2d {
                kernel,
                stride,
                padding,
            } => LoweredKind::Pool {
                is_max: false,
                kernel: *kernel,
                stride: *stride,
                padding: *padding,
            },
            Layer::GlobalAvgPool => LoweredKind::GlobalPool,
            Layer::Add { activation } => LoweredKind::Add {
                activation: *activation,
            },
            Layer::Concat => LoweredKind::Concat,
            Layer::Flatten => LoweredKind::Alias,
            Layer::Activation(a) => LoweredKind::Activation(*a),
        };
        out.push(LoweredNode {
            id: node.id,
            name: node.name.clone(),
            kind,
            inputs: node.inputs.clone(),
            in_shapes,
            out_shape: shapes[i],
        });
    }
    Ok(out)
}

/// Follows alias (flatten) chains: the *effective* source of a port, i.e.
/// the node (or network input) whose memory actually holds the data.
pub fn resolve_alias(lowered: &[LoweredNode], port: PortRef) -> PortRef {
    let mut p = port;
    while let PortRef::Node(id) = p {
        match &lowered[id.as_usize()].kind {
            LoweredKind::Alias => p = lowered[id.as_usize()].inputs[0],
            _ => break,
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_nn::zoo;

    #[test]
    fn conv_lowering_uses_im2col_dims() {
        let net = zoo::vgg8(32);
        let lowered = lower(&net).unwrap();
        let conv1 = lowered[0].matrix().expect("conv1 is a matrix op");
        assert_eq!(conv1.rows, 3 * 3 * 3);
        assert_eq!(conv1.cols, 128);
        assert!(!conv1.is_linear());
        let conv2 = lowered[1].matrix().unwrap();
        assert_eq!(conv2.rows, 3 * 3 * 128);
    }

    #[test]
    fn linear_lowering() {
        let net = zoo::tiny_mlp();
        let lowered = lower(&net).unwrap();
        let fc1 = lowered[0].matrix().unwrap();
        assert_eq!((fc1.rows, fc1.cols), (64, 32));
        assert!(fc1.is_linear());
    }

    #[test]
    fn flatten_is_alias_and_resolves() {
        let net = zoo::vgg8(32);
        let lowered = lower(&net).unwrap();
        let flat_idx = lowered
            .iter()
            .position(|n| matches!(n.kind, LoweredKind::Alias))
            .expect("vgg8 has a flatten");
        // The flatten's effective source is the pool before it.
        let resolved = resolve_alias(&lowered, PortRef::Node(lowered[flat_idx].id));
        match resolved {
            PortRef::Node(id) => {
                assert!(matches!(
                    lowered[id.as_usize()].kind,
                    LoweredKind::Pool { .. }
                ))
            }
            PortRef::Input => panic!("should resolve to a node"),
        }
    }

    #[test]
    fn kinds_cover_zoo() {
        let net = zoo::tiny_cnn();
        let lowered = lower(&net).unwrap();
        let kinds: Vec<&'static str> = lowered
            .iter()
            .map(|n| match n.kind {
                LoweredKind::Matrix(_) => "matrix",
                LoweredKind::Pool { .. } => "pool",
                LoweredKind::GlobalPool => "gpool",
                LoweredKind::Add { .. } => "add",
                LoweredKind::Concat => "concat",
                LoweredKind::Activation(_) => "act",
                LoweredKind::Alias => "alias",
            })
            .collect();
        for k in ["matrix", "pool", "gpool", "add", "concat", "act"] {
            assert!(kinds.contains(&k), "tiny_cnn should exercise {k}");
        }
    }

    #[test]
    fn shapes_are_attached() {
        let net = zoo::tiny_cnn();
        let lowered = lower(&net).unwrap();
        for n in &lowered {
            assert_eq!(n.in_shapes.len(), n.inputs.len());
            assert!(n.out_shape.elems() > 0);
        }
    }
}

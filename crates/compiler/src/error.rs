//! Compiler error type.

use std::error::Error;
use std::fmt;

use pimsim_arch::ArchError;
use pimsim_isa::IsaError;
use pimsim_nn::NnError;

/// Errors produced while compiling a network onto an architecture.
#[derive(Debug)]
pub enum CompileError {
    /// The network does not fit the chip's crossbar budget.
    Unmappable {
        /// What ran out (crossbars, cores).
        resource: &'static str,
        /// Required amount.
        needed: u64,
        /// Available amount.
        available: u64,
        /// Context (layer name etc.).
        context: String,
    },
    /// A core's local memory cannot hold the required buffers.
    LocalMemoryOverflow {
        /// The core that overflowed.
        core: u16,
        /// Elements requested beyond capacity.
        needed: u64,
        /// Capacity in elements.
        available: u64,
        /// The buffer being allocated.
        context: String,
    },
    /// The per-chip transfer tag space (2^16) was exhausted.
    TagOverflow,
    /// An emitted instruction exceeded an ISA encoding field.
    Isa(IsaError),
    /// The input network is malformed.
    Network(NnError),
    /// The architecture configuration is invalid.
    Arch(ArchError),
    /// An internal invariant failed (a compiler bug, not a user error).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unmappable {
                resource,
                needed,
                available,
                context,
            } => write!(
                f,
                "network does not fit: needs {needed} {resource} but only {available} available ({context})"
            ),
            CompileError::LocalMemoryOverflow {
                core,
                needed,
                available,
                context,
            } => write!(
                f,
                "core {core} local memory overflow: {needed} elements needed, {available} available ({context})"
            ),
            CompileError::TagOverflow => write!(f, "transfer tag space (65536) exhausted"),
            CompileError::Isa(e) => write!(f, "ISA error: {e}"),
            CompileError::Network(e) => write!(f, "network error: {e}"),
            CompileError::Arch(e) => write!(f, "architecture error: {e}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Isa(e) => Some(e),
            CompileError::Network(e) => Some(e),
            CompileError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CompileError {
    fn from(e: IsaError) -> Self {
        CompileError::Isa(e)
    }
}

impl From<NnError> for CompileError {
    fn from(e: NnError) -> Self {
        CompileError::Network(e)
    }
}

impl From<ArchError> for CompileError {
    fn from(e: ArchError) -> Self {
        CompileError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CompileError::Unmappable {
            resource: "crossbars",
            needed: 40_000,
            available: 32_768,
            context: "fc6".into(),
        };
        assert!(e.to_string().contains("crossbars"));
        assert!(e.to_string().contains("fc6"));

        let m = CompileError::LocalMemoryOverflow {
            core: 3,
            needed: 100,
            available: 50,
            context: "input buffer".into(),
        };
        assert!(m.to_string().contains("core 3"));
        assert!(CompileError::TagOverflow.to_string().contains("65536"));
    }

    #[test]
    fn conversions_chain_sources() {
        let e: CompileError = IsaError::UnknownOpcode(0xEE).into();
        assert!(e.source().is_some());
    }
}

//! Weight-to-core mapping: the paper's two algorithms (§III-A).
//!
//! A weight matrix of `R × C` logical weights is tiled into row-blocks of
//! `xbar_rows` rows; each row-block needs `ceil(C / logical_cols_per_xbar)`
//! crossbars. Matrices are split across cores **by columns first** (each
//! core then holds complete input rows for its output-channel range, so no
//! cross-core partial-sum reduction is needed); only when a core cannot hold
//! even one full column block does the mapper fall back to a **row split**,
//! whose partial sums the code generator reduces on the layer's home core.
//!
//! * [`MappingPolicy::UtilizationFirst`] packs layers onto cores one after
//!   another with no gaps: one core may hold several layers' weights and a
//!   layer may continue onto the next core mid-matrix.
//! * [`MappingPolicy::PerformanceFirst`] gives every layer fresh cores and
//!   never lets two layers share one ("each core only stores one layer's
//!   weights").

use std::fmt;

use serde::{Deserialize, Serialize};

use pimsim_arch::ArchConfig;
use pimsim_nn::{NodeId, PortRef};

use crate::error::CompileError;
use crate::lower::{resolve_alias, LoweredKind, LoweredNode};

/// The paper's two mapping algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Pack weights tightly; cores may hold several layers (paper: may
    /// reduce parallelism and add intra-layer communication).
    UtilizationFirst,
    /// One layer per core, layers on unmapped cores (paper: ≈2× better
    /// latency/energy on the evaluation networks).
    PerformanceFirst,
}

impl fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingPolicy::UtilizationFirst => f.write_str("utilization-first"),
            MappingPolicy::PerformanceFirst => f.write_str("performance-first"),
        }
    }
}

/// A rectangular slice of one layer's weight matrix assigned to one core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// The weight layer.
    pub node: NodeId,
    /// The core holding this slice.
    pub core: u16,
    /// First logical weight row (always a multiple of `xbar_rows`).
    pub row_start: u32,
    /// Logical weight rows covered.
    pub rows: u32,
    /// First logical weight column.
    pub col_start: u32,
    /// Logical weight columns covered.
    pub cols: u32,
    /// Physical crossbars consumed.
    pub xbars: u32,
}

impl Slice {
    /// `true` when the slice spans every weight row (no partial sums leave
    /// this core).
    pub fn covers_all_rows(&self, total_rows: u32) -> bool {
        self.row_start == 0 && self.rows == total_rows
    }
}

/// The placement of a whole network onto the chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Every weight slice, in allocation order.
    pub slices: Vec<Slice>,
    /// Per node: indices into `slices` (empty for non-matrix nodes).
    pub node_slices: Vec<Vec<usize>>,
    /// Per node: the *home* core that assembles and forwards its output.
    pub home: Vec<u16>,
    /// Per core: crossbars in use.
    pub xbars_used: Vec<u32>,
    /// Number of cores with any work.
    pub cores_used: usize,
}

impl Placement {
    /// The distinct compute cores of a node (home first).
    pub fn compute_cores(&self, node: NodeId) -> Vec<u16> {
        let slices = &self.node_slices[node.as_usize()];
        if slices.is_empty() {
            return vec![self.home[node.as_usize()]];
        }
        let mut cores = vec![self.home[node.as_usize()]];
        for &si in slices {
            let c = self.slices[si].core;
            if !cores.contains(&c) {
                cores.push(c);
            }
        }
        cores
    }

    /// `true` if any two distinct nodes share a core for weights.
    pub fn cores_shared_between_layers(&self) -> bool {
        use std::collections::BTreeMap;
        let mut owner: BTreeMap<u16, NodeId> = BTreeMap::new();
        for s in &self.slices {
            if let Some(prev) = owner.insert(s.core, s.node) {
                if prev != s.node {
                    return true;
                }
            }
        }
        false
    }
}

/// Runs the selected mapping algorithm.
///
/// # Errors
///
/// Returns [`CompileError::Unmappable`] if the chip runs out of cores.
pub fn place(
    lowered: &[LoweredNode],
    arch: &ArchConfig,
    policy: MappingPolicy,
) -> Result<Placement, CompileError> {
    let r = &arch.resources;
    let cap = r.xbars_per_core;
    let lcpx = r.logical_cols_per_xbar().max(1);
    let n_cores = r.cores() as usize;

    let mut used = vec![0u32; n_cores];
    let mut slices: Vec<Slice> = Vec::new();
    let mut node_slices: Vec<Vec<usize>> = vec![Vec::new(); lowered.len()];
    // Cursor for utilization-first; performance-first always opens fresh cores.
    let mut cursor: usize = 0;
    // First never-touched core (for performance-first).
    let mut next_fresh: usize = 0;

    for node in lowered {
        let Some(m) = node.matrix() else { continue };
        let rb_total = m.rows.div_ceil(r.xbar_rows);
        let mut cur = match policy {
            MappingPolicy::UtilizationFirst => cursor,
            MappingPolicy::PerformanceFirst => next_fresh,
        };
        let need_core = |cur: usize| -> Result<(), CompileError> {
            if cur >= n_cores {
                Err(CompileError::Unmappable {
                    resource: "cores",
                    needed: cur as u64 + 1,
                    available: n_cores as u64,
                    context: format!("placing weights of {}", node.name),
                })
            } else {
                Ok(())
            }
        };

        let mut cols_done = 0u32;
        while cols_done < m.cols {
            need_core(cur)?;
            let avail = cap - used[cur];
            if avail == 0 {
                cur += 1;
                continue;
            }
            let colblocks_left = (m.cols - cols_done).div_ceil(lcpx);
            let fit = avail / rb_total;
            if fit >= 1 {
                // Whole column blocks: full rows, no partial sums.
                let take = fit.min(colblocks_left);
                let cols_take = (take * lcpx).min(m.cols - cols_done);
                slices.push(Slice {
                    node: node.id,
                    core: cur as u16,
                    row_start: 0,
                    rows: m.rows,
                    col_start: cols_done,
                    cols: cols_take,
                    xbars: rb_total * take,
                });
                node_slices[node.id.as_usize()].push(slices.len() - 1);
                used[cur] += rb_total * take;
                cols_done += cols_take;
            } else {
                // Row-split fallback: spread one column block's row-blocks
                // over as many cores as needed.
                let cols_take = lcpx.min(m.cols - cols_done);
                let xbars_per_rb = 1; // one column block = one xbar per row-block
                let mut rb_done = 0u32;
                while rb_done < rb_total {
                    need_core(cur)?;
                    let avail = cap - used[cur];
                    if avail == 0 {
                        cur += 1;
                        continue;
                    }
                    let take_rb = (avail / xbars_per_rb).min(rb_total - rb_done);
                    let row_start = rb_done * r.xbar_rows;
                    let rows = (take_rb * r.xbar_rows).min(m.rows - row_start);
                    slices.push(Slice {
                        node: node.id,
                        core: cur as u16,
                        row_start,
                        rows,
                        col_start: cols_done,
                        cols: cols_take,
                        xbars: take_rb * xbars_per_rb,
                    });
                    node_slices[node.id.as_usize()].push(slices.len() - 1);
                    used[cur] += take_rb * xbars_per_rb;
                    rb_done += take_rb;
                }
                cols_done += cols_take;
            }
        }
        match policy {
            MappingPolicy::UtilizationFirst => cursor = cur,
            MappingPolicy::PerformanceFirst => next_fresh = cur + 1,
        }
    }

    // Home cores: matrix nodes -> first slice's core; others -> home of the
    // first effective producer; pure-input consumers -> core 0.
    let mut home = vec![0u16; lowered.len()];
    for node in lowered {
        let idx = node.id.as_usize();
        home[idx] = match &node.kind {
            LoweredKind::Matrix(_) => {
                let first = node_slices[idx].first().ok_or_else(|| {
                    CompileError::Internal(format!("{} has no slices", node.name))
                })?;
                slices[*first].core
            }
            _ => {
                let mut h = 0u16;
                for p in &node.inputs {
                    match resolve_alias(lowered, *p) {
                        PortRef::Node(src) => {
                            h = home[src.as_usize()];
                            break;
                        }
                        PortRef::Input => {}
                    }
                }
                h
            }
        };
    }

    let cores_used = used
        .iter()
        .filter(|&&u| u > 0)
        .count()
        .max(home.iter().map(|&h| h as usize + 1).max().unwrap_or(1));
    Ok(Placement {
        slices,
        node_slices,
        home,
        xbars_used: used,
        cores_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use pimsim_arch::ArchConfig;
    use pimsim_nn::zoo;

    fn place_net(net: &pimsim_nn::Network, arch: &ArchConfig, policy: MappingPolicy) -> Placement {
        let lowered = lower(net).unwrap();
        place(&lowered, arch, policy).unwrap()
    }

    /// Every weight element is covered exactly once by the slices.
    fn assert_full_coverage(net: &pimsim_nn::Network, p: &Placement) {
        let lowered = lower(net).unwrap();
        for node in &lowered {
            let Some(m) = node.matrix() else { continue };
            let area: u64 = p.node_slices[node.id.as_usize()]
                .iter()
                .map(|&si| p.slices[si].rows as u64 * p.slices[si].cols as u64)
                .sum();
            assert_eq!(
                area,
                m.rows as u64 * m.cols as u64,
                "slice coverage of {}",
                node.name
            );
        }
    }

    #[test]
    fn performance_first_never_shares_cores() {
        let arch = ArchConfig::paper_default();
        for name in ["alexnet", "resnet18", "squeezenet"] {
            let net = zoo::by_name(name, 64).unwrap();
            let p = place_net(&net, &arch, MappingPolicy::PerformanceFirst);
            assert!(!p.cores_shared_between_layers(), "{name} shares cores");
            assert_full_coverage(&net, &p);
        }
    }

    #[test]
    fn utilization_first_packs_tightly() {
        let arch = ArchConfig::paper_default();
        let net = zoo::resnet18(64);
        let p = place_net(&net, &arch, MappingPolicy::UtilizationFirst);
        assert!(
            p.cores_shared_between_layers(),
            "packing should share cores"
        );
        assert_full_coverage(&net, &p);
        // All but the last used weight core are completely full.
        let last_used = p.xbars_used.iter().rposition(|&u| u > 0).unwrap();
        for (c, &u) in p.xbars_used.iter().enumerate().take(last_used) {
            assert_eq!(
                u, arch.resources.xbars_per_core,
                "core {c} should be full under utilization-first"
            );
        }
    }

    #[test]
    fn utilization_uses_fewer_cores_than_performance() {
        let arch = ArchConfig::paper_default();
        let net = zoo::googlenet(64);
        let lowered = lower(&net).unwrap();
        let util = place(&lowered, &arch, MappingPolicy::UtilizationFirst).unwrap();
        let perf = place(&lowered, &arch, MappingPolicy::PerformanceFirst).unwrap();
        let util_cores = util.xbars_used.iter().filter(|&&u| u > 0).count();
        let perf_cores = perf.xbars_used.iter().filter(|&&u| u > 0).count();
        assert!(
            util_cores < perf_cores,
            "utilization-first ({util_cores}) should use fewer weight cores than performance-first ({perf_cores})"
        );
    }

    #[test]
    fn row_split_happens_on_tiny_cores() {
        // A core with fewer crossbars than one column block's row-blocks.
        let mut arch = ArchConfig::small_test();
        arch.resources.core_rows = 4;
        arch.resources.core_cols = 4;
        arch.resources.xbars_per_core = 2;
        arch.resources.xbar_rows = 16;
        arch.resources.xbar_cols = 16;
        let net = zoo::tiny_mlp(); // fc1: 64x32 -> 4 row blocks > 2 xbars
        let lowered = lower(&net).unwrap();
        let p = place(&lowered, &arch, MappingPolicy::PerformanceFirst).unwrap();
        let fc1 = &p.node_slices[0];
        assert!(fc1.len() >= 2, "fc1 should be split");
        assert!(
            fc1.iter().any(|&si| p.slices[si].row_start > 0),
            "fc1 should be row-split"
        );
        assert_full_coverage(&net, &p);
    }

    #[test]
    fn unmappable_network_errors() {
        let mut arch = ArchConfig::small_test();
        arch.resources.core_rows = 1;
        arch.resources.core_cols = 1;
        arch.resources.xbars_per_core = 1;
        let net = zoo::vgg8(32);
        let lowered = lower(&net).unwrap();
        let e = place(&lowered, &arch, MappingPolicy::UtilizationFirst).unwrap_err();
        assert!(matches!(e, CompileError::Unmappable { .. }), "got {e}");
    }

    #[test]
    fn homes_follow_producers() {
        let arch = ArchConfig::paper_default();
        let net = zoo::tiny_cnn();
        let lowered = lower(&net).unwrap();
        let p = place(&lowered, &arch, MappingPolicy::PerformanceFirst).unwrap();
        for node in &lowered {
            match &node.kind {
                LoweredKind::Matrix(_) => {
                    let si = p.node_slices[node.id.as_usize()][0];
                    assert_eq!(p.home[node.id.as_usize()], p.slices[si].core);
                }
                LoweredKind::Pool { .. } | LoweredKind::Activation(_) => {
                    // Single-input vector ops live on their producer's home.
                    if let PortRef::Node(src) = resolve_alias(&lowered, node.inputs[0]) {
                        assert_eq!(p.home[node.id.as_usize()], p.home[src.as_usize()]);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn policy_display() {
        assert_eq!(
            MappingPolicy::UtilizationFirst.to_string(),
            "utilization-first"
        );
        assert_eq!(
            MappingPolicy::PerformanceFirst.to_string(),
            "performance-first"
        );
    }
}

//! Campaign determinism: the worker-thread count must never change the
//! results, and every engine row must match a direct single-scenario run.

use proptest::prelude::*;

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::Simulator;
use pimsim_nn::zoo;
use pimsim_sweep::{results_to_json, run_grid, Scenario, SweepGrid};

/// A 12-point grid of cheap scenarios on the tiny test chip.
fn twelve_point_grid() -> SweepGrid {
    let mut grid = SweepGrid::over_networks(["tiny_mlp", "tiny_cnn"]);
    grid.base = Some(ArchConfig::small_test());
    grid.rob_sizes = vec![1, 2, 4];
    grid.mappings = vec![
        "utilization-first".to_string(),
        "performance-first".to_string(),
    ];
    grid
}

#[test]
fn thread_count_does_not_change_the_json() {
    let grid = twelve_point_grid();
    assert!(grid.points() >= 12);
    let serial = results_to_json(&run_grid(&grid, 1).expect("serial run"));
    let parallel = results_to_json(&run_grid(&grid, 4).expect("parallel run"));
    assert_eq!(
        serial, parallel,
        "--threads 1 and --threads 4 must be byte-identical"
    );
    // And re-running is reproducible outright.
    let again = results_to_json(&run_grid(&grid, 4).expect("second parallel run"));
    assert_eq!(parallel, again);
}

#[test]
fn rows_match_scenario_execute() {
    let grid = twelve_point_grid();
    let rows = run_grid(&grid, 3).expect("grid run");
    let scenarios = grid.scenarios().expect("expansion");
    assert_eq!(rows.len(), scenarios.len());
    for (i, (row, scenario)) in rows.iter().zip(&scenarios).enumerate() {
        let direct = scenario.execute(i).expect("direct run");
        assert_eq!(row, &direct, "row {i} diverged from a direct run");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every grid point's report matches a direct `Simulator::run` of the
    /// same compiled scenario, whatever the knobs.
    #[test]
    fn grid_point_matches_direct_simulation(
        net_idx in 0usize..2,
        rob in 1u32..6,
        batch in 1u32..3,
        perf_first in proptest::strategy::any::<bool>(),
    ) {
        let network = ["tiny_mlp", "tiny_cnn"][net_idx];
        let mapping = if perf_first {
            MappingPolicy::PerformanceFirst
        } else {
            MappingPolicy::UtilizationFirst
        };
        let arch = ArchConfig::small_test().with_rob(rob);
        let scenario = Scenario::cycle(network, 64, mapping, batch, arch.clone());
        let row = scenario.execute(0).expect("engine run");

        let net = zoo::by_name(network, 64).expect("zoo network");
        let compiled = Compiler::new(&arch)
            .mapping(mapping)
            .batch(batch)
            .compile(&net)
            .expect("compiles");
        let report = Simulator::new(&arch).run(&compiled.program).expect("runs");

        prop_assert_eq!(row.latency_ps, report.latency.as_ps());
        prop_assert_eq!(
            row.latency_per_image_ps,
            (report.latency / batch as u64).as_ps()
        );
        prop_assert_eq!(row.energy_pj, report.energy.total().as_pj());
        prop_assert_eq!(row.instructions, report.instructions);
        prop_assert_eq!(row.events, report.events);
        prop_assert_eq!(row.cores_used, compiled.placement.cores_used);
        prop_assert_eq!(row.node_names.clone(), compiled.node_names.clone());
        for (i, ratio) in row.comm_ratios.iter().enumerate() {
            prop_assert_eq!(*ratio, report.comm_ratio(i as u16));
        }
    }
}

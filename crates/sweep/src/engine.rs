//! The worker pool that fans a campaign out across OS threads and the
//! result rows it collects.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Map, Number, Serialize, Value};

use pimsim_arch::Energy;
use pimsim_baseline::BaselineSimulator;
use pimsim_compiler::Compiler;
use pimsim_core::Simulator;
use pimsim_event::SimTime;
use pimsim_nn::zoo;

use crate::grid::{Scenario, SimulatorKind, SweepGrid};
use crate::SweepError;

/// One evaluated grid point: the scenario plus a summary of its
/// simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Position in the expanded grid (rows are returned in this order).
    pub index: usize,
    /// The scenario that produced this row.
    pub scenario: Scenario,
    /// End-to-end latency in picoseconds (exact).
    pub latency_ps: u64,
    /// Latency per inference (latency / batch), picoseconds.
    pub latency_per_image_ps: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Dynamic instruction count (0 for the behaviour-level baseline).
    pub instructions: u64,
    /// Kernel events processed (0 for the behaviour-level baseline).
    pub events: u64,
    /// Cores with work assigned (0 for the behaviour-level baseline).
    pub cores_used: usize,
    /// Network node (layer) names, in node order.
    pub node_names: Vec<String>,
    /// Communication-latency ratio per node, aligned with `node_names`.
    pub comm_ratios: Vec<f64>,
}

impl SweepRow {
    /// End-to-end latency.
    pub fn latency(&self) -> SimTime {
        SimTime::from_ps(self.latency_ps)
    }

    /// Latency per inference.
    pub fn latency_per_image(&self) -> SimTime {
        SimTime::from_ps(self.latency_per_image_ps)
    }

    /// Total energy.
    pub fn energy(&self) -> Energy {
        Energy::from_pj(self.energy_pj)
    }

    /// The communication ratio of the node at `index`, 0.0 when absent.
    pub fn comm_ratio(&self, index: usize) -> f64 {
        self.comm_ratios.get(index).copied().unwrap_or(0.0)
    }
}

impl Serialize for SweepRow {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("index", Value::Number(Number::from_u64(self.index as u64)));
        map.insert("scenario", self.scenario.to_value());
        map.insert(
            "latency_ps",
            Value::Number(Number::from_u64(self.latency_ps)),
        );
        map.insert(
            "latency_ns",
            Value::Number(Number::from_f64(self.latency_ps as f64 / 1e3)),
        );
        map.insert(
            "latency_per_image_ns",
            Value::Number(Number::from_f64(self.latency_per_image_ps as f64 / 1e3)),
        );
        map.insert("energy_pj", Value::Number(Number::from_f64(self.energy_pj)));
        map.insert("power_w", Value::Number(Number::from_f64(self.power_w)));
        map.insert(
            "instructions",
            Value::Number(Number::from_u64(self.instructions)),
        );
        map.insert("events", Value::Number(Number::from_u64(self.events)));
        map.insert(
            "cores_used",
            Value::Number(Number::from_u64(self.cores_used as u64)),
        );
        map.insert("node_names", self.node_names.to_value());
        map.insert("comm_ratios", self.comm_ratios.to_value());
        Value::Object(map)
    }
}

impl Scenario {
    /// Compiles and simulates this scenario, single-threaded.
    ///
    /// This is exactly what the worker pool runs per grid point, exposed
    /// so a row can be cross-checked against a direct run.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`SweepError`] when the architecture,
    /// compile, or simulation fails.
    pub fn execute(&self, index: usize) -> Result<SweepRow, SweepError> {
        self.arch.validate()?;
        // The zoo builders panic on degenerate resolutions (a pooling
        // window larger than its input, say); catch that so one bad grid
        // point surfaces as this scenario's error instead of unwinding a
        // worker thread and aborting the whole campaign.
        let net = std::panic::catch_unwind(|| zoo::by_name(&self.network, self.resolution))
            .map_err(|_| {
                SweepError::Config(format!(
                    "network `{}` cannot be built at resolution {}",
                    self.network, self.resolution
                ))
            })?
            .ok_or_else(|| SweepError::UnknownNetwork(self.network.clone()))?;
        match self.simulator {
            SimulatorKind::Cycle => {
                let compiled = Compiler::new(&self.arch)
                    .mapping(self.mapping)
                    .batch(self.batch)
                    .compile(&net)
                    .map_err(|e| SweepError::Compile(format!("{}: {e}", self.display_label())))?;
                let report = Simulator::new(&self.arch)
                    .with_engine(self.engine.engine())
                    .run(&compiled.program)
                    .map_err(|e| SweepError::Sim(format!("{}: {e}", self.display_label())))?;
                let comm_ratios = (0..compiled.node_names.len())
                    .map(|i| report.comm_ratio(i as u16))
                    .collect();
                Ok(SweepRow {
                    index,
                    scenario: self.clone(),
                    latency_ps: report.latency.as_ps(),
                    latency_per_image_ps: (report.latency / self.batch.max(1) as u64).as_ps(),
                    energy_pj: report.energy.total().as_pj(),
                    power_w: report.avg_power_w(),
                    instructions: report.instructions,
                    events: report.events,
                    cores_used: compiled.placement.cores_used,
                    node_names: compiled.node_names.clone(),
                    comm_ratios,
                })
            }
            SimulatorKind::Baseline => {
                let report = BaselineSimulator::new(&self.arch)
                    .run(&net)
                    .map_err(|e| SweepError::Sim(format!("{}: {e}", self.display_label())))?;
                Ok(SweepRow {
                    index,
                    scenario: self.clone(),
                    latency_ps: report.latency.as_ps(),
                    latency_per_image_ps: report.latency.as_ps(),
                    energy_pj: report.energy.as_pj(),
                    power_w: report.avg_power_w(),
                    instructions: 0,
                    events: 0,
                    cores_used: 0,
                    node_names: report.per_layer.iter().map(|l| l.name.clone()).collect(),
                    comm_ratios: report.per_layer.iter().map(|l| l.comm_ratio()).collect(),
                })
            }
        }
    }
}

/// The default worker-thread count for a campaign: every core the host
/// offers. The campaign output is deterministic regardless of the count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Expands `grid` and runs every scenario on a pool of `threads` OS
/// threads. Equivalent to `run_scenarios(grid.scenarios()?, threads)`.
///
/// # Errors
///
/// Returns the expansion error, or the failing scenario's error with the
/// smallest grid index (deterministic regardless of thread interleaving).
pub fn run_grid(grid: &SweepGrid, threads: usize) -> Result<Vec<SweepRow>, SweepError> {
    run_scenarios(grid.scenarios()?, threads)
}

/// Runs an explicit scenario list on a pool of `threads` OS threads.
///
/// Workers pull scenarios off a shared cursor, so the pool load-balances
/// regardless of per-scenario cost; each result lands in its scenario's
/// slot, so the returned rows are ordered by scenario index and the
/// campaign output is independent of thread interleaving.
///
/// # Errors
///
/// Returns [`SweepError::EmptyGrid`] for an empty list; otherwise the
/// error of the failing scenario with the smallest index, if any. On a
/// failure the pool cancels scenarios *above* the failed index (so a big
/// campaign reports its error promptly instead of first finishing
/// everything) while still running everything below it — which is what
/// keeps the smallest-failing-index guarantee deterministic.
pub fn run_scenarios(
    scenarios: Vec<Scenario>,
    threads: usize,
) -> Result<Vec<SweepRow>, SweepError> {
    if scenarios.is_empty() {
        return Err(SweepError::EmptyGrid);
    }
    let n = scenarios.len();
    let workers = threads.clamp(1, n);
    let cursor = AtomicUsize::new(0);
    let first_failed = AtomicUsize::new(usize::MAX);
    let slots: Vec<Mutex<Option<Result<SweepRow, SweepError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if i > first_failed.load(Ordering::Relaxed) {
                    continue;
                }
                let outcome = scenarios[i].execute(i);
                if outcome.is_err() {
                    first_failed.fetch_min(i, Ordering::Relaxed);
                }
                *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
            });
        }
    });

    let mut rows = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("sweep slot poisoned") {
            Some(Ok(row)) => rows.push(row),
            Some(Err(e)) => return Err(e),
            // Only scenarios above an already-reported failure are
            // skipped, and the failing slot is reached first.
            None => unreachable!("skipped slot below the first failure"),
        }
    }
    Ok(rows)
}

/// Renders campaign results as pretty JSON: `{"points": N, "rows": [...]}`.
///
/// The rendering is fully determined by the rows, so equal campaigns
/// produce byte-identical text whatever thread count computed them.
pub fn results_to_json(rows: &[SweepRow]) -> String {
    let mut map = Map::new();
    map.insert("points", Value::Number(Number::from_u64(rows.len() as u64)));
    map.insert(
        "rows",
        Value::Array(rows.iter().map(Serialize::to_value).collect()),
    );
    serde_json::to_string_pretty(&Value::Object(map)).expect("row serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;
    use pimsim_compiler::MappingPolicy;

    fn tiny_grid() -> SweepGrid {
        let mut grid = SweepGrid::over_networks(["tiny_mlp", "tiny_cnn"]);
        grid.base = Some(ArchConfig::small_test());
        grid.rob_sizes = vec![1, 4];
        grid
    }

    #[test]
    fn rows_come_back_in_grid_order() {
        let rows = run_grid(&tiny_grid(), 3).unwrap();
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.latency_ps > 0);
            assert!(row.energy_pj > 0.0);
        }
        assert_eq!(rows[0].scenario.network, "tiny_mlp");
        assert_eq!(rows[3].scenario.network, "tiny_cnn");
    }

    #[test]
    fn engines_produce_identical_rows() {
        let base = Scenario::cycle(
            "tiny_mlp",
            64,
            MappingPolicy::PerformanceFirst,
            1,
            ArchConfig::small_test(),
        );
        let event = base.clone().execute(0).unwrap();
        let compiled = base
            .with_engine(pimsim_core::EngineKind::Compiled)
            .execute(0)
            .unwrap();
        assert_eq!(event.latency_ps, compiled.latency_ps);
        assert_eq!(event.energy_pj.to_bits(), compiled.energy_pj.to_bits());
        assert_eq!(event.power_w.to_bits(), compiled.power_w.to_bits());
        assert_eq!(event.events, compiled.events);
        assert_eq!(event.instructions, compiled.instructions);
        assert_eq!(event.comm_ratios, compiled.comm_ratios);
    }

    #[test]
    fn baseline_scenarios_run() {
        let row = Scenario::baseline("tiny_mlp", 64, ArchConfig::small_test())
            .execute(0)
            .unwrap();
        assert!(row.latency_ps > 0);
        assert_eq!(row.instructions, 0);
        assert_eq!(row.node_names.len(), row.comm_ratios.len());
        assert!(!row.node_names.is_empty());
    }

    #[test]
    fn degenerate_resolution_is_an_error_not_a_panic() {
        // Regression: the zoo builders panic on impossible resolutions;
        // that must surface as the scenario's error, not abort the pool.
        let s = Scenario::cycle(
            "vgg8",
            1,
            MappingPolicy::PerformanceFirst,
            1,
            ArchConfig::small_test(),
        );
        let err = run_scenarios(vec![s], 2).unwrap_err();
        assert!(
            matches!(err, SweepError::Config(_)),
            "expected a config error, got {err:?}"
        );
    }

    #[test]
    fn errors_surface_deterministically() {
        assert_eq!(
            run_scenarios(Vec::new(), 4).unwrap_err(),
            SweepError::EmptyGrid
        );
        let good = Scenario::cycle(
            "tiny_mlp",
            64,
            MappingPolicy::PerformanceFirst,
            1,
            ArchConfig::small_test(),
        );
        let mut bad_arch = ArchConfig::small_test();
        bad_arch.resources.rob_size = 0;
        let bad = Scenario::cycle("tiny_mlp", 64, MappingPolicy::PerformanceFirst, 1, bad_arch);
        let err = run_scenarios(vec![good, bad.clone(), bad], 2).unwrap_err();
        assert!(matches!(err, SweepError::Arch(_)));
    }

    #[test]
    fn json_rendering_is_stable() {
        let rows = run_grid(&tiny_grid(), 2).unwrap();
        let a = results_to_json(&rows);
        let b = results_to_json(&rows);
        assert_eq!(a, b);
        assert!(a.contains("\"points\": 4"));
        assert!(a.contains("\"network\": \"tiny_cnn\""));
    }
}

#![warn(missing_docs)]

//! Parallel design-space campaign engine.
//!
//! The paper's headline use case is cheap software/hardware design-space
//! evaluation over the ISA boundary; studies like PIMSYN run *thousands*
//! of simulations per campaign. This crate turns such a campaign into a
//! declarative [`SweepGrid`] — network × resolution × mapping policy ×
//! batch × architecture knobs (ROB depth, ADCs per crossbar, SIMD lanes,
//! flit width, routing policy, structure hazard) × simulator kind ×
//! run-loop engine (event / compiled) — expands its cartesian
//! product into [`Scenario`]s, fans them out across OS threads, and
//! collects one [`SweepRow`] per point.
//!
//! Grids can also sweep the *serving* plane: `arrival_rates` and
//! `batch_policies` axes fan each hardware point out across open-loop
//! traffic intensities (see [`ServePoint`]), and the resulting rows carry
//! a [`ServeSummary`] with throughput and tail latency.
//!
//! Results are **deterministic**: rows come back ordered by scenario
//! index, every value is derived from a single-threaded simulation of one
//! scenario, and the JSON rendering is byte-identical regardless of the
//! worker-thread count.
//!
//! ```rust
//! use pimsim_sweep::{run_grid, SweepGrid};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = SweepGrid::from_json(
//!     r#"{
//!         "networks": ["tiny_mlp"],
//!         "rob_sizes": [1, 4],
//!         "base": null
//!     }"#,
//! )?;
//! let mut grid = grid;
//! grid.base = Some(pimsim_arch::ArchConfig::small_test());
//! let rows = run_grid(&grid, 2)?;
//! assert_eq!(rows.len(), 2);
//! assert!(rows[0].latency().as_ns_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

mod engine;
mod grid;

pub use engine::{
    default_threads, results_to_json, run_grid, run_scenarios, ServeSummary, SweepRow,
};
pub use grid::{
    default_resolution, parse_engine, parse_mapping, parse_routing, Scenario, ServePoint,
    SimulatorKind, SweepGrid,
};

use pimsim_arch::ArchError;

/// Errors produced while expanding or running a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The grid expands to zero scenarios (no networks given).
    EmptyGrid,
    /// A network name is not in the zoo.
    UnknownNetwork(String),
    /// A mapping-policy name is not recognized.
    UnknownMapping(String),
    /// A simulator name is not recognized.
    UnknownSimulator(String),
    /// A run-loop engine name is not recognized.
    UnknownEngine(String),
    /// A NoC routing-policy name is not recognized.
    UnknownRouting(String),
    /// A scenario's architecture configuration failed validation.
    Arch(String),
    /// A scenario failed to compile.
    Compile(String),
    /// A scenario failed to simulate.
    Sim(String),
    /// A grid configuration file could not be read or parsed.
    Config(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyGrid => f.write_str("grid expands to zero scenarios"),
            SweepError::UnknownNetwork(n) => write!(f, "unknown network `{n}`"),
            SweepError::UnknownMapping(m) => write!(
                f,
                "unknown mapping policy `{m}` (want performance-first or utilization-first)"
            ),
            SweepError::UnknownSimulator(s) => {
                write!(f, "unknown simulator `{s}` (want cycle or baseline)")
            }
            SweepError::UnknownEngine(e) => {
                write!(f, "unknown engine `{e}` (want event or compiled)")
            }
            SweepError::UnknownRouting(r) => {
                write!(
                    f,
                    "unknown routing policy `{r}` (want xy, yx, xy-yx or adaptive)"
                )
            }
            SweepError::Arch(e) => write!(f, "invalid architecture: {e}"),
            SweepError::Compile(e) => write!(f, "compile failed: {e}"),
            SweepError::Sim(e) => write!(f, "simulation failed: {e}"),
            SweepError::Config(e) => write!(f, "bad sweep config: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ArchError> for SweepError {
    fn from(e: ArchError) -> Self {
        SweepError::Arch(e.to_string())
    }
}

//! Declarative scenario grids and their expansion into scenarios.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Map, Number, Serialize, Value};

use pimsim_arch::{ArchConfig, RoutingPolicy};
use pimsim_compiler::MappingPolicy;
use pimsim_core::EngineKind;
use pimsim_event::SimTime;
use pimsim_nn::zoo;
use pimsim_serve::BatchPolicy;

use crate::SweepError;

/// Which simulator evaluates a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorKind {
    /// The cycle-accurate, event-driven simulator.
    Cycle,
    /// The MNSIM2.0-like behaviour-level baseline.
    Baseline,
}

impl fmt::Display for SimulatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorKind::Cycle => f.write_str("cycle"),
            SimulatorKind::Baseline => f.write_str("baseline"),
        }
    }
}

impl std::str::FromStr for SimulatorKind {
    type Err = SweepError;

    fn from_str(s: &str) -> Result<Self, SweepError> {
        match s {
            "cycle" | "cycle-accurate" => Ok(SimulatorKind::Cycle),
            "baseline" | "mnsim" => Ok(SimulatorKind::Baseline),
            other => Err(SweepError::UnknownSimulator(other.to_string())),
        }
    }
}

/// Parses a mapping-policy name as used in configuration files and on the
/// command line.
///
/// # Errors
///
/// Returns [`SweepError::UnknownMapping`] for anything but
/// `performance-first` / `utilization-first`.
pub fn parse_mapping(name: &str) -> Result<MappingPolicy, SweepError> {
    match name {
        "performance-first" => Ok(MappingPolicy::PerformanceFirst),
        "utilization-first" => Ok(MappingPolicy::UtilizationFirst),
        other => Err(SweepError::UnknownMapping(other.to_string())),
    }
}

/// Parses a run-loop engine name (`event` / `compiled`) as used in
/// configuration files and on the command line.
///
/// # Errors
///
/// Returns [`SweepError::UnknownEngine`] for anything else.
pub fn parse_engine(name: &str) -> Result<EngineKind, SweepError> {
    name.parse()
        .map_err(|_| SweepError::UnknownEngine(name.to_string()))
}

/// Parses a NoC routing-policy name (`xy` / `yx` / `xy-yx` / `adaptive`)
/// as used in configuration files and on the command line.
///
/// # Errors
///
/// Returns [`SweepError::UnknownRouting`] for anything else.
pub fn parse_routing(name: &str) -> Result<RoutingPolicy, SweepError> {
    name.parse()
        .map_err(|_| SweepError::UnknownRouting(name.to_string()))
}

/// The default input resolution for a zoo network: CIFAR-scale for the
/// VGGs, 64×64 otherwise. The single source of this convention — the CLI
/// and the grid expansion both use it.
pub fn default_resolution(network: &str) -> u32 {
    if network.starts_with("vgg") {
        32
    } else {
        64
    }
}

/// The serving-mode coordinates of a grid point: present when the grid
/// has an `arrival_rates` axis, absent for plain one-shot simulation
/// points (and always absent on behaviour-level baseline points, which
/// have no open-loop front-end to drive).
#[derive(Debug, Clone, PartialEq)]
pub struct ServePoint {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Batch formation policy of the queueing front-end.
    pub policy: BatchPolicy,
    /// Arrival horizon.
    pub duration: SimTime,
    /// RNG seed of the request stream.
    pub seed: u64,
}

/// One fully resolved grid point: everything needed to compile and
/// simulate, self-contained (the architecture already has all knobs
/// applied).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Zoo network name.
    pub network: String,
    /// Input resolution (height = width).
    pub resolution: u32,
    /// Mapping policy for the compiler.
    pub mapping: MappingPolicy,
    /// Back-to-back inferences compiled together.
    pub batch: u32,
    /// Which simulator evaluates the point.
    pub simulator: SimulatorKind,
    /// Which run-loop engine drives the cycle-accurate simulator
    /// (ignored by the behaviour-level baseline).
    pub engine: EngineKind,
    /// Optional human label (used by campaign front ends); empty means
    /// "derive one from the fields".
    pub label: String,
    /// Open-loop serving coordinates; `None` = one-shot simulation.
    pub serve: Option<ServePoint>,
    /// The complete architecture for this point.
    pub arch: ArchConfig,
}

impl Scenario {
    /// A cycle-accurate scenario.
    pub fn cycle(
        network: impl Into<String>,
        resolution: u32,
        mapping: MappingPolicy,
        batch: u32,
        arch: ArchConfig,
    ) -> Scenario {
        Scenario {
            network: network.into(),
            resolution,
            mapping,
            batch,
            simulator: SimulatorKind::Cycle,
            engine: EngineKind::default(),
            label: String::new(),
            serve: None,
            arch,
        }
    }

    /// A behaviour-level baseline scenario (mapping and batch do not
    /// apply; they are pinned to `performance-first` / 1).
    pub fn baseline(network: impl Into<String>, resolution: u32, arch: ArchConfig) -> Scenario {
        Scenario {
            network: network.into(),
            resolution,
            mapping: MappingPolicy::PerformanceFirst,
            batch: 1,
            simulator: SimulatorKind::Baseline,
            engine: EngineKind::default(),
            label: String::new(),
            serve: None,
            arch,
        }
    }

    /// Returns the scenario tagged with a human-readable label.
    pub fn with_label(mut self, label: impl Into<String>) -> Scenario {
        self.label = label.into();
        self
    }

    /// Returns the scenario driven by `engine` (cycle simulator only;
    /// the baseline has no run loop to swap).
    pub fn with_engine(mut self, engine: EngineKind) -> Scenario {
        self.engine = engine;
        self
    }

    /// Returns the scenario evaluated in open-loop serving mode at the
    /// given coordinates (cycle simulator only).
    pub fn with_serve(mut self, serve: ServePoint) -> Scenario {
        self.serve = Some(serve);
        self
    }

    /// The label to display: the explicit one, or a derived
    /// `network/res mapping xN rob=R` summary (plus the routing policy,
    /// virtual-channel count and router pipeline depth when they differ
    /// from the paper defaults).
    pub fn display_label(&self) -> String {
        if !self.label.is_empty() {
            return self.label.clone();
        }
        let routing = if self.arch.noc.routing == RoutingPolicy::default() {
            String::new()
        } else {
            format!(" {}", self.arch.noc.routing)
        };
        let vcs = if self.arch.noc.virtual_channels == 1 {
            String::new()
        } else {
            format!(" vc={}", self.arch.noc.virtual_channels)
        };
        let depth = if self.arch.noc.router_pipeline_depth == 1 {
            String::new()
        } else {
            format!(" depth={}", self.arch.noc.router_pipeline_depth)
        };
        let engine = if self.engine == EngineKind::default() {
            String::new()
        } else {
            format!(" engine={}", self.engine)
        };
        if let Some(sp) = &self.serve {
            return format!(
                "{}/{} {} serve rate={} batch={} rob={}{routing}{vcs}{depth}{engine}",
                self.network,
                self.resolution,
                self.mapping,
                sp.rate_rps,
                sp.policy,
                self.arch.resources.rob_size,
            );
        }
        format!(
            "{}/{} {} x{} rob={}{routing}{vcs}{depth}{engine} {}",
            self.network,
            self.resolution,
            self.mapping,
            self.batch,
            self.arch.resources.rob_size,
            self.simulator,
        )
    }
}

// Scenarios are serialized as a knob summary (not the full architecture)
// so campaign outputs stay readable; the grid's `base` is the place a
// custom full configuration lives.
impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("network", Value::String(self.network.clone()));
        map.insert(
            "resolution",
            Value::Number(Number::from_u64(self.resolution as u64)),
        );
        map.insert("mapping", Value::String(self.mapping.to_string()));
        map.insert("batch", Value::Number(Number::from_u64(self.batch as u64)));
        map.insert("simulator", Value::String(self.simulator.to_string()));
        map.insert("label", Value::String(self.label.clone()));
        let r = &self.arch.resources;
        map.insert(
            "rob_size",
            Value::Number(Number::from_u64(r.rob_size as u64)),
        );
        map.insert(
            "adcs_per_xbar",
            Value::Number(Number::from_u64(r.adcs_per_xbar as u64)),
        );
        map.insert(
            "vector_lanes",
            Value::Number(Number::from_u64(r.vector_lanes as u64)),
        );
        map.insert(
            "flit_bytes",
            Value::Number(Number::from_u64(self.arch.noc.flit_bytes as u64)),
        );
        // The router-model knobs are serialized only when swept away from
        // their paper defaults, so campaign outputs from before the knobs
        // existed stay byte-identical.
        if self.arch.noc.routing != RoutingPolicy::default() {
            map.insert("routing", Value::String(self.arch.noc.routing.to_string()));
        }
        if self.arch.noc.virtual_channels != 1 {
            map.insert(
                "virtual_channels",
                Value::Number(Number::from_u64(self.arch.noc.virtual_channels as u64)),
            );
        }
        if self.arch.noc.router_pipeline_depth != 1 {
            map.insert(
                "router_pipeline_depth",
                Value::Number(Number::from_u64(self.arch.noc.router_pipeline_depth as u64)),
            );
        }
        if self.engine != EngineKind::default() {
            map.insert("engine", Value::String(self.engine.to_string()));
        }
        // Serving coordinates appear only on serving points, so one-shot
        // campaign output from before the serving layer existed stays
        // byte-identical.
        if let Some(sp) = &self.serve {
            map.insert(
                "arrival_rate_rps",
                Value::Number(Number::from_f64(sp.rate_rps)),
            );
            map.insert("batch_policy", Value::String(sp.policy.to_string()));
            map.insert(
                "serve_duration_ns",
                Value::Number(Number::from_f64(sp.duration.as_ns_f64())),
            );
            map.insert("serve_seed", Value::Number(Number::from_u64(sp.seed)));
        }
        map.insert(
            "structure_hazard",
            Value::Bool(self.arch.sim.structure_hazard),
        );
        Value::Object(map)
    }
}

/// A declarative campaign: the cartesian product of every non-empty axis.
///
/// Empty axes inherit a single value from `base` (or the paper chip when
/// `base` is absent); `resolutions` left empty uses each network's
/// conventional resolution. Unknown fields in a configuration file are
/// rejected.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepGrid {
    /// Zoo networks to sweep (required, at least one).
    #[serde(default)]
    pub networks: Vec<String>,
    /// Input resolutions; empty = each network's default.
    #[serde(default)]
    pub resolutions: Vec<u32>,
    /// Mapping policies (`performance-first` / `utilization-first`);
    /// empty = performance-first.
    #[serde(default)]
    pub mappings: Vec<String>,
    /// Batch sizes; empty = 1.
    #[serde(default)]
    pub batches: Vec<u32>,
    /// Re-order buffer depths; empty = the base architecture's.
    #[serde(default)]
    pub rob_sizes: Vec<u32>,
    /// ADCs per crossbar; empty = the base architecture's.
    #[serde(default)]
    pub adcs_per_xbar: Vec<u32>,
    /// Vector SIMD lane counts; empty = the base architecture's.
    #[serde(default)]
    pub vector_lanes: Vec<u32>,
    /// NoC flit widths in bytes; empty = the base architecture's.
    #[serde(default)]
    pub flit_bytes: Vec<u32>,
    /// NoC routing policies (`xy` / `yx` / `xy-yx` / `adaptive`); empty =
    /// the base architecture's.
    #[serde(default)]
    pub routings: Vec<String>,
    /// Virtual channels per rendezvous channel; empty = the base
    /// architecture's.
    #[serde(default)]
    pub vcs: Vec<u32>,
    /// Router pipeline depths (stages per hop); empty = the base
    /// architecture's.
    #[serde(default)]
    pub router_depths: Vec<u32>,
    /// Structure-hazard settings (ablation axis); empty = the base
    /// architecture's.
    #[serde(default)]
    pub structure_hazard: Vec<bool>,
    /// Simulators (`cycle` / `baseline`); empty = cycle.
    #[serde(default)]
    pub simulators: Vec<String>,
    /// Run-loop engines (`event` / `compiled`); empty = event. The
    /// behaviour-level baseline has no run loop, so baseline points
    /// collapse this axis.
    #[serde(default)]
    pub engines: Vec<String>,
    /// Open-loop arrival rates (requests/second). Non-empty switches
    /// cycle points into serving mode: each point runs the queueing
    /// front-end at one rate instead of one closed-program simulation.
    /// The `batches` axis collapses in serving mode (batch formation is
    /// the batch policy's job), as do baseline points (no front-end).
    #[serde(default)]
    pub arrival_rates: Vec<f64>,
    /// Batch policies (`N` or `N/Tunit`, e.g. `4/50us`) to cross with
    /// `arrival_rates`; empty = `4/50us`. Only valid alongside
    /// `arrival_rates`.
    #[serde(default)]
    pub batch_policies: Vec<String>,
    /// Serving arrival horizon (`10ms`, `500us`, ...); absent = 10ms.
    /// Only valid alongside `arrival_rates`.
    #[serde(default)]
    pub serve_duration: Option<String>,
    /// Serving request-stream seed; absent = 42. Only valid alongside
    /// `arrival_rates`.
    #[serde(default)]
    pub serve_seed: Option<u64>,
    /// Base architecture every knob is applied to; absent = the paper
    /// chip.
    #[serde(default)]
    pub base: Option<ArchConfig>,
}

impl SweepGrid {
    /// A grid over `networks` with every other axis inherited.
    pub fn over_networks<S: Into<String>>(networks: impl IntoIterator<Item = S>) -> SweepGrid {
        SweepGrid {
            networks: networks.into_iter().map(Into::into).collect(),
            ..SweepGrid::default()
        }
    }

    /// Parses a grid from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Config`] on malformed JSON or unknown fields.
    pub fn from_json(text: &str) -> Result<SweepGrid, SweepError> {
        serde_json::from_str(text).map_err(|e| SweepError::Config(e.to_string()))
    }

    /// Loads a grid configuration file.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Config`] when the file cannot be read or
    /// parsed.
    pub fn from_file(path: impl AsRef<Path>) -> Result<SweepGrid, SweepError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SweepError::Config(format!("{}: {e}", path.display())))?;
        SweepGrid::from_json(&text)
    }

    /// Serializes the grid to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("grid serialization cannot fail")
    }

    /// The base architecture the knob axes are applied to.
    pub fn base_arch(&self) -> ArchConfig {
        self.base.clone().unwrap_or_else(ArchConfig::paper_default)
    }

    /// Number of grid points the full cartesian product would expand to —
    /// an upper bound on [`SweepGrid::scenarios`]' length, since baseline
    /// points collapse the axes the behaviour-level model ignores.
    pub fn points(&self) -> usize {
        fn axis(len: usize) -> usize {
            len.max(1)
        }
        axis(self.networks.len())
            * axis(self.resolutions.len())
            * axis(self.mappings.len())
            * axis(self.batches.len())
            * axis(self.simulators.len())
            * axis(self.engines.len())
            * axis(self.rob_sizes.len())
            * axis(self.adcs_per_xbar.len())
            * axis(self.vector_lanes.len())
            * axis(self.flit_bytes.len())
            * axis(self.routings.len())
            * axis(self.vcs.len())
            * axis(self.router_depths.len())
            * axis(self.structure_hazard.len())
            * axis(self.arrival_rates.len())
            * axis(self.batch_policies.len())
    }

    /// Resolves the serving axes into concrete [`ServePoint`]s (rate
    /// outermost, policy innermost), or `None` when the grid has no
    /// `arrival_rates` axis.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Config`] when serving knobs are given
    /// without `arrival_rates`, a rate is not positive, a batch policy or
    /// the duration does not parse.
    fn serve_points(&self) -> Result<Option<Vec<ServePoint>>, SweepError> {
        if self.arrival_rates.is_empty() {
            if !self.batch_policies.is_empty()
                || self.serve_duration.is_some()
                || self.serve_seed.is_some()
            {
                return Err(SweepError::Config(
                    "batch_policies / serve_duration / serve_seed need an arrival_rates axis"
                        .to_string(),
                ));
            }
            return Ok(None);
        }
        for &rate in &self.arrival_rates {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(SweepError::Config(format!(
                    "arrival rate must be positive, got {rate}"
                )));
            }
        }
        let policies: Vec<BatchPolicy> = if self.batch_policies.is_empty() {
            vec![BatchPolicy::default()]
        } else {
            self.batch_policies
                .iter()
                .map(|p| p.parse().map_err(|e| SweepError::Config(format!("{e}"))))
                .collect::<Result<_, _>>()?
        };
        let duration = match &self.serve_duration {
            Some(text) => pimsim_serve::parse_duration(text).map_err(SweepError::Config)?,
            None => SimTime::from_ms(10),
        };
        let seed = self.serve_seed.unwrap_or(42);
        let mut points = Vec::with_capacity(self.arrival_rates.len() * policies.len());
        for &rate_rps in &self.arrival_rates {
            for &policy in &policies {
                points.push(ServePoint {
                    rate_rps,
                    policy,
                    duration,
                    seed,
                });
            }
        }
        Ok(Some(points))
    }

    /// Expands the cartesian product into concrete scenarios, in a fixed
    /// axis order (networks outermost, then resolution, mapping, batch,
    /// simulator, ROB, ADCs, lanes, flit width, routing, virtual
    /// channels, router depth, hazard, run-loop engine, and — on serving
    /// grids — arrival rate then batch policy innermost).
    ///
    /// A non-empty `arrival_rates` axis turns cycle points into open-loop
    /// serving points (see [`ServePoint`]); the `batches` axis collapses
    /// there, since batch formation is the batch policy's job.
    ///
    /// Baseline-simulator points ignore the mapping, batch, ROB, routing,
    /// virtual-channel, router-depth, structure-hazard and engine axes (the
    /// behaviour-level model has none of them — its NoC cost is a
    /// hop-count closed form, identical for every minimal routing order
    /// and blind to flow control and router pipelining): one baseline
    /// point is emitted per remaining axis combination — pinned to
    /// performance-first, batch 1 and the first ROB / routing / VC /
    /// depth / hazard axis values — instead of duplicating identical
    /// simulations.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::EmptyGrid`] when no networks are given,
    /// [`SweepError::UnknownNetwork`] / [`SweepError::UnknownMapping`] /
    /// [`SweepError::UnknownSimulator`] / [`SweepError::UnknownRouting`]
    /// for bad axis values, [`SweepError::Config`] for bad serving axes,
    /// and [`SweepError::Arch`] when the base configuration is invalid.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, SweepError> {
        if self.networks.is_empty() {
            return Err(SweepError::EmptyGrid);
        }
        let base = self.base_arch();
        base.validate()?;
        let mappings = if self.mappings.is_empty() {
            vec![MappingPolicy::PerformanceFirst]
        } else {
            self.mappings
                .iter()
                .map(|m| parse_mapping(m))
                .collect::<Result<Vec<_>, _>>()?
        };
        let simulators = if self.simulators.is_empty() {
            vec![SimulatorKind::Cycle]
        } else {
            self.simulators
                .iter()
                .map(|s| s.parse())
                .collect::<Result<Vec<_>, _>>()?
        };
        let engines = if self.engines.is_empty() {
            vec![EngineKind::default()]
        } else {
            self.engines
                .iter()
                .map(|e| parse_engine(e))
                .collect::<Result<Vec<_>, _>>()?
        };
        let serve_points = self.serve_points()?;
        let batches = non_empty(&self.batches, 1);
        let robs = non_empty(&self.rob_sizes, base.resources.rob_size);
        let adcs = non_empty(&self.adcs_per_xbar, base.resources.adcs_per_xbar);
        let lanes = non_empty(&self.vector_lanes, base.resources.vector_lanes);
        let flits = non_empty(&self.flit_bytes, base.noc.flit_bytes);
        let routings = if self.routings.is_empty() {
            vec![base.noc.routing]
        } else {
            self.routings
                .iter()
                .map(|r| parse_routing(r))
                .collect::<Result<Vec<_>, _>>()?
        };
        let vc_counts = non_empty(&self.vcs, base.noc.virtual_channels);
        let depths = non_empty(&self.router_depths, base.noc.router_pipeline_depth);
        let hazards = non_empty(&self.structure_hazard, base.sim.structure_hazard);

        let mut out = Vec::with_capacity(self.points());
        for network in &self.networks {
            // Validate the name once per network, at expansion time.
            if !zoo::NAMES.contains(&network.as_str()) {
                return Err(SweepError::UnknownNetwork(network.clone()));
            }
            let resolutions = non_empty(&self.resolutions, default_resolution(network));
            for &resolution in &resolutions {
                // Probe each (network, resolution) pair up front: the zoo
                // builders panic on degenerate resolutions (a pooling
                // window larger than its input, say), and catching that
                // here turns it into a clean expansion error instead of a
                // per-worker unwind mid-campaign.
                std::panic::catch_unwind(|| zoo::by_name(network, resolution)).map_err(|_| {
                    SweepError::Config(format!(
                        "network `{network}` cannot be built at resolution {resolution}"
                    ))
                })?;
                for &mapping in &mappings {
                    for &batch in &batches {
                        for &simulator in &simulators {
                            for &rob in &robs {
                                for &adc in &adcs {
                                    for &lane in &lanes {
                                        for &flit in &flits {
                                            for &routing in &routings {
                                                for &vc in &vc_counts {
                                                    for &depth in &depths {
                                                        for &hazard in &hazards {
                                                            // The behaviour-level baseline has no
                                                            // mapping, batch, ROB, routing, VCs,
                                                            // router pipeline, or structure hazard:
                                                            // those axes would only duplicate
                                                            // identical simulations (and a
                                                            // misleading per-image latency), so
                                                            // baseline points collapse them to one
                                                            // representative each —
                                                            // performance-first, batch 1, and the
                                                            // first ROB / routing / VC / depth /
                                                            // hazard axis values.
                                                            let baseline = simulator
                                                                == SimulatorKind::Baseline;
                                                            if baseline
                                                                && (mapping != mappings[0]
                                                                    || batch != batches[0]
                                                                    || rob != robs[0]
                                                                    || routing != routings[0]
                                                                    || vc != vc_counts[0]
                                                                    || depth != depths[0]
                                                                    || hazard != hazards[0])
                                                            {
                                                                continue;
                                                            }
                                                            // In serving mode batch formation is
                                                            // the batch policy's job, so the
                                                            // compile-batch axis collapses for
                                                            // cycle points too.
                                                            let serving =
                                                                !baseline && serve_points.is_some();
                                                            if serving && batch != batches[0] {
                                                                continue;
                                                            }
                                                            let (mapping, batch) = if baseline {
                                                                (MappingPolicy::PerformanceFirst, 1)
                                                            } else if serving {
                                                                (mapping, 1)
                                                            } else {
                                                                (mapping, batch.max(1))
                                                            };
                                                            let mut arch = base.clone();
                                                            arch.resources.rob_size = rob;
                                                            arch.resources.adcs_per_xbar = adc;
                                                            arch.resources.vector_lanes = lane;
                                                            arch.noc.flit_bytes = flit;
                                                            arch.noc.routing = routing;
                                                            arch.noc.virtual_channels = vc;
                                                            arch.noc.router_pipeline_depth = depth;
                                                            arch.sim.structure_hazard = hazard;
                                                            // The baseline has no run loop to
                                                            // swap, so the engine axis collapses
                                                            // to one default-engine point; cycle
                                                            // points fan out per engine
                                                            // (innermost axis).
                                                            let point_engines = if baseline {
                                                                &[EngineKind::Event][..]
                                                            } else {
                                                                &engines[..]
                                                            };
                                                            for &engine in point_engines {
                                                                let template = Scenario {
                                                                    network: network.clone(),
                                                                    resolution,
                                                                    mapping,
                                                                    batch,
                                                                    simulator,
                                                                    engine,
                                                                    label: String::new(),
                                                                    serve: None,
                                                                    arch: arch.clone(),
                                                                };
                                                                match &serve_points {
                                                                    // Serving fan-out, rate
                                                                    // outermost then policy —
                                                                    // the innermost axes of a
                                                                    // serving campaign.
                                                                    Some(points) if !baseline => {
                                                                        for sp in points {
                                                                            out.push(
                                                                                template
                                                                                    .clone()
                                                                                    .with_serve(
                                                                                        sp.clone(),
                                                                                    ),
                                                                            );
                                                                        }
                                                                    }
                                                                    _ => out.push(template),
                                                                }
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

fn non_empty<T: Copy>(axis: &[T], default: T) -> Vec<T> {
    if axis.is_empty() {
        vec![default]
    } else {
        axis.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_counts_and_order() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp", "tiny_cnn"]);
        grid.base = Some(ArchConfig::small_test());
        grid.rob_sizes = vec![1, 4];
        grid.mappings = vec![
            "utilization-first".to_string(),
            "performance-first".to_string(),
        ];
        assert_eq!(grid.points(), 8);
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 8);
        // Networks outermost, ROB innermost.
        assert_eq!(scenarios[0].network, "tiny_mlp");
        assert_eq!(scenarios[0].mapping, MappingPolicy::UtilizationFirst);
        assert_eq!(scenarios[0].arch.resources.rob_size, 1);
        assert_eq!(scenarios[1].arch.resources.rob_size, 4);
        assert_eq!(scenarios[2].mapping, MappingPolicy::PerformanceFirst);
        assert_eq!(scenarios[4].network, "tiny_cnn");
    }

    #[test]
    fn empty_axes_inherit_from_base() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.arch, ArchConfig::small_test());
        assert_eq!(s.batch, 1);
        assert_eq!(s.simulator, SimulatorKind::Cycle);
        assert_eq!(s.resolution, 64);
        assert_eq!(default_resolution("vgg8"), 32);
    }

    #[test]
    fn baseline_points_collapse_ignored_axes() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.mappings = vec![
            "utilization-first".to_string(),
            "performance-first".to_string(),
        ];
        grid.batches = vec![1, 4];
        grid.rob_sizes = vec![1, 4];
        grid.structure_hazard = vec![true, false];
        grid.adcs_per_xbar = vec![1, 2];
        grid.simulators = vec!["cycle".to_string(), "baseline".to_string()];
        let scenarios = grid.scenarios().unwrap();
        // Cycle: 2 mappings x 2 batches x 2 robs x 2 hazards x 2 adcs = 32.
        // Baseline ignores mapping/batch/rob/hazard but NOT adcs: 2 points.
        assert_eq!(scenarios.len(), 34);
        assert!(grid.points() >= scenarios.len());
        let baselines: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Baseline)
            .collect();
        assert_eq!(baselines.len(), 2);
        for b in &baselines {
            assert_eq!(b.batch, 1);
            assert_eq!(b.mapping, MappingPolicy::PerformanceFirst);
            assert_eq!(b.arch.resources.rob_size, 1);
            assert!(b.arch.sim.structure_hazard);
        }
        assert_ne!(
            baselines[0].arch.resources.adcs_per_xbar,
            baselines[1].arch.resources.adcs_per_xbar
        );
    }

    #[test]
    fn routing_axis_expands_and_collapses_for_baseline() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.routings = vec!["xy".into(), "yx".into(), "xy-yx".into()];
        grid.simulators = vec!["cycle".into(), "baseline".into()];
        assert_eq!(grid.points(), 6);
        let scenarios = grid.scenarios().unwrap();
        // Cycle: one per routing. Baseline: the closed-form NoC cost is
        // routing-independent, so the axis collapses to one point.
        assert_eq!(scenarios.len(), 4);
        let cycle: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Cycle)
            .map(|s| s.arch.noc.routing)
            .collect();
        assert_eq!(
            cycle,
            vec![
                RoutingPolicy::Xy,
                RoutingPolicy::Yx,
                RoutingPolicy::XyYxAlternate
            ]
        );
        let baseline: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Baseline)
            .collect();
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].arch.noc.routing, RoutingPolicy::Xy);
        // Labels and serialization surface the knob only when non-default.
        assert!(!scenarios[0].display_label().contains("xy"));
        assert!(scenarios[1].display_label().contains(" yx "));
        assert_eq!(scenarios[0].to_value().get("routing"), None);
        assert_eq!(
            scenarios[2].to_value()["routing"],
            Value::String("xy-yx".into())
        );
    }

    #[test]
    fn router_model_axes_expand_and_collapse_for_baseline() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.vcs = vec![1, 2];
        grid.router_depths = vec![1, 3];
        grid.simulators = vec!["cycle".into(), "baseline".into()];
        assert_eq!(grid.points(), 8);
        let scenarios = grid.scenarios().unwrap();
        // Cycle: the 2x2 product. Baseline: blind to flow control and
        // router pipelining, so both axes collapse to one point.
        assert_eq!(scenarios.len(), 5);
        let cycle: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Cycle)
            .map(|s| {
                (
                    s.arch.noc.virtual_channels,
                    s.arch.noc.router_pipeline_depth,
                )
            })
            .collect();
        assert_eq!(cycle, vec![(1, 1), (1, 3), (2, 1), (2, 3)]);
        let baseline: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Baseline)
            .collect();
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].arch.noc.virtual_channels, 1);
        assert_eq!(baseline[0].arch.noc.router_pipeline_depth, 1);
        // Labels and serialization surface the knobs only when
        // non-default, so pre-knob campaign output stays byte-identical.
        assert!(!scenarios[0].display_label().contains("vc="));
        assert!(!scenarios[0].display_label().contains("depth="));
        assert!(scenarios[3].display_label().contains(" vc=2 depth=3 "));
        assert_eq!(scenarios[0].to_value().get("virtual_channels"), None);
        assert_eq!(scenarios[0].to_value().get("router_pipeline_depth"), None);
        assert_eq!(
            scenarios[2].to_value()["virtual_channels"],
            Value::Number(Number::from_u64(2))
        );
        assert_eq!(
            scenarios[1].to_value()["router_pipeline_depth"],
            Value::Number(Number::from_u64(3))
        );
    }

    #[test]
    fn engine_axis_expands_and_collapses_for_baseline() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.engines = vec!["event".into(), "compiled".into()];
        grid.simulators = vec!["cycle".into(), "baseline".into()];
        assert_eq!(grid.points(), 4);
        let scenarios = grid.scenarios().unwrap();
        // Cycle: one per engine. Baseline: no run loop to swap, so the
        // axis collapses to one default-engine point.
        assert_eq!(scenarios.len(), 3);
        let cycle: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Cycle)
            .map(|s| s.engine)
            .collect();
        assert_eq!(cycle, vec![EngineKind::Event, EngineKind::Compiled]);
        let baseline: Vec<_> = scenarios
            .iter()
            .filter(|s| s.simulator == SimulatorKind::Baseline)
            .collect();
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].engine, EngineKind::Event);
        // Labels and serialization surface the engine only when
        // non-default, so default campaign output stays byte-identical.
        assert!(!scenarios[0].display_label().contains("engine="));
        assert!(scenarios[1].display_label().contains(" engine=compiled "));
        assert_eq!(scenarios[0].to_value().get("engine"), None);
        assert_eq!(
            scenarios[1].to_value()["engine"],
            Value::String("compiled".into())
        );
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.engines = vec!["jit".into()];
        let err = grid.scenarios().unwrap_err();
        assert!(matches!(err, SweepError::UnknownEngine(_)));
        assert_eq!(
            err.to_string(),
            "unknown engine `jit` (want event or compiled)"
        );
        assert_eq!(parse_engine("compiled").unwrap(), EngineKind::Compiled);
    }

    #[test]
    fn unknown_routing_is_rejected() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.routings = vec!["zigzag".into()];
        assert!(matches!(
            grid.scenarios().unwrap_err(),
            SweepError::UnknownRouting(_)
        ));
        assert_eq!(parse_routing("yx").unwrap(), RoutingPolicy::Yx);
    }

    #[test]
    fn bad_axis_values_are_rejected() {
        assert_eq!(
            SweepGrid::default().scenarios().unwrap_err(),
            SweepError::EmptyGrid
        );
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.mappings = vec!["speed-first".into()];
        assert!(matches!(
            grid.scenarios().unwrap_err(),
            SweepError::UnknownMapping(_)
        ));
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.simulators = vec!["spice".into()];
        assert!(matches!(
            grid.scenarios().unwrap_err(),
            SweepError::UnknownSimulator(_)
        ));
        let grid = SweepGrid::over_networks(["nonexistent_net"]);
        assert!(matches!(
            grid.scenarios().unwrap_err(),
            SweepError::UnknownNetwork(_)
        ));
    }

    #[test]
    fn grid_json_roundtrip_and_unknown_fields() {
        let mut grid = SweepGrid::over_networks(["vgg8"]);
        grid.rob_sizes = vec![1, 8];
        grid.simulators = vec!["cycle".into(), "baseline".into()];
        let text = grid.to_json();
        assert_eq!(SweepGrid::from_json(&text).unwrap(), grid);
        assert!(SweepGrid::from_json(r#"{"netwroks": ["vgg8"]}"#).is_err());
        // Missing axes default to empty.
        let sparse = SweepGrid::from_json(r#"{"networks": ["vgg8"]}"#).unwrap();
        assert!(sparse.rob_sizes.is_empty());
        assert!(sparse.base.is_none());
    }

    #[test]
    fn scenario_labels_and_serialization() {
        let s = Scenario::cycle(
            "vgg8",
            32,
            MappingPolicy::PerformanceFirst,
            2,
            ArchConfig::paper_default(),
        );
        assert_eq!(
            s.display_label(),
            "vgg8/32 performance-first x2 rob=8 cycle"
        );
        assert_eq!(s.clone().with_label("custom").display_label(), "custom");
        let v = s.to_value();
        assert_eq!(v["mapping"], Value::String("performance-first".into()));
        assert_eq!(v["simulator"], Value::String("cycle".into()));
        assert_eq!(v["rob_size"], Value::Number(Number::from_u64(8)));
        assert_eq!(v["structure_hazard"], Value::Bool(true));
    }

    #[test]
    fn simulator_kind_parses() {
        assert_eq!(
            "cycle".parse::<SimulatorKind>().unwrap(),
            SimulatorKind::Cycle
        );
        assert_eq!(
            "baseline".parse::<SimulatorKind>().unwrap(),
            SimulatorKind::Baseline
        );
        assert!("spice".parse::<SimulatorKind>().is_err());
    }

    #[test]
    fn serving_axes_fan_out_and_collapse_batches() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.batches = vec![1, 4];
        grid.arrival_rates = vec![50_000.0, 100_000.0];
        grid.batch_policies = vec!["1".into(), "4/20us".into()];
        grid.serve_duration = Some("1ms".into());
        grid.serve_seed = Some(7);
        let scenarios = grid.scenarios().unwrap();
        // The `batches` axis collapses under serving (batch formation is
        // the policy's job): 1 hw point x 2 rates x 2 policies.
        assert_eq!(scenarios.len(), 4);
        for s in &scenarios {
            assert_eq!(s.batch, 1);
            let sp = s.serve.as_ref().unwrap();
            assert_eq!(sp.duration, SimTime::from_ms(1));
            assert_eq!(sp.seed, 7);
        }
        // Rate outermost, policy innermost.
        assert_eq!(scenarios[0].serve.as_ref().unwrap().rate_rps, 50_000.0);
        assert_eq!(
            scenarios[1].serve.as_ref().unwrap().policy.to_string(),
            "4/20us"
        );
        assert_eq!(scenarios[2].serve.as_ref().unwrap().rate_rps, 100_000.0);
        // Serving scenarios serialize the traffic point; labels mention it.
        let v = scenarios[1].to_value();
        assert_eq!(
            v["arrival_rate_rps"],
            Value::Number(Number::from_f64(50_000.0))
        );
        assert_eq!(v["batch_policy"], Value::String("4/20us".into()));
        assert!(scenarios[1].display_label().contains("serve rate=50000"));
    }

    #[test]
    fn serving_skips_baseline_and_plain_grids_stay_plain() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.arrival_rates = vec![50_000.0];
        grid.simulators = vec!["cycle".into(), "baseline".into()];
        let scenarios = grid.scenarios().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert!(scenarios[0].serve.is_some());
        let baseline = scenarios
            .iter()
            .find(|s| s.simulator == SimulatorKind::Baseline)
            .unwrap();
        assert!(baseline.serve.is_none());
        // A grid without serving axes never grows the extra JSON fields.
        let mut plain = SweepGrid::over_networks(["tiny_mlp"]);
        plain.base = Some(ArchConfig::small_test());
        let s = &plain.scenarios().unwrap()[0];
        assert_eq!(s.to_value().get("arrival_rate_rps"), None);
        assert!(!s.display_label().contains("serve"));
    }

    #[test]
    fn serving_knobs_without_rates_are_rejected() {
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.batch_policies = vec!["4/50us".into()];
        assert!(matches!(grid.scenarios(), Err(SweepError::Config(_))));
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.arrival_rates = vec![0.0];
        assert!(matches!(grid.scenarios(), Err(SweepError::Config(_))));
        let mut grid = SweepGrid::over_networks(["tiny_mlp"]);
        grid.base = Some(ArchConfig::small_test());
        grid.arrival_rates = vec![1000.0];
        grid.batch_policies = vec!["nonsense".into()];
        assert!(matches!(grid.scenarios(), Err(SweepError::Config(_))));
    }
}

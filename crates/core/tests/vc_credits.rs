//! Property tests for per-virtual-channel credit flow control.
//!
//! Credit conservation is enforced *inside* the simulator as a hard
//! invariant: any credit count that would underflow or exceed its
//! configured pool stops the run with `SimError::Internal`, and a channel
//! left holding traffic at drain surfaces as `SimError::Deadlock` with
//! per-VC diagnostics. These tests drive randomized rendezvous traffic
//! through every knob combination and assert the runs complete — i.e. no
//! conservation break fired and no channel was left stuck — and stay
//! byte-reproducible.

use proptest::prelude::*;

use pimsim_arch::{ArchConfig, RoutingPolicy};
use pimsim_core::Simulator;
use pimsim_isa::asm;

/// A credit-stressing burst between one core pair: the sender fires all
/// its sends before the receiver consumes anything it can avoid, so the
/// sends chew through the VC pools and park in the waiting queue.
fn burst_program(a: u16, b: u16, rounds: u32, len: u32) -> String {
    let mut text = String::new();
    text.push_str(&format!(".core {a}\n"));
    for _ in 0..rounds {
        text.push_str(&format!("send core{b}, [r0+0], {len}, tag=1\n"));
    }
    for _ in 0..rounds {
        text.push_str(&format!("recv core{b}, [r0+8192], {len}, tag=2\n"));
    }
    text.push_str("halt\n");
    text.push_str(&format!(".core {b}\n"));
    for _ in 0..rounds {
        text.push_str(&format!("recv core{a}, [r0+0], {len}, tag=1\n"));
    }
    for _ in 0..rounds {
        text.push_str(&format!("send core{a}, [r0+8192], {len}, tag=2\n"));
    }
    text.push_str("halt\n");
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized matched traffic drains cleanly for every combination of
    /// virtual channels, credits, pipeline depth and routing policy: the
    /// run completes (so no VC ever exceeded its pool — the simulator
    /// would have stopped with `SimError::Internal` — and no channel was
    /// left stuck — that would be `SimError::Deadlock`), and reruns are
    /// picosecond-identical.
    #[test]
    fn credit_pools_conserve_and_drain(
        vcs in 1u32..5,
        credits in 1u32..4,
        depth in 1u32..4,
        policy_idx in 0usize..RoutingPolicy::ALL.len(),
        rounds in 1u32..12,
        len in 1u32..512,
        pair_seed in 0u32..1_000,
    ) {
        let mut arch = ArchConfig::small_test()
            .with_virtual_channels(vcs)
            .with_router_pipeline_depth(depth)
            .with_routing(RoutingPolicy::ALL[policy_idx]);
        arch.noc.channel_credits = credits;
        let cores = arch.resources.cores() as u32;
        let a = pair_seed % cores;
        // A non-zero offset in 1..cores guarantees b != a.
        let b = ((a + 1 + (pair_seed / cores) % (cores - 1)) % cores) as u16;
        let a = a as u16;
        let program = asm::assemble(&burst_program(a, b, rounds, len)).expect("assembles");
        let report = Simulator::new(&arch).run(&program).expect("drains cleanly");
        // Every message was a send/recv pair on both sides.
        prop_assert_eq!(report.class_counts[2], rounds as u64 * 4);
        let again = Simulator::new(&arch).run(&program).expect("rerun");
        prop_assert_eq!(report.latency, again.latency, "must be reproducible");
        prop_assert_eq!(report.energy.total(), again.energy.total());
    }

    /// When the total pool (`vcs * credits`) covers a whole burst, the
    /// partition into virtual channels is invisible: no send ever waits,
    /// so every split of the same total completes byte-identically.
    #[test]
    fn vc_partition_of_a_covering_pool_is_invisible(
        rounds_log in 0u32..4,
        len in 1u32..512,
    ) {
        let rounds = 1u32 << rounds_log; // 1, 2, 4, 8: every split divides
        let program = asm::assemble(&burst_program(0, 7, rounds, len)).expect("assembles");
        let mut latencies = Vec::new();
        for vcs in [1u32, 2, rounds.max(2)] {
            let mut arch = ArchConfig::small_test().with_virtual_channels(vcs);
            arch.noc.channel_credits = rounds.div_ceil(vcs).max(1);
            // The pool covers the burst: rounds <= vcs * credits.
            prop_assert!(vcs * arch.noc.channel_credits >= rounds);
            let report = Simulator::new(&arch).run(&program).expect("runs");
            latencies.push(report.latency);
        }
        prop_assert_eq!(latencies[0], latencies[1]);
        prop_assert_eq!(latencies[0], latencies[2]);
    }
}

/// A stream toward a *busy* receiver: the sender fires all its messages
/// immediately, while the receiver first grinds through long vector fills
/// (the ROB keeps the `RECV`s from even dispatching until the fills
/// retire). Arriving messages pile up in the credit queue, so the pool
/// size is what decides whether the sender streams ahead or stalls.
fn delayed_recv_program(a: u16, b: u16, rounds: u32, len: u32, delay_ops: u32) -> String {
    let mut text = String::new();
    text.push_str(&format!(".core {a}\n"));
    for _ in 0..rounds {
        text.push_str(&format!("send core{b}, [r0+0], {len}, tag=1\n"));
    }
    text.push_str("halt\n");
    text.push_str(&format!(".core {b}\n"));
    for _ in 0..delay_ops {
        text.push_str("vfill [r0+0], 1, 2048\n");
    }
    for _ in 0..rounds {
        text.push_str(&format!("recv core{a}, [r0+8192], {len}, tag=1\n"));
    }
    text.push_str("halt\n");
    text
}

/// A starved pool (1 VC × 1 credit) forces every send after the first to
/// park in the waiting queue until the busy receiver consumes; the run
/// must still drain — backpressure, not deadlock — and strictly more
/// slowly than an ample pool, under which the whole stream pre-delivers
/// while the receiver is busy.
#[test]
fn starved_credits_backpressure_but_drain() {
    let program = asm::assemble(&delayed_recv_program(0, 8, 8, 256, 8)).expect("assembles");
    let mut starved = ArchConfig::small_test();
    starved.noc.channel_credits = 1;
    let slow = Simulator::new(&starved).run(&program).expect("drains");
    let mut ample = ArchConfig::small_test().with_virtual_channels(4);
    ample.noc.channel_credits = 4;
    let fast = Simulator::new(&ample).run(&program).expect("drains");
    assert!(
        fast.latency < slow.latency,
        "a 16-deep pool ({}) must beat a single credit ({})",
        fast.latency,
        slow.latency
    );
}

/// Round-robin VC assignment happens at issue time and sticks: two VCs of
/// one credit each give the stream twice the standing pool of a single
/// VC, so the busy receiver's backlog stalls the sender later and the run
/// finishes strictly earlier.
#[test]
fn round_robin_vcs_relieve_head_of_line_blocking() {
    let program = asm::assemble(&delayed_recv_program(0, 8, 8, 256, 8)).expect("assembles");
    let mut one_vc = ArchConfig::small_test();
    one_vc.noc.channel_credits = 1;
    let one = Simulator::new(&one_vc).run(&program).expect("drains");
    let mut two_vc = ArchConfig::small_test().with_virtual_channels(2);
    two_vc.noc.channel_credits = 1;
    let two = Simulator::new(&two_vc).run(&program).expect("drains");
    assert!(
        two.latency < one.latency,
        "2 VCs x 1 credit ({}) must beat 1 VC x 1 credit ({})",
        two.latency,
        one.latency
    );
}

//! Pins the static bound analyzer's pricing helpers to the simulator's
//! own arithmetic, so the two cannot drift apart silently.
//!
//! The soundness contract (`static lower bound <= simulated latency`)
//! only holds while the analyzer prices a node at or below what the
//! machine charges for it. These tests assert *exact equality* on an
//! idle fabric — the analyzer's minima are precisely the uncontended
//! costs — across a grid of shapes, payload sizes and arch knobs,
//! including non-default router depths, link widths and frequencies.

use pimsim_analyze::bounds::{decode_offset, dispatch_interval, memory_access_min, message_min};
use pimsim_arch::model::CostModel;
use pimsim_arch::ArchConfig;
use pimsim_core::{DefaultTiming, Noc, NocCosts, TimingModel};
use pimsim_event::SimTime;
use pimsim_isa::{Addr, Instruction, PoolOp, Reg, VBinOp, VImmOp, VUnOp, VectorShape};

/// Arch variants exercising the knobs the pricing depends on.
fn arches() -> Vec<ArchConfig> {
    let mut v = vec![ArchConfig::small_test(), ArchConfig::paper_default()];
    let mut deep = ArchConfig::small_test().with_router_pipeline_depth(3);
    deep.noc.hop_cycles = 2;
    deep.noc.link_flits_per_cycle = 0.5;
    v.push(deep);
    let mut fast = ArchConfig::paper_default();
    fast.timing.dispatch_width = 3;
    fast.timing.decode_cycles = 7;
    fast.noc.flit_bytes = 8;
    v.push(fast);
    v
}

#[test]
fn message_min_matches_idle_noc_delivery() {
    for arch in arches() {
        let model = CostModel::new(&arch);
        let costs = NocCosts::new(&arch);
        let cores = arch.resources.cores();
        let start = SimTime::from_ns(3);
        for &from in &[0u16, 1, cores - 1] {
            for &to in &[0u16, 1, cores / 2, cores - 1] {
                for &elems in &[1u32, 16, 300, 4096] {
                    // Fresh fabric per probe: no residual reservations.
                    let mut noc = Noc::for_arch(&arch);
                    let done = noc.message(from, to, elems, start, &costs);
                    let min = message_min(&model, from, to, elems);
                    assert_eq!(
                        done,
                        start + min,
                        "message {from}->{to} x{elems} on {}x{}",
                        arch.resources.core_rows,
                        arch.resources.core_cols
                    );
                }
            }
        }
    }
}

#[test]
fn memory_access_min_matches_idle_noc_access() {
    for arch in arches() {
        let model = CostModel::new(&arch);
        let costs = NocCosts::new(&arch);
        let cores = arch.resources.cores();
        let start = SimTime::from_ns(5);
        for &core in &[0u16, 1, cores / 2, cores - 1] {
            for &elems in &[1u32, 64, 1000] {
                let mut noc = Noc::for_arch(&arch);
                let done = noc.memory_access(core, elems, start, &costs);
                let min = memory_access_min(&model, core, elems);
                assert_eq!(done, start + min, "gmem access from core{core} x{elems}");
            }
        }
    }
}

#[test]
fn frontend_pacing_matches_default_timing() {
    for arch in arches() {
        let model = CostModel::new(&arch);
        assert_eq!(
            dispatch_interval(&model),
            DefaultTiming.dispatch_interval(&arch)
        );
        assert_eq!(decode_offset(&model), DefaultTiming.decode_offset(&arch));
    }
}

/// The shared `VectorShape` classification prices identically through
/// `CostModel::vector_cost` and the simulator's `TimingModel` seam, for
/// every vector instruction kind.
#[test]
fn vector_shapes_price_identically_everywhere() {
    let addr = |off: i32| Addr::new(Reg::R1, off).unwrap();
    let instrs = [
        Instruction::VBin {
            op: VBinOp::Add,
            dst: addr(0),
            a: addr(8),
            b: addr(16),
            len: 129,
        },
        Instruction::VImm {
            op: VImmOp::Mul,
            dst: addr(0),
            src: addr(8),
            imm: 2,
            len: 77,
        },
        Instruction::VUn {
            op: VUnOp::Sigmoid,
            dst: addr(0),
            src: addr(8),
            len: 31,
        },
        Instruction::VFill {
            dst: addr(0),
            value: 4,
            len: 200,
        },
        Instruction::VCopy2d {
            dst: addr(0),
            src: addr(8),
            block_len: 9,
            blocks: 13,
            src_stride: 11,
            dst_stride: 9,
        },
        Instruction::VPool {
            op: PoolOp::Max,
            dst: addr(0),
            src: addr(8),
            channels: 16,
            win_w: 3,
            win_h: 3,
            row_stride: 48,
        },
    ];
    let expected_shapes = [
        VectorShape::binary(129),
        VectorShape::unary(77),
        VectorShape::unary(31),
        VectorShape::fill(200),
        VectorShape::copy2d(9, 13),
        VectorShape::pool(16, 3, 3),
    ];
    for arch in arches() {
        let model = CostModel::new(&arch);
        for (instr, want) in instrs.iter().zip(&expected_shapes) {
            let shape = instr
                .vector_shape()
                .unwrap_or_else(|| panic!("{instr} must have a vector shape"));
            assert_eq!(shape, *want, "{instr}");
            let via_model = model.vector_cost(shape.len, shape.reads, shape.writes);
            let via_timing = DefaultTiming.vector_cost(&arch, shape.len, shape.reads, shape.writes);
            assert_eq!(via_model, via_timing, "{instr}");
        }
    }
}

//! End-to-end and unit coverage for every [`SimError`] variant: Display
//! text, `source()` chaining, and a real simulation trigger for each of
//! the paths that previously had none (`Deadlock`, `Timeout`,
//! `TagMismatch`).

use std::error::Error;

use pimsim_arch::ArchConfig;
use pimsim_core::{SimError, Simulator};
use pimsim_event::SimTime;
use pimsim_isa::asm;

fn run(arch: &ArchConfig, text: &str) -> Result<pimsim_core::SimReport, SimError> {
    let program = asm::assemble(text).expect("assembles");
    Simulator::new(arch).run(&program)
}

// ------------------------------------------------------------- Deadlock --

#[test]
fn unmatched_recv_deadlocks_with_diagnostics() {
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            recv core1, [r0+0], 4, tag=9
            halt
            .core 1
            halt
        "#,
    )
    .expect_err("a recv with no matching send can never complete");
    let SimError::Deadlock { detail, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(detail.contains("core0"), "names the stuck core: {detail}");
    assert!(
        detail.contains("parkedrecv=true"),
        "channel summary shows the parked recv: {detail}"
    );
    assert!(err.source().is_none(), "Deadlock is a root cause");
    let text = err.to_string();
    assert!(text.starts_with("deadlock at "), "Display: {text}");
}

#[test]
fn crossed_channels_deadlock() {
    // Both cores post recvs on channels whose sends can never issue: each
    // send sits behind the blocked recv in its own single-entry ROB.
    let arch = ArchConfig::small_test().with_rob(1);
    let err = run(
        &arch,
        r#"
            .core 0
            recv core1, [r0+0], 4, tag=1
            send core1, [r0+16], 4, tag=2
            halt
            .core 1
            recv core0, [r0+0], 4, tag=2
            send core0, [r0+16], 4, tag=1
            halt
        "#,
    )
    .expect_err("a circular rendezvous wait must deadlock");
    let SimError::Deadlock { detail, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        detail.contains("core0") && detail.contains("core1"),
        "{detail}"
    );
}

// -------------------------------------------------------------- Timeout --

#[test]
fn infinite_loop_hits_the_cycle_horizon() {
    let mut arch = ArchConfig::small_test();
    arch.sim.max_cycles = 1_000;
    let err = run(
        &arch,
        r#"
            .core 0
            jmp 0
        "#,
    )
    .expect_err("an infinite scalar loop must time out");
    let SimError::Timeout { max_cycles } = err else {
        panic!("expected Timeout, got {err:?}");
    };
    assert_eq!(max_cycles, 1_000);
}

#[test]
fn timeout_display_and_source() {
    let err = SimError::Timeout { max_cycles: 42 };
    assert_eq!(
        err.to_string(),
        "simulation exceeded the 42-cycle safety horizon"
    );
    assert!(err.source().is_none(), "Timeout is a root cause");
}

// ---------------------------------------------------------- TagMismatch --

#[test]
fn length_mismatch_with_parked_recv_fails() {
    // The recv posts first (its core has nothing else to do), so the
    // mismatch is caught when the message deposits into the parked recv.
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            vfill [r0+0], 7, 8
            send core1, [r0+0], 8, tag=1
            halt
            .core 1
            recv core0, [r0+0], 4, tag=1
            halt
        "#,
    )
    .expect_err("mismatched payload lengths must be rejected");
    let SimError::TagMismatch { detail } = &err else {
        panic!("expected TagMismatch, got {err:?}");
    };
    assert!(detail.contains("len 8"), "sender length: {detail}");
    assert!(detail.contains("len 4"), "receiver length: {detail}");
    assert!(detail.contains("tag 1"), "channel tag: {detail}");
    assert!(err.source().is_none(), "TagMismatch is a root cause");
    assert!(
        err.to_string().starts_with("transfer tag mismatch: "),
        "Display: {err}"
    );
}

#[test]
fn length_mismatch_with_queued_message_fails() {
    // The send lands before the recv issues (the receiver grinds through
    // scalar work first), so the mismatch is caught when the recv pops
    // the already-arrived message instead.
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            vfill [r0+0], 7, 8
            send core1, [r0+0], 8, tag=3
            halt
            .core 1
            addi r1, r0, 0
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            addi r1, r1, 1
            recv core0, [r0+0], 4, tag=3
            halt
        "#,
    )
    .expect_err("mismatched payload lengths must be rejected");
    assert!(matches!(err, SimError::TagMismatch { .. }), "got {err:?}");
}

// ---------------------------------------------------------- MemoryFault --

#[test]
fn negative_strided_recv_destination_is_a_memory_fault() {
    // Regression: `(dst + b*stride).max(0)` used to clamp block 1's
    // destination (0 + 1 * -8 = -8) to address 0, silently overwriting
    // block 0 instead of failing.
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            vfill [r0+0], 7, 8
            send core1, [r0+0], 8, tag=1
            halt
            .core 1
            recv2d core0, [r0+0], block=4, blocks=2, dstride=-8, tag=1
            halt
        "#,
    )
    .expect_err("a strided recv reaching below address 0 must fail");
    let SimError::MemoryFault { core, detail } = &err else {
        panic!("expected MemoryFault, got {err:?}");
    };
    assert_eq!(*core, 1);
    assert!(detail.contains("-8"), "names the bad address: {detail}");
    assert!(detail.contains("stride -8"), "names the stride: {detail}");
    assert!(err.source().is_none(), "MemoryFault is a root cause");
    assert!(
        err.to_string().starts_with("memory fault on core1: "),
        "Display: {err}"
    );
}

#[test]
fn recv_past_the_scratchpad_capacity_is_a_memory_fault() {
    // The opposite edge: a stride marching *past* the configured local
    // memory must not silently grow the functional scratchpad either.
    let arch = ArchConfig::small_test(); // 256 KiB -> 65536 elements
    let err = run(
        &arch,
        r#"
            .core 0
            vfill [r0+0], 7, 8
            send core1, [r0+0], 8, tag=1
            halt
            .core 1
            recv2d core0, [r0+65532], block=4, blocks=2, dstride=8, tag=1
            halt
        "#,
    )
    .expect_err("a strided recv reaching past local memory must fail");
    let SimError::MemoryFault { core, detail } = &err else {
        panic!("expected MemoryFault, got {err:?}");
    };
    assert_eq!(*core, 1);
    assert!(
        detail.contains("65536-element"),
        "names the bound: {detail}"
    );
}

#[test]
fn in_range_strided_recv_still_interleaves() {
    // The fix must not touch valid strided receives (negative strides
    // included, as long as every block stays in range).
    let arch = ArchConfig::small_test();
    let report = run(
        &arch,
        r#"
            .core 0
            vfill [r0+0], 9, 4
            send core1, [r0+0], 4, tag=1
            halt
            .core 1
            recv2d core0, [r0+8], block=2, blocks=2, dstride=-4, tag=1
            halt
        "#,
    )
    .expect("a fully in-range negative stride is legal");
    // Block 0 at 8..10, block 1 at 4..6.
    assert_eq!(report.read_local(1, 8, 2), vec![9, 9]);
    assert_eq!(report.read_local(1, 4, 2), vec![9, 9]);
}

// ------------------------------------------------------------- Internal --

#[test]
fn internal_display_and_source() {
    // The variant that replaced `deposit`'s silent `None => return`: a
    // missing sender-side ROB entry now surfaces as a hard error instead
    // of wedging the channel's credit accounting.
    let err = SimError::Internal {
        detail: "deposit on ch(0->1,tag3) found no ROB entry for sender core0 seq 7".into(),
    };
    assert_eq!(
        err.to_string(),
        "internal simulator invariant violated: \
         deposit on ch(0->1,tag3) found no ROB entry for sender core0 seq 7"
    );
    assert!(err.source().is_none(), "Internal is a root cause");
}

// ------------------------------------------- validation errors + chains --

#[test]
fn invalid_program_chains_to_the_isa_error() {
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            send core200, [r0+0], 4, tag=1
            halt
        "#,
    )
    .expect_err("core 200 does not exist on the test chip");
    let SimError::InvalidProgram(_) = &err else {
        panic!("expected InvalidProgram, got {err:?}");
    };
    assert!(
        err.to_string().starts_with("invalid program: "),
        "Display prefixes the cause: {err}"
    );
    let source = err.source().expect("InvalidProgram chains its cause");
    assert!(
        err.to_string().contains(&source.to_string()),
        "the chained source appears in the Display text"
    );
}

#[test]
fn invalid_arch_chains_to_the_arch_error() {
    let mut arch = ArchConfig::small_test();
    arch.resources.rob_size = 0;
    let err = run(
        &arch,
        r#"
            .core 0
            halt
        "#,
    )
    .expect_err("a zero-entry ROB is invalid");
    let SimError::Arch(_) = &err else {
        panic!("expected Arch, got {err:?}");
    };
    assert!(
        err.to_string().starts_with("invalid architecture: "),
        "Display prefixes the cause: {err}"
    );
    let source = err.source().expect("Arch chains its cause");
    assert!(err.to_string().contains(&source.to_string()));
}

#[test]
fn deadlock_display_includes_time_and_detail() {
    let err = SimError::Deadlock {
        time: SimTime::from_ns(12),
        detail: "core0: stuck".to_string(),
    };
    let text = err.to_string();
    assert!(text.contains("12"), "time rendered: {text}");
    assert!(text.contains("core0: stuck"), "detail rendered: {text}");
}

// ------------------------------------------------------ StaticAnalysis --

#[test]
fn deadlock_detail_names_unmatched_sites_and_suggests_check() {
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            recv core1, [r0+0], 4, tag=9
            halt
            .core 1
            li r1, 0
            send core0, [r1+0], 4, tag=3
            halt
        "#,
    )
    .expect_err("tag 9 is never sent and tag 3 never received");
    let SimError::Deadlock { detail, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(detail.contains("unmatched rendezvous site(s):"), "{detail}");
    assert!(
        detail.contains("core1 -> core0 tag=3: 1 sent message(s) never received"),
        "names the rotting send: {detail}"
    );
    assert!(
        detail.contains("core1 -> core0 tag=9: a receive waiting on a send that never comes"),
        "names the parked recv: {detail}"
    );
    assert!(
        detail.contains("`pimsim check`"),
        "hints the tool: {detail}"
    );
}

#[test]
fn preflight_refuses_a_statically_deadlocked_program() {
    let arch = ArchConfig::small_test();
    let text = r#"
        .core 0
        recv core1, [r0+0], 4, tag=9
        halt
        .core 1
        halt
    "#;
    let program = asm::assemble(text).expect("assembles");
    // Without pre-flight the defect surfaces as a runtime deadlock...
    let err = Simulator::new(&arch).run(&program).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err:?}");
    // ...with pre-flight it is refused before the first event.
    let err = Simulator::new(&arch)
        .with_preflight()
        .run(&program)
        .unwrap_err();
    let SimError::StaticAnalysis { detail } = &err else {
        panic!("expected StaticAnalysis, got {err:?}");
    };
    assert!(detail.contains("unmatched-rendezvous"), "{detail}");
    assert!(detail.contains("core0"), "{detail}");
    assert!(err.source().is_none());
    assert!(
        err.to_string()
            .starts_with("pre-flight static analysis rejected the program"),
        "{err}"
    );
}

#[test]
fn preflight_passes_clean_programs_with_identical_output() {
    let arch = ArchConfig::small_test();
    let text = r#"
        .core 0
        li r1, 0
        send core1, [r1+0], 8, tag=1
        halt
        .core 1
        recv core0, [r0+0], 8, tag=1
        halt
    "#;
    let program = asm::assemble(text).expect("assembles");
    let plain = Simulator::new(&arch).run(&program).expect("clean");
    let checked = Simulator::new(&arch)
        .with_preflight()
        .run(&program)
        .expect("clean under preflight");
    assert_eq!(plain.latency, checked.latency);
    assert_eq!(plain.events, checked.events);
    // Warnings (here: a dead write) do not block the run.
    let warn = asm::assemble(".core 0\nli r1, 7\nhalt\n").unwrap();
    Simulator::new(&arch)
        .with_preflight()
        .run(&warn)
        .expect("warnings never refuse a run");
}

#[test]
fn leaked_message_fails_quiescence_even_when_all_cores_halt() {
    // The send completes at deposit (credit-buffered fabric), so both
    // cores halt — but the message is never received. That used to pass
    // as a successful run.
    let arch = ArchConfig::small_test();
    let err = run(
        &arch,
        r#"
            .core 0
            li r1, 0
            send core1, [r1+0], 4, tag=3
            halt
            .core 1
            halt
        "#,
    )
    .expect_err("a sent-but-never-received message is not a clean finish");
    let SimError::Deadlock { detail, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(
        detail.contains("never received"),
        "names the leak: {detail}"
    );
    assert!(
        detail.contains("core0 -> core1 tag=3"),
        "names the site: {detail}"
    );
}

//! Direct machine-model tests driven by hand-written assembly: hazards,
//! structure hazards, ROB effects, transfer semantics, error paths.

use pimsim_arch::ArchConfig;
use pimsim_core::{SimError, Simulator};
use pimsim_event::SimTime;
use pimsim_isa::asm;

fn arch() -> ArchConfig {
    ArchConfig::small_test()
}

fn run(arch: &ArchConfig, text: &str) -> pimsim_core::SimReport {
    let program = asm::assemble(text).expect("assembles");
    Simulator::new(arch).run(&program).expect("runs")
}

#[test]
fn mvms_on_different_groups_overlap_with_rob() {
    // Two groups on disjoint crossbars; outputs to disjoint addresses.
    let text = r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        .group 1 in=16 out=16 xbars=1
        mvm g0, [r0+100], [r0+0], 16
        mvm g1, [r0+200], [r0+0], 16
        halt
    "#;
    let serial = run(&arch().with_rob(1), text).latency;
    let parallel = run(&arch().with_rob(8), text).latency;
    assert!(
        parallel.as_ps() < serial.as_ps() * 3 / 4,
        "disjoint MVMs should overlap: rob1={serial}, rob8={parallel}"
    );
}

#[test]
fn structure_hazard_serializes_same_crossbars() {
    // Both MVMs fire group 0: the paper's structure hazard.
    let text = r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        mvm g0, [r0+100], [r0+0], 16
        mvm g0, [r0+200], [r0+0], 16
        halt
    "#;
    let rob1 = run(&arch().with_rob(1), text).latency;
    let rob8 = run(&arch().with_rob(8), text).latency;
    // A bigger ROB cannot help: same crossbars must serialize.
    let slack = rob1.as_ps() / 20;
    assert!(
        rob8.as_ps() + slack >= rob1.as_ps(),
        "structure hazard must serialize: rob1={rob1}, rob8={rob8}"
    );
}

#[test]
fn raw_hazard_orders_vector_ops() {
    // Second op reads what the first wrote; functional result proves order.
    let report = run(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], 5, 8
        vaddi [r0+0], [r0+0], 2, 8
        vmuli [r0+16], [r0+0], 3, 8
        halt
    "#,
    );
    assert_eq!(report.read_local(0, 0, 1)[0], 7);
    assert_eq!(report.read_local(0, 16, 1)[0], 21);
}

#[test]
fn scalar_loop_executes() {
    // Increment a memory cell 10 times via a scalar-controlled loop.
    let report = run(
        &arch(),
        r#"
        .core 0
        li r1, 10
    loop:
        vaddi [r0+0], [r0+0], 1, 1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    "#,
    );
    assert_eq!(report.read_local(0, 0, 1), vec![10]);
    assert!(report.class_counts[3] > 20, "scalar ops executed");
}

#[test]
fn synchronized_transfer_delivers_payload() {
    let report = run(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], 42, 16
        send core1, [r0+0], 16, tag=5
        halt
        .core 1
        recv core0, [r0+32], 16, tag=5
        vaddi [r0+64], [r0+32], 1, 16
        halt
    "#,
    );
    assert_eq!(report.read_local(1, 32, 1)[0], 42);
    assert_eq!(report.read_local(1, 64, 1)[0], 43);
}

#[test]
fn self_transfer_is_rejected_not_free() {
    // Pinned choice for same-core rendezvous: programs may not SEND to
    // their own core (the validator rejects them before simulation), and
    // the NoC API itself charges `CostModel::local_copy_cost` for a
    // `from == to` message instead of the old zero-time, zero-energy
    // transfer (see `noc::tests::self_message_charges_local_copy`).
    let arch = arch();
    let program = asm::assemble(
        r#"
        .core 0
        vfill [r0+0], 7, 16
        send core0, [r0+0], 16, tag=3
        recv core0, [r0+64], 16, tag=3
        halt
    "#,
    )
    .expect("assembles");
    let err = Simulator::new(&arch).run(&program).unwrap_err();
    assert!(
        matches!(err, SimError::InvalidProgram(_)),
        "self-send must be rejected by program validation, got {err:?}"
    );
}

#[test]
fn recv2d_interleaves() {
    let report = run(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], 9, 4
        send core1, [r0+0], 4, tag=1
        halt
        .core 1
        recv2d core0, [r0+0], block=2, blocks=2, dstride=4, tag=1
        halt
    "#,
    );
    assert_eq!(report.read_local(1, 0, 6), vec![9, 9, 0, 0, 9, 9]);
}

#[test]
fn global_memory_roundtrip() {
    let report = run(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], -3, 8
        gstore g[r0+1000], [r0+0], 8
        gload [r0+64], g[r0+1000], 8
        halt
    "#,
    );
    assert_eq!(report.read_local(0, 64, 8), vec![-3; 8]);
    assert_eq!(report.read_global(1000, 2), vec![-3, -3]);
}

#[test]
fn tag_mismatch_is_detected() {
    let program = asm::assemble(
        r#"
        .core 0
        send core1, [r0+0], 16, tag=5
        halt
        .core 1
        recv core0, [r0+0], 8, tag=5
        halt
    "#,
    )
    .unwrap();
    let err = Simulator::new(&arch()).run(&program).unwrap_err();
    assert!(matches!(err, SimError::TagMismatch { .. }), "got {err}");
}

#[test]
fn unmatched_recv_deadlocks_cleanly() {
    let program = asm::assemble(
        r#"
        .core 0
        recv core1, [r0+0], 8, tag=1
        halt
        .core 1
        nop
        halt
    "#,
    )
    .unwrap();
    let err = Simulator::new(&arch()).run(&program).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");
}

#[test]
fn runaway_program_times_out() {
    let mut cfg = arch();
    cfg.sim.max_cycles = 10_000;
    let program = asm::assemble(
        r#"
        .core 0
    forever:
        jmp forever
    "#,
    )
    .unwrap();
    let err = Simulator::new(&cfg).run(&program).unwrap_err();
    assert!(matches!(err, SimError::Timeout { .. }), "got {err}");
}

#[test]
fn invalid_program_rejected_before_running() {
    // Branch target out of range.
    let program = asm::assemble(".core 0\njmp 99\n").unwrap();
    let err = Simulator::new(&arch()).run(&program).unwrap_err();
    assert!(matches!(err, SimError::InvalidProgram(_)), "got {err}");
}

#[test]
fn report_accounts_energy_and_power() {
    let report = run(
        &arch(),
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        vfill [r0+0], 1, 16
        mvm g0, [r0+100], [r0+0], 16
        vrelu [r0+100], [r0+100], 16
        send core1, [r0+100], 16, tag=1
        halt
        .core 1
        recv core0, [r0+0], 16, tag=1
        halt
    "#,
    );
    assert!(report.energy.matrix.as_pj() > 0.0);
    assert!(report.energy.vector.as_pj() > 0.0);
    assert!(report.energy.transfer.as_pj() > 0.0);
    assert!(report.energy.scalar.as_pj() > 0.0);
    assert!(report.energy.frontend.as_pj() > 0.0);
    assert!(report.energy.static_energy.as_pj() > 0.0);
    assert!(report.avg_power_w() > 0.0);
    assert_eq!(report.class_counts[0], 1);
    assert_eq!(report.class_counts[2], 2);
    assert!(report.latency > SimTime::ZERO);
}

#[test]
fn per_tag_attribution_tracks_comm_time() {
    // Tag instructions manually via a compiled-style program is covered in
    // integration tests; here, untagged programs attribute everything to 0.
    let report = run(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], 1, 64
        send core1, [r0+0], 64, tag=9
        halt
        .core 1
        recv core0, [r0+0], 64, tag=9
        halt
    "#,
    );
    assert!(report.per_node[0].comm_time > SimTime::ZERO);
    assert!(report.comm_ratio(0) > 0.0);
}

#[test]
fn idle_cores_cost_nothing_dynamic() {
    let a = run(&arch(), ".core 0\nnop\nhalt\n");
    assert_eq!(a.instructions, 2);
    // Only static + scalar/frontend energy.
    assert_eq!(a.energy.matrix.as_pj(), 0.0);
    assert_eq!(a.energy.transfer.as_pj(), 0.0);
}

#[test]
fn determinism_across_runs() {
    let text = r#"
        .core 0
        .group 0 in=16 out=16 xbars=0,1
        vfill [r0+0], 3, 16
        mvm g0, [r0+50], [r0+0], 16
        send core1, [r0+50], 16, tag=2
        halt
        .core 1
        recv core0, [r0+0], 16, tag=2
        vrelu [r0+32], [r0+0], 16
        halt
    "#;
    let a = run(&arch(), text);
    let b = run(&arch(), text);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.events, b.events);
    assert!((a.energy.total().as_pj() - b.energy.total().as_pj()).abs() < 1e-9);
}

#[test]
fn trace_records_instruction_completions() {
    let mut cfg = arch();
    cfg.sim.trace = true;
    let report = run(
        &cfg,
        r#"
        .core 0
        vfill [r0+0], 1, 8
        send core1, [r0+0], 8, tag=1
        halt
        .core 1
        recv core0, [r0+0], 8, tag=1
        halt
    "#,
    );
    assert!(!report.trace.is_empty());
    // Trace covers both cores and includes the transfer pair.
    assert!(report.trace.iter().any(|t| t.core == 0));
    assert!(report.trace.iter().any(|t| t.core == 1));
    assert!(report.trace.iter().any(|t| t.instr.starts_with("send")));
    assert!(report.trace.iter().any(|t| t.instr.starts_with("recv")));
    // Completion times are plausible (within the run).
    assert!(report.trace.iter().all(|t| t.time <= report.latency));

    // Without the flag, no trace is recorded.
    let quiet = run(&arch(), ".core 0\nnop\nhalt\n");
    assert!(quiet.trace.is_empty());
}

#[test]
fn structure_hazard_ablation_unlocks_same_crossbar_overlap() {
    let text = r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        mvm g0, [r0+100], [r0+0], 16
        mvm g0, [r0+200], [r0+0], 16
        halt
    "#;
    let with_hazard = run(&arch().with_rob(8), text).latency;
    let mut ablated = arch().with_rob(8);
    ablated.sim.structure_hazard = false;
    let without = run(&ablated, text).latency;
    assert!(
        without < with_hazard,
        "disabling the structure hazard must allow overlap ({without} vs {with_hazard})"
    );
}

#[test]
fn per_node_energy_attribution_sums_to_dynamic_energy() {
    let report = run(
        &arch(),
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        vfill [r0+0], 1, 16
        mvm g0, [r0+100], [r0+0], 16
        send core1, [r0+100], 16, tag=1
        halt
        .core 1
        recv core0, [r0+0], 16, tag=1
        halt
    "#,
    );
    let attributed: f64 = report.per_node.iter().map(|n| n.energy.as_pj()).sum();
    let dynamic = (report.energy.matrix + report.energy.vector + report.energy.transfer).as_pj();
    assert!(
        (attributed - dynamic).abs() < 1e-6,
        "per-node energy ({attributed}) must equal dynamic energy ({dynamic})"
    );
    assert!(attributed > 0.0);
}

//! End-to-end functional correctness: compile → simulate → compare
//! bit-exactly against the golden forward pass, under both mapping
//! policies and several chip geometries.

use pimsim_arch::ArchConfig;
use pimsim_compiler::{Compiler, MappingPolicy};
use pimsim_core::Simulator;
use pimsim_nn::{zoo, GoldenModel, Network, WeightGen};

/// Compiles and simulates `net` functionally, returning (simulated output,
/// golden output).
fn run_both(net: &Network, arch: &ArchConfig, policy: MappingPolicy) -> (Vec<i32>, Vec<i32>) {
    let compiled = Compiler::new(arch)
        .mapping(policy)
        .compile(net)
        .unwrap_or_else(|e| panic!("compile {}: {e}", net.name));
    let report = Simulator::new(arch)
        .run(&compiled.program)
        .unwrap_or_else(|e| panic!("simulate {}: {e}", net.name));
    let sim_out = report.read_global(compiled.output.gaddr, compiled.output.elems);

    let gen = WeightGen::for_network(net);
    let golden = GoldenModel::new(net, gen);
    let input = gen.input(net.input_shape.elems());
    let gold_out = golden.run(&input).unwrap();
    (sim_out, gold_out)
}

#[test]
fn mlp_matches_golden_performance_first() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let (sim, gold) = run_both(&net, &arch, MappingPolicy::PerformanceFirst);
    assert_eq!(sim, gold);
}

#[test]
fn mlp_matches_golden_utilization_first() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_mlp();
    let (sim, gold) = run_both(&net, &arch, MappingPolicy::UtilizationFirst);
    assert_eq!(sim, gold);
}

#[test]
fn cnn_with_every_operator_matches_golden() {
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    for policy in [
        MappingPolicy::PerformanceFirst,
        MappingPolicy::UtilizationFirst,
    ] {
        let (sim, gold) = run_both(&net, &arch, policy);
        assert_eq!(sim, gold, "mismatch under {policy}");
    }
}

#[test]
fn forced_multi_core_spanning_matches_golden() {
    // Tiny cores force both column splits and row splits.
    let mut arch = ArchConfig::small_test();
    arch.resources.core_rows = 4;
    arch.resources.core_cols = 4;
    arch.resources.xbars_per_core = 2;
    let net = zoo::tiny_mlp();
    for policy in [
        MappingPolicy::PerformanceFirst,
        MappingPolicy::UtilizationFirst,
    ] {
        let (sim, gold) = run_both(&net, &arch, policy);
        assert_eq!(sim, gold, "mismatch under {policy}");
    }
}

#[test]
fn deep_residual_net_matches_golden() {
    // A deeper residual/catenated network at a slightly larger resolution.
    let arch = ArchConfig::small_test();
    let net = tiny_resnet();
    for policy in [
        MappingPolicy::PerformanceFirst,
        MappingPolicy::UtilizationFirst,
    ] {
        let (sim, gold) = run_both(&net, &arch, policy);
        assert_eq!(sim, gold, "mismatch under {policy}");
    }
}

/// A miniature ResNet-style network: stem conv, two residual blocks (one
/// with projection), global pool, classifier.
fn tiny_resnet() -> Network {
    use pimsim_nn::{Activation, Layer, PortRef, Shape};
    const RELU: Option<Activation> = Some(Activation::Relu);
    let mut b = Network::builder("tiny_resnet", Shape::new(12, 12, 3));
    let conv = |b: &mut pimsim_nn::NetworkBuilder,
                name: &str,
                input: PortRef,
                ch: u32,
                k: u32,
                s: u32,
                p: u32,
                act: Option<Activation>| {
        b.add(
            name,
            Layer::Conv2d {
                out_channels: ch,
                kernel: k,
                stride: s,
                padding: p,
                activation: act,
            },
            vec![input],
        )
    };
    let stem = conv(&mut b, "stem", PortRef::Input, 8, 3, 1, 1, RELU);
    // Block 1: identity shortcut.
    let c1a = conv(&mut b, "b1/conv1", stem, 8, 3, 1, 1, RELU);
    let c1b = conv(&mut b, "b1/conv2", c1a, 8, 3, 1, 1, None);
    let add1 = b.add("b1/add", Layer::Add { activation: RELU }, vec![stem, c1b]);
    // Block 2: stride-2 with projection shortcut.
    let c2a = conv(&mut b, "b2/conv1", add1, 16, 3, 2, 1, RELU);
    let c2b = conv(&mut b, "b2/conv2", c2a, 16, 3, 1, 1, None);
    let proj = conv(&mut b, "b2/proj", add1, 16, 1, 2, 0, None);
    let add2 = b.add("b2/add", Layer::Add { activation: RELU }, vec![proj, c2b]);
    let gap = b.add("gap", Layer::GlobalAvgPool, vec![add2]);
    b.add(
        "fc",
        Layer::Linear {
            out_features: 10,
            activation: None,
        },
        vec![gap],
    );
    b.finish().expect("tiny_resnet is well-formed")
}

#[test]
fn both_policies_agree_functionally() {
    // Different placements must never change results, only timing.
    let arch = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    let (a, _) = run_both(&net, &arch, MappingPolicy::PerformanceFirst);
    let (b, _) = run_both(&net, &arch, MappingPolicy::UtilizationFirst);
    assert_eq!(a, b);
}

#[test]
fn rob_size_does_not_change_results() {
    let base = ArchConfig::small_test();
    let net = zoo::tiny_cnn();
    let mut reference: Option<Vec<i32>> = None;
    for rob in [1u32, 4, 16] {
        let arch = base.clone().with_rob(rob);
        let (sim, gold) = run_both(&net, &arch, MappingPolicy::PerformanceFirst);
        assert_eq!(sim, gold, "rob={rob} broke correctness");
        if let Some(r) = &reference {
            assert_eq!(&sim, r, "rob={rob} changed results");
        }
        reference = Some(sim);
    }
}

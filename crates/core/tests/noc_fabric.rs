//! Property tests for the dense, policy-pluggable NoC fabric: every
//! policy routes minimally, every message is delivered, link occupancy
//! only moves forward, and routing actually changes contention (but
//! never determinism) on a multi-core scenario.

use proptest::prelude::*;

use pimsim_arch::{ArchConfig, RoutingPolicy};
use pimsim_core::{routing_for, Adaptive, Noc, NocCosts, Simulator};
use pimsim_event::SimTime;
use pimsim_isa::asm;

const POLICIES: [RoutingPolicy; 4] = RoutingPolicy::ALL;

fn manhattan(cols: u16, a: u16, b: u16) -> usize {
    let (ar, ac) = (a / cols, a % cols);
    let (br, bc) = (b / cols, b % cols);
    (ar.abs_diff(br) + ac.abs_diff(bc)) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy produces a minimal route: exactly the Manhattan
    /// distance, each step a mesh neighbour, ending at the destination.
    #[test]
    fn routes_are_minimal_for_every_policy(
        rows in 1u16..9,
        cols in 1u16..9,
        from_seed in 0u32..10_000,
        to_seed in 0u32..10_000,
        msg_seq in 0u64..8,
    ) {
        let routers = (rows as u32 * cols as u32) as u16;
        let from = (from_seed % routers as u32) as u16;
        let to = (to_seed % routers as u32) as u16;
        let noc = Noc::new(rows, cols);
        for policy in POLICIES {
            let order = routing_for(policy).order(from, to, msg_seq);
            let links: Vec<(u16, u16)> = noc.route(from, to, order).collect();
            prop_assert_eq!(links.len(), manhattan(cols, from, to));
            let mut cur = from;
            for (a, b) in &links {
                prop_assert_eq!(*a, cur, "route is connected");
                prop_assert_eq!(
                    manhattan(cols, *a, *b), 1,
                    "each link joins mesh neighbours"
                );
                cur = *b;
            }
            prop_assert_eq!(cur, to, "route ends at the destination");
        }
    }

    /// Every policy delivers every message: completion times are at or
    /// after injection plus the uncontended minimum, and link occupancy
    /// is monotone (no reservation ever moves a link's free time back).
    #[test]
    fn all_policies_deliver_randomized_traffic(
        rows in 2u16..6,
        cols in 2u16..6,
        traffic in proptest::collection::vec((0u32..10_000, 0u32..10_000, 1u32..512), 1..40),
    ) {
        let cfg = ArchConfig::paper_default();
        let costs = NocCosts::new(&cfg);
        let routers = rows as u32 * cols as u32;
        for policy in POLICIES {
            let mut noc = Noc::with_routing(rows, cols, routing_for(policy));
            let mut prev_free: Vec<SimTime> = Vec::new();
            for (i, &(f, t, elems)) in traffic.iter().enumerate() {
                let from = (f % routers) as u16;
                let to = (t % routers) as u16;
                let start = SimTime::from_ns(i as u64 * 3);
                let done = noc.message(from, to, elems, start, &costs);
                // Delivered: never before injection, and no faster than
                // the uncontended pipe latency + serialization.
                let hops = manhattan(cols, from, to) as u32;
                if from == to {
                    prop_assert_eq!(done, start + costs.local_copy(elems).time);
                } else {
                    let floor = costs.hop() * hops as u64
                        + costs.serialization(costs.flits_for_elems(elems));
                    prop_assert!(done >= start + floor, "no lost flits / time travel");
                }
                // Monotone link times across the whole fabric.
                let free: Vec<SimTime> = (0..routers as u16)
                    .flat_map(|r| {
                        let mut out = Vec::new();
                        if r % cols != cols - 1 { out.push(noc.link_free(r, r + 1)); }
                        if r % cols != 0 { out.push(noc.link_free(r, r - 1)); }
                        if r / cols != rows - 1 { out.push(noc.link_free(r, r + cols)); }
                        if r / cols != 0 { out.push(noc.link_free(r, r - cols)); }
                        out
                    })
                    .collect();
                if !prev_free.is_empty() {
                    for (new, old) in free.iter().zip(&prev_free) {
                        prop_assert!(new >= old, "link occupancy went backwards");
                    }
                }
                prev_free = free;
            }
        }
    }

    /// Adaptive routes stay minimal on random meshes, whatever congestion
    /// the fabric has already accumulated: exactly the Manhattan distance,
    /// each step a mesh neighbour, ending at the destination.
    #[test]
    fn adaptive_routes_stay_minimal_under_random_congestion(
        rows in 1u16..9,
        cols in 1u16..9,
        warm in proptest::collection::vec((0u32..10_000, 0u32..10_000, 1u32..512), 0..24),
        from_seed in 0u32..10_000,
        to_seed in 0u32..10_000,
    ) {
        let cfg = ArchConfig::paper_default();
        let costs = NocCosts::new(&cfg);
        let routers = rows as u32 * cols as u32;
        let mut noc = Noc::with_routing(rows, cols, &Adaptive);
        // Random warm-up traffic loads the links the adaptive walk reads.
        for (i, &(f, t, elems)) in warm.iter().enumerate() {
            let from = (f % routers) as u16;
            let to = (t % routers) as u16;
            noc.message(from, to, elems, SimTime::from_ns(i as u64), &costs);
        }
        let from = (from_seed % routers) as u16;
        let to = (to_seed % routers) as u16;
        let links: Vec<(u16, u16)> = noc.adaptive_route(from, to).collect();
        prop_assert_eq!(links.len(), manhattan(cols, from, to));
        let mut cur = from;
        for (a, b) in &links {
            prop_assert_eq!(*a, cur, "route is connected");
            prop_assert_eq!(
                manhattan(cols, *a, *b), 1,
                "each link joins mesh neighbours"
            );
            cur = *b;
        }
        prop_assert_eq!(cur, to, "route ends at the destination");
    }

    /// On contention-free traffic — every message injected after the
    /// fabric has fully drained — adaptive and XY complete byte-equally:
    /// both take minimal routes through idle links, so only congestion
    /// can ever separate them.
    #[test]
    fn adaptive_equals_xy_on_contention_free_traffic(
        rows in 2u16..7,
        cols in 2u16..7,
        traffic in proptest::collection::vec((0u32..10_000, 0u32..10_000, 1u32..1024), 1..32),
    ) {
        let cfg = ArchConfig::paper_default();
        let costs = NocCosts::new(&cfg);
        let routers = rows as u32 * cols as u32;
        let mut xy = Noc::with_routing(rows, cols, &pimsim_core::Xy);
        let mut adaptive = Noc::with_routing(rows, cols, &Adaptive);
        for (i, &(f, t, elems)) in traffic.iter().enumerate() {
            let from = (f % routers) as u16;
            let to = (t % routers) as u16;
            // 1 ms spacing dwarfs any route's latency, so every message
            // sees a drained fabric (starts past every link's free time).
            let start = SimTime::from_ns(i as u64 * 1_000_000);
            let a = xy.message(from, to, elems, start, &costs);
            let b = adaptive.message(from, to, elems, start, &costs);
            prop_assert_eq!(a, b, "message {} diverged without contention", i);
        }
    }
}

/// Cross traffic on the 3×3 test chip whose XY routes share links but
/// whose YX routes are disjoint: core0→core8 and core2→core8.
const CROSS_TRAFFIC: &str = r#"
    .core 0
    vfill [r0+0], 1, 256
    send core8, [r0+0], 256, tag=1
    halt
    .core 2
    vfill [r0+0], 2, 256
    send core8, [r0+0], 256, tag=2
    halt
    .core 8
    recv core0, [r0+0], 256, tag=1
    recv core2, [r0+512], 256, tag=2
    halt
"#;

fn cross_latency(policy: RoutingPolicy) -> SimTime {
    let arch = ArchConfig::small_test().with_routing(policy);
    let program = asm::assemble(CROSS_TRAFFIC).expect("assembles");
    let report = Simulator::new(&arch).run(&program).expect("runs");
    // Payloads arrive regardless of the route taken.
    assert_eq!(report.read_local(8, 0, 1)[0], 1);
    assert_eq!(report.read_local(8, 512, 1)[0], 2);
    report.latency
}

#[test]
fn routing_policy_changes_contention_deterministically() {
    // Under XY both messages fight over links (2,5) and (5,8); under YX
    // their routes are disjoint, so the run must finish strictly earlier.
    let xy = cross_latency(RoutingPolicy::Xy);
    let yx = cross_latency(RoutingPolicy::Yx);
    let alt = cross_latency(RoutingPolicy::XyYxAlternate);
    assert!(
        yx < xy,
        "disjoint YX routes must beat contended XY ones (xy={xy}, yx={yx})"
    );
    // Every policy is deterministic: identical reruns, picosecond-exact.
    for policy in POLICIES {
        assert_eq!(cross_latency(policy), cross_latency(policy));
    }
    assert!(
        alt <= xy,
        "alternation can only reduce the shared-link wait"
    );
}

//! Engine equivalence: the compiled engine must be byte-identical to the
//! event engine on every observable of a run — latency, energies (exact
//! `f64` bits), per-core/per-node attribution, executed-event count, and
//! functional memory — plus a seeded differential sweep over randomly
//! generated mixed compute/transfer programs.

use pimsim_arch::ArchConfig;
use pimsim_core::{EngineKind, ScheduleStats, SimReport, Simulator};
use pimsim_isa::asm;

fn arch() -> ArchConfig {
    ArchConfig::small_test()
}

/// Every public observable of a report except the engine-specific
/// schedule counters. `f64` Debug formatting is shortest-roundtrip, so
/// equal fingerprints mean bit-equal energies.
fn fingerprint(r: &SimReport) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{:?}",
        r.latency,
        r.energy,
        r.instructions,
        r.class_counts,
        r.per_core,
        r.per_node,
        r.events,
        r.trace
    )
}

/// Runs `text` under both engines and checks equivalence; returns the
/// compiled engine's schedule counters for shape assertions.
fn run_both(arch: &ArchConfig, text: &str) -> ScheduleStats {
    let program = asm::assemble(text).expect("assembles");
    let event = Simulator::new(arch)
        .run(&program)
        .expect("event engine runs");
    let compiled = Simulator::new(arch)
        .with_engine(EngineKind::Compiled.engine())
        .run(&program)
        .expect("compiled engine runs");
    assert_eq!(fingerprint(&event), fingerprint(&compiled));
    if arch.sim.functional {
        for core in 0..arch.resources.cores() {
            assert_eq!(
                event.read_local(core, 0, 512),
                compiled.read_local(core, 0, 512),
                "local memory of core{core} diverged"
            );
        }
        assert_eq!(event.read_global(0, 256), compiled.read_global(0, 256));
    }
    assert_eq!(
        event.schedule,
        ScheduleStats {
            events_dispatched: event.events,
            ..ScheduleStats::default()
        },
        "event engine dispatches everything live"
    );
    assert_eq!(
        compiled.schedule.events_dispatched + compiled.schedule.events_placed,
        compiled.events,
        "every executed event is either dispatched or placed"
    );
    compiled.schedule
}

#[test]
fn compute_only_program_is_fully_placed() {
    let schedule = run_both(
        &arch(),
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        .group 1 in=16 out=16 xbars=1
        vfill [r0+0], 3, 16
        mvm g0, [r0+100], [r0+0], 16
        mvm g1, [r0+200], [r0+0], 16
        vaddi [r0+300], [r0+100], 1, 16
        halt
    "#,
    );
    assert_eq!(schedule.regions_compiled, 1, "one straight-line region");
    assert_eq!(schedule.regions_fallback, 0);
    assert!(
        schedule.events_placed > schedule.events_dispatched,
        "a compute-only program should replay almost everything: {schedule:?}"
    );
}

#[test]
fn transfer_boundary_falls_back_then_recompiles() {
    let text = r#"
        .core 0
        vfill [r0+0], 42, 16
        send core1, [r0+0], 16, tag=5
        vaddi [r0+100], [r0+0], 1, 16
        halt
        .core 1
        recv core0, [r0+32], 16, tag=5
        vaddi [r0+64], [r0+32], 1, 16
        halt
    "#;
    // With a deep ROB, dispatch runs ahead while the transfer is in
    // flight, so only the pre-send window compiles; the rendezvous and
    // everything overlapping it stays live.
    let schedule = run_both(&arch(), text);
    assert!(
        schedule.regions_compiled >= 1,
        "expected the pre-send window to compile: {schedule:?}"
    );
    assert!(schedule.events_dispatched > 0, "the rendezvous stays live");

    // With a single-entry ROB every completion drains the core, so the
    // windows *after* the transfers become compiled regions too: the
    // deferred-dispatch hook re-enters at completion sites.
    let schedule = run_both(&arch().with_rob(1), text);
    assert!(
        schedule.regions_compiled >= 2,
        "expected windows on both sides of the transfers: {schedule:?}"
    );
    assert!(schedule.events_dispatched > 0, "the rendezvous stays live");
}

#[test]
fn scalar_loop_branches_stay_live_and_match() {
    // Branches cut windows, so the loop body mostly runs on the event
    // path; equivalence must hold regardless.
    run_both(
        &arch(),
        r#"
        .core 0
        li r1, 10
    loop:
        vaddi [r0+0], [r0+0], 1, 1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    "#,
    );
}

#[test]
fn mirrored_cores_share_one_compiled_region() {
    let body = r#"
        .group 0 in=16 out=16 xbars=0
        vfill [r0+0], 2, 16
        mvm g0, [r0+100], [r0+0], 16
        vaddi [r0+200], [r0+100], 7, 16
        halt
    "#;
    let text = format!(".core 0\n{body}\n.core 1\n{body}\n.core 2\n{body}");
    let schedule = run_both(&arch(), &text);
    assert_eq!(
        schedule.regions_compiled, 1,
        "identical windows compile once"
    );
    assert_eq!(
        schedule.regions_reused, 2,
        "the other cores replay the memo"
    );
}

#[test]
fn global_memory_traffic_matches() {
    run_both(
        &arch(),
        r#"
        .core 0
        vfill [r0+0], 9, 16
        gstore g[r0+128], [r0+0], 16
        gload [r0+64], g[r0+128], 16
        vaddi [r0+96], [r0+64], 1, 16
        halt
    "#,
    );
}

#[test]
fn timing_only_runs_match_too() {
    run_both(
        &arch().with_functional(false),
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0,1
        vfill [r0+0], 3, 16
        mvm g0, [r0+100], [r0+0], 16
        send core1, [r0+100], 16, tag=1
        halt
        .core 1
        recv core0, [r0+0], 16, tag=1
        vmuli [r0+32], [r0+0], 2, 16
        halt
    "#,
    );
}

#[test]
fn schedule_cache_reuses_regions_across_runs() {
    use pimsim_core::ScheduleCache;
    let arch = arch();
    let program = asm::assemble(
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        vfill [r0+0], 3, 16
        mvm g0, [r0+100], [r0+0], 16
        vaddi [r0+200], [r0+100], 1, 16
        halt
    "#,
    )
    .expect("assembles");

    let cache = ScheduleCache::default();
    let sim = Simulator::new(&arch)
        .with_engine(EngineKind::Compiled.engine())
        .with_schedule_cache(&cache);
    let cold = sim.run(&program).expect("cold run");
    assert_eq!(cold.schedule.regions_compiled, 1);
    assert!(!cache.is_empty(), "the cache keeps the compiled region");

    // The second run replays the cached schedule: nothing recompiles,
    // and the report stays byte-identical.
    let warm = sim.run(&program).expect("warm run");
    assert_eq!(warm.schedule.regions_compiled, 0, "{:?}", warm.schedule);
    assert_eq!(warm.schedule.regions_reused, 1);
    assert_eq!(fingerprint(&cold), fingerprint(&warm));

    // A run under a different architecture bypasses the cache (regions
    // embed arch-dependent timing) instead of reusing or poisoning it.
    let other = arch.clone().with_rob(1);
    let before = cache.len();
    let report = Simulator::new(&other)
        .with_engine(EngineKind::Compiled.engine())
        .with_schedule_cache(&cache)
        .run(&program)
        .expect("other arch runs");
    assert!(report.schedule.regions_compiled > 0, "compiled privately");
    assert_eq!(cache.len(), before, "the bound cache is left untouched");
}

#[test]
fn rob_one_serialized_machine_matches() {
    run_both(
        &arch().with_rob(1),
        r#"
        .core 0
        .group 0 in=16 out=16 xbars=0
        mvm g0, [r0+100], [r0+0], 16
        mvm g0, [r0+200], [r0+0], 16
        vaddi [r0+300], [r0+200], 1, 16
        halt
    "#,
    );
}

// --- seeded differential property test -----------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*; deterministic across platforms.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a random two-core program mixing vector/matrix compute,
/// scalar loops, and matched send/recv pairs (appended to both sides in
/// the same global order, so every rendezvous can match).
fn random_program(rng: &mut Rng) -> String {
    let mut core: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    let mut labels = 0usize;
    let n_ops = 4 + rng.below(10);
    for op in 0..n_ops {
        let c = rng.below(2) as usize;
        let a = (rng.below(12) * 16) as u32;
        let b = (rng.below(12) * 16) as u32;
        let len = 1 + rng.below(16);
        match rng.below(8) {
            0 => core[c].push(format!("vfill [r0+{a}], {}, {len}", rng.below(100))),
            1 => core[c].push(format!("vaddi [r0+{a}], [r0+{b}], {}, {len}", rng.below(9))),
            2 => core[c].push(format!("vmuli [r0+{a}], [r0+{b}], {}, {len}", rng.below(5))),
            3 => core[c].push(format!("mvm g0, [r0+{}], [r0+{b}], 16", 256 + a)),
            4 => core[c].push(format!(
                "addi r{}, r{}, {}",
                1 + rng.below(5),
                rng.below(6),
                rng.below(50)
            )),
            5 => {
                // A short counted loop: branches are fallback sites.
                let l = labels;
                labels += 1;
                let reps = 2 + rng.below(4);
                core[c].push(format!("li r7, {reps}"));
                core[c].push(format!("l{l}:"));
                core[c].push(format!("vaddi [r0+{a}], [r0+{a}], 1, {len}"));
                core[c].push("addi r7, r7, -1".to_string());
                core[c].push(format!("bne r7, r0, l{l}"));
            }
            _ => {
                // A matched transfer pair, inserted on both cores now so
                // pair order is consistent and the rendezvous can't wedge.
                let (src, dst) = if rng.below(2) == 0 { (0, 1) } else { (1, 0) };
                core[src].push(format!("send core{dst}, [r0+{a}], 8, tag={op}"));
                core[dst].push(format!("recv core{src}, [r0+{b}], 8, tag={op}"));
            }
        }
    }
    let mut text = String::new();
    for (c, ops) in core.iter().enumerate() {
        text.push_str(&format!(".core {c}\n.group 0 in=16 out=16 xbars={c}\n"));
        for line in ops {
            text.push_str(line);
            text.push('\n');
        }
        text.push_str("halt\n");
    }
    text
}

#[test]
fn differential_random_programs_agree() {
    let arch = arch();
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    for case in 0..40 {
        let text = random_program(&mut rng);
        let program = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("case {case} failed to assemble: {e}\n{text}"));
        let event = Simulator::new(&arch).run(&program);
        let compiled = Simulator::new(&arch)
            .with_engine(EngineKind::Compiled.engine())
            .run(&program);
        match (&event, &compiled) {
            (Ok(e), Ok(c)) => {
                assert_eq!(
                    fingerprint(e),
                    fingerprint(c),
                    "case {case} diverged:\n{text}"
                );
                for core in 0..2 {
                    assert_eq!(
                        e.read_local(core, 0, 512),
                        c.read_local(core, 0, 512),
                        "case {case} core{core} memory diverged:\n{text}"
                    );
                }
                assert_eq!(
                    c.schedule.events_dispatched + c.schedule.events_placed,
                    c.events,
                    "case {case} lost events:\n{text}"
                );
            }
            (Err(e), Err(c)) => {
                // Both engines must fail the same way (e.g. a generated
                // deadlock): errors are observables too.
                assert_eq!(
                    format!("{e:?}"),
                    format!("{c:?}"),
                    "case {case} errors diverged:\n{text}"
                );
            }
            _ => panic!(
                "case {case}: engines disagree on success: event={event:?} compiled={compiled:?}\n{text}"
            ),
        }
    }
}

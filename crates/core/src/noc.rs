//! The mesh NoC: XY routing over per-link occupancy, plus the global
//! memory controller at corner (0, 0).

use pimsim_arch::model::CostModel;
use pimsim_event::SimTime;

/// A unidirectional mesh link identified by `(from_router, to_router)`.
/// The memory port uses `to_router == MEM_NODE`.
pub const MEM_NODE: u16 = u16::MAX;

/// Per-link and controller occupancy state.
#[derive(Debug, Clone)]
pub struct Noc {
    rows: u16,
    cols: u16,
    /// `free_at` per directed link, keyed densely.
    link_free: std::collections::HashMap<(u16, u16), SimTime>,
    /// Global memory controller service queue.
    mem_free: SimTime,
}

impl Noc {
    /// Builds the link state for a `rows` × `cols` mesh.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero or the mesh has more routers
    /// than the 16-bit core-id space can address.
    pub fn new(rows: u16, cols: u16) -> Noc {
        assert!(rows > 0 && cols > 0, "mesh must have at least one router");
        assert!(
            rows as u32 * cols as u32 <= MEM_NODE as u32,
            "mesh {rows}x{cols} exceeds the 16-bit core-id space"
        );
        Noc {
            rows,
            cols,
            link_free: std::collections::HashMap::new(),
            mem_free: SimTime::ZERO,
        }
    }

    /// Builds the NoC for a (validated) architecture configuration.
    pub fn for_arch(cfg: &pimsim_arch::ArchConfig) -> Noc {
        Noc::new(cfg.resources.core_rows, cfg.resources.core_cols)
    }

    /// Routers in the mesh.
    fn routers(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// Debug-asserts that `core` addresses a router inside the mesh. Out
    /// of range ids would otherwise fabricate out-of-mesh links whose
    /// occupancy is tracked but never contended realistically.
    fn check_core(&self, core: u16) {
        debug_assert!(
            (core as u32) < self.routers(),
            "core {core} outside the {}x{} mesh",
            self.rows,
            self.cols
        );
    }

    fn pos(&self, core: u16) -> (u16, u16) {
        (core / self.cols, core % self.cols)
    }

    /// The XY route between two routers as a list of directed links.
    pub fn route(&self, from: u16, to: u16) -> Vec<(u16, u16)> {
        self.check_core(from);
        self.check_core(to);
        let mut links = Vec::new();
        if from == to {
            return links;
        }
        let (_, fc) = self.pos(from);
        let (tr, tc) = self.pos(to);
        let mut cur = from;
        // X first.
        let mut c = fc;
        while c != tc {
            let next_c = if tc > c { c + 1 } else { c - 1 };
            let next = (cur / self.cols) * self.cols + next_c;
            links.push((cur, next));
            cur = next;
            c = next_c;
        }
        // Then Y.
        let mut r = cur / self.cols;
        while r != tr {
            let next_r = if tr > r { r + 1 } else { r - 1 };
            let next = next_r * self.cols + tc;
            links.push((cur, next));
            cur = next;
            r = next_r;
        }
        debug_assert_eq!(cur, to);
        links
    }

    /// Walks a packet of `flits` flits along `links` starting at `start`,
    /// reserving each link in turn (wormhole-style head progression with
    /// per-link serialization). Returns the delivery time of the tail flit.
    pub fn traverse(
        &mut self,
        links: &[(u16, u16)],
        start: SimTime,
        flits: u64,
        model: &CostModel<'_>,
    ) -> SimTime {
        let hop = model.noc_hop_latency(1);
        let ser = model.link_serialization(flits);
        let mut head = start;
        let mut tail = start;
        for link in links {
            let free = self.link_free.get(link).copied().unwrap_or(SimTime::ZERO);
            head = head.max(free) + hop;
            tail = head + ser;
            self.link_free.insert(*link, tail);
        }
        if links.is_empty() {
            tail = start;
        }
        tail
    }

    /// Sends a core-to-core message; returns its delivery (completion) time.
    ///
    /// A self-message (`from == to`) never touches the mesh: it is a local
    /// scratchpad copy and costs [`CostModel::local_copy_cost`], not zero —
    /// same-core rendezvous still has to move the payload.
    pub fn message(
        &mut self,
        from: u16,
        to: u16,
        elems: u32,
        start: SimTime,
        model: &CostModel<'_>,
    ) -> SimTime {
        if from == to {
            self.check_core(from);
            return start + model.local_copy_cost(elems).time;
        }
        let flits = model.flits_for_elems(elems);
        let links = self.route(from, to);
        self.traverse(&links, start, flits, model)
    }

    /// A global-memory access from `core`: ride the mesh to corner (0,0),
    /// queue at the controller, pay DRAM latency + bandwidth. Returns the
    /// completion time.
    pub fn memory_access(
        &mut self,
        core: u16,
        elems: u32,
        start: SimTime,
        model: &CostModel<'_>,
    ) -> SimTime {
        self.check_core(core);
        let flits = model.flits_for_elems(elems);
        let mut links = self.route(core, 0);
        links.push((0, MEM_NODE));
        let arrived = self.traverse(&links, start, flits, model);
        let service_start = arrived.max(self.mem_free);
        let done = service_start + model.global_mem_cost(elems).time;
        self.mem_free = done;
        done
    }

    /// Number of mesh rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of mesh columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_arch::ArchConfig;

    fn model(cfg: &ArchConfig) -> CostModel<'_> {
        CostModel::new(cfg)
    }

    #[test]
    fn xy_route_shape() {
        let noc = Noc::new(4, 4);
        // core 1 (0,1) -> core 14 (3,2): x to col 2, then y down.
        let r = noc.route(1, 14);
        assert_eq!(r, vec![(1, 2), (2, 6), (6, 10), (10, 14)]);
        assert!(noc.route(5, 5).is_empty());
        assert_eq!(noc.rows(), 4);
        assert_eq!(noc.cols(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_sized_mesh_is_rejected() {
        let _ = Noc::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "outside the 2x2 mesh")]
    fn out_of_mesh_core_is_rejected() {
        // Regression: ids >= rows*cols used to silently fabricate
        // out-of-mesh links instead of failing.
        let noc = Noc::new(2, 2);
        let _ = noc.route(0, 4);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_mesh_memory_access_is_rejected() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let mut noc = Noc::new(2, 2);
        let _ = noc.memory_access(9, 64, SimTime::ZERO, &m);
    }

    #[test]
    fn for_arch_matches_config_mesh() {
        let cfg = ArchConfig::small_test();
        let noc = Noc::for_arch(&cfg);
        assert_eq!(noc.rows(), cfg.resources.core_rows);
        assert_eq!(noc.cols(), cfg.resources.core_cols);
    }

    #[test]
    fn self_message_charges_local_copy() {
        // Pinned choice: same-core rendezvous is NOT free — it pays the
        // scratchpad-copy cost from the shared cost model.
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let mut noc = Noc::new(8, 8);
        let start = SimTime::from_ns(5);
        let done = noc.message(5, 5, 256, start, &m);
        assert_eq!(done, start + m.local_copy_cost(256).time);
        assert!(done > start);
        // And it never reserves mesh links.
        assert!(noc.link_free.is_empty());
    }

    #[test]
    fn farther_is_slower() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let mut noc = Noc::new(8, 8);
        let near = noc.message(0, 1, 64, SimTime::ZERO, &m);
        let mut noc2 = Noc::new(8, 8);
        let far = noc2.message(0, 63, 64, SimTime::ZERO, &m);
        assert!(far > near);
    }

    #[test]
    fn contention_serializes_on_shared_links() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let mut noc = Noc::new(8, 8);
        let first = noc.message(0, 7, 1024, SimTime::ZERO, &m);
        // Same path immediately afterwards: must wait behind the first.
        let second = noc.message(0, 7, 1024, SimTime::ZERO, &m);
        assert!(second > first);
        // A disjoint path is unaffected.
        let mut fresh = Noc::new(8, 8);
        let disjoint_fresh = fresh.message(56, 63, 1024, SimTime::ZERO, &m);
        let disjoint_after = noc.message(56, 63, 1024, SimTime::ZERO, &m);
        assert_eq!(disjoint_fresh, disjoint_after);
    }

    #[test]
    fn memory_controller_queues() {
        let cfg = ArchConfig::paper_default();
        let m = model(&cfg);
        let mut noc = Noc::new(8, 8);
        let a = noc.memory_access(0, 4096, SimTime::ZERO, &m);
        let b = noc.memory_access(63, 4096, SimTime::ZERO, &m);
        assert!(b > a, "controller should serialize concurrent streams");
    }
}
